//! Build a custom Sensor Node architecture from scratch, host its power
//! database on the dynamic spreadsheet, and explore a configuration sweep
//! — the "custom architectures" workflow of §II-A.
//!
//! ```sh
//! cargo run --example custom_architecture
//! ```

use monityre::core::{EnergyBalance, Scenario, SweepExecutor};
use monityre::node::{
    Architecture, BlockPlan, ConfigSpace, PhaseSpec, RoundSchedule, Span, Workload,
};
use monityre::power::{
    BlockPowerModel, DynamicPowerModel, EventCost, EventKind, LeakageModel, OperatingMode,
    WorkingConditions,
};
use monityre::sheet::PowerSheet;
use monityre::units::{Capacitance, Energy, Frequency, Power, Speed, Temperature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A stripped-down two-block node: a pressure sensor + a simple MCU.
    let sensor = BlockPowerModel::builder("pressure")
        .dynamic(DynamicPowerModel::new(
            0.5,
            Capacitance::from_picofarads(20.0),
            Frequency::from_kilohertz(500.0),
        ))
        .leakage(LeakageModel::with_reference(Power::from_nanowatts(400.0)))
        .event_cost(EventCost::new(EventKind::Sample, Energy::from_nanos(35.0)))
        .build();
    let mcu = BlockPowerModel::builder("mcu")
        .dynamic(DynamicPowerModel::new(
            0.15,
            Capacitance::from_picofarads(150.0),
            Frequency::from_megahertz(4.0),
        ))
        .leakage(LeakageModel::with_reference(Power::from_microwatts(3.0)))
        .build();

    let custom = Architecture::builder("pressure-only-node")
        .block(
            sensor,
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fraction(0.05),
                    )],
                    OperatingMode::Off,
                )?,
                Workload::new().with(EventKind::Sample, 8.0),
            ),
        )
        .block(
            mcu,
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fixed(monityre::units::Duration::from_millis(1.0)),
                    )],
                    OperatingMode::Sleep,
                )?,
                Workload::new(),
            ),
        )
        .build()?;

    let scenario = Scenario::builder()
        .architecture(custom.clone())
        .conditions(WorkingConditions::reference())
        .build();
    let report =
        EnergyBalance::new(&scenario)?.sweep(Speed::from_kmh(5.0), Speed::from_kmh(120.0), 116);
    println!(
        "custom node `{}`: break-even {:?} km/h",
        custom.name(),
        report.break_even().map(|s| s.kmh())
    );

    // Host the database on the live spreadsheet and poke a condition.
    let mut sheet = PowerSheet::new(custom.database())?;
    sheet
        .sheet_mut()
        .set_formula("mcu.share", "mcu.active_uw / node.active_uw")?;
    println!(
        "at 27 °C the MCU is {:.0} % of the active power",
        sheet.value("mcu.share")? * 100.0
    );
    sheet.set_temperature(Temperature::from_celsius(85.0), custom.database())?;
    println!(
        "at 85 °C the chip leaks {:.2} µW (was parked in the sun)",
        sheet.value("node.leak_uw")?
    );

    // Sweep the reference configuration grid for comparison, fanning the
    // grid out over the parallel sweep executor.
    let space = ConfigSpace::new(vec![32, 128, 512], vec![1, 4, 16], vec![32]);
    println!("\nreference-node configuration sweep:");
    let reference = Scenario::reference();
    let configs: Vec<_> = space.iter().collect();
    let results = SweepExecutor::new(4).map(&configs, |_, config| {
        EnergyBalance::new(&reference.with_architecture(Architecture::from_config(*config)))
            .expect("grid configuration evaluates")
            .sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 118)
            .break_even()
    });
    for (config, be) in configs.iter().zip(&results) {
        println!(
            "  {:>3} samples/round, TX every {:>2} rounds → break-even {}",
            config.samples_per_round(),
            config.tx_period_rounds(),
            be.map_or("n/a".into(), |s| format!("{:.1} km/h", s.kmh())),
        );
    }
    Ok(())
}
