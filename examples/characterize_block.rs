//! Characterize a digital block at the gate level and feed the result
//! into the energy analysis flow — the paper's stage-1 estimation made
//! concrete: netlist → switching activity → α·C model → power database →
//! energy balance.
//!
//! ```sh
//! cargo run --example characterize_block
//! ```

use monityre::core::{EnergyBalance, Scenario};
use monityre::netlist::{designs, Activity};
use monityre::node::Architecture;
use monityre::power::{OperatingMode, WorkingConditions};
use monityre::units::{Frequency, Speed, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the computing datapath as a gate-level netlist.
    let datapath = designs::accumulator(32);
    println!("datapath: {datapath}");
    println!("census: {:?}", datapath.census());

    // 2. Switching-activity analysis at the workload's input statistics.
    let clock = Frequency::from_megahertz(8.0);
    let activity = Activity::uniform(&datapath, 0.5, 0.3)?;
    println!(
        "effective activity factor {:.4}, switched capacitance {}, power {} at 8 MHz/1.2 V",
        activity.activity_factor(),
        activity.switched_capacitance(),
        activity.average_power(Voltage::from_volts(1.2), clock),
    );

    // 3. Export into the power database: replace the DSP's hand-estimated
    //    dynamic model with the characterized one (keeping its leakage
    //    model and event costs).
    let arch = Architecture::reference();
    let dsp = arch.database().block("dsp")?.clone();
    let characterized = dsp.with_dynamic(activity.to_dynamic_model(clock));
    let refined = arch.with_block_model(characterized)?;

    let cond = WorkingConditions::reference();
    let before = arch
        .database()
        .block_power("dsp", OperatingMode::Active, &cond)?;
    let after = refined
        .database()
        .block_power("dsp", OperatingMode::Active, &cond)?;
    println!(
        "dsp active power: spreadsheet estimate {} -> characterized {}",
        before.total(),
        after.total()
    );

    // 4. Re-run the energy balance with the refined database.
    for (label, a) in [("estimated", &arch), ("characterized", &refined)] {
        let scenario = Scenario::builder()
            .architecture((*a).clone())
            .conditions(cond)
            .build();
        let be = EnergyBalance::new(&scenario)?
            .sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 196)
            .break_even();
        println!(
            "{label:>14}: break-even {}",
            be.map_or("n/a".into(), |s| format!("{:.1} km/h", s.kmh()))
        );
    }
    Ok(())
}
