//! Quickstart: evaluate the reference Sensor Node's energy balance and
//! find its break-even speed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use monityre::core::{EnergyAnalyzer, EnergyBalance};
use monityre::harvest::HarvestChain;
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::units::Speed;

fn main() {
    // 1. Define the architecture — the entry point of the flow.
    let architecture = Architecture::reference();

    // 2. Pick the working conditions (supply, temperature, corner).
    let conditions = WorkingConditions::reference();

    // 3. Evaluate energy per wheel round at a cruising speed.
    let analyzer = EnergyAnalyzer::new(&architecture, conditions);
    let energy = analyzer
        .node_energy(Speed::from_kmh(60.0))
        .expect("60 km/h is a valid operating point");
    println!("energy per wheel round @ 60 km/h:");
    for block in &energy.blocks {
        println!(
            "  {:<8} {}  (duty cycle {})",
            block.name,
            block.energy.total(),
            block.duty_cycle
        );
    }
    println!("  total    {}", energy.total().total());
    println!("  average power: {}", energy.average_power());
    println!();

    // 4. Integrate the scavenger model and find the break-even speed.
    let chain = HarvestChain::reference();
    let balance = EnergyBalance::new(&analyzer, &chain);
    let report = balance.sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 196);
    match report.break_even() {
        Some(speed) => println!("break-even speed: {:.1} km/h", speed.kmh()),
        None => println!("the node never reaches a positive balance"),
    }
}
