//! Quickstart: evaluate the reference Sensor Node's energy balance and
//! find its break-even speed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use monityre::core::{EnergyBalance, Scenario};
use monityre::harvest::HarvestChain;
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::units::Speed;

fn main() {
    // 1. Bundle architecture, conditions and harvest chain into a scenario
    //    — the immutable evaluation session everything else consumes.
    let scenario = Scenario::builder()
        .architecture(Architecture::reference())
        .conditions(WorkingConditions::reference())
        .chain(HarvestChain::reference())
        .build();

    // 2. Evaluate energy per wheel round at a cruising speed.
    let analyzer = scenario.analyzer();
    let energy = analyzer
        .node_energy(Speed::from_kmh(60.0))
        .expect("60 km/h is a valid operating point");
    println!("energy per wheel round @ 60 km/h:");
    for block in &energy.blocks {
        println!(
            "  {:<8} {}  (duty cycle {})",
            block.name,
            block.energy.total(),
            block.duty_cycle
        );
    }
    println!("  total    {}", energy.total().total());
    println!("  average power: {}", energy.average_power());
    println!();

    // 3. Integrate the scavenger model and find the break-even speed.
    let balance = EnergyBalance::new(&scenario).expect("reference scenario evaluates");
    let report = balance.sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 196);
    match report.break_even() {
        Some(speed) => println!("break-even speed: {:.1} km/h", speed.kmh()),
        None => println!("the node never reaches a positive balance"),
    }
}
