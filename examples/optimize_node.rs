//! Optimize the node the paper's way: select techniques per block from the
//! (dynamic/static split × duty cycle) pair, apply, re-estimate, and show
//! the activation-speed gain over the naive power-figures-only approach.
//!
//! ```sh
//! cargo run --example optimize_node
//! ```

use monityre::core::{EnergyBalance, OptimizationAdvisor, Scenario, SelectionPolicy};
use monityre::units::Speed;

fn break_even(scenario: &Scenario) -> Option<Speed> {
    EnergyBalance::new(scenario)
        .expect("scenario evaluates")
        .sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 391)
        .break_even()
}

fn main() {
    let scenario = Scenario::reference();
    let design_speed = Speed::from_kmh(30.0);

    let analyzer = scenario.analyzer();
    let advisor = OptimizationAdvisor::new(&analyzer, design_speed);

    for (label, policy) in [
        ("power-figures-only (naive)", SelectionPolicy::PowerFigures),
        ("duty-cycle-aware (paper)", SelectionPolicy::DutyCycleAware),
    ] {
        let outcome = advisor.optimize(policy).expect("optimization runs");
        println!("== {label} ==");
        for rec in &outcome.recommendations {
            println!("  {:<8} {}", rec.block, rec.rationale);
        }
        println!(
            "  energy per round @ {:.0} km/h: {} -> {} ({:.1} % saved)",
            design_speed.kmh(),
            outcome.energy_before,
            outcome.energy_after,
            outcome.saving() * 100.0
        );
        if let Some(be) = break_even(&scenario.with_architecture(outcome.architecture.clone())) {
            println!("  break-even after optimization: {:.1} km/h", be.kmh());
        }
        println!();
    }

    if let Some(be) = break_even(&scenario) {
        println!("baseline break-even (unoptimized): {:.1} km/h", be.kmh());
    }
}
