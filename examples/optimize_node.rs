//! Optimize the node the paper's way: select techniques per block from the
//! (dynamic/static split × duty cycle) pair, apply, re-estimate, and show
//! the activation-speed gain over the naive power-figures-only approach.
//!
//! ```sh
//! cargo run --example optimize_node
//! ```

use monityre::core::{EnergyAnalyzer, EnergyBalance, OptimizationAdvisor, SelectionPolicy};
use monityre::harvest::HarvestChain;
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::units::Speed;

fn break_even(arch: &Architecture, chain: &HarvestChain) -> Option<Speed> {
    let analyzer =
        EnergyAnalyzer::new(arch, WorkingConditions::reference()).with_wheel(*chain.wheel());
    EnergyBalance::new(&analyzer, chain)
        .sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 391)
        .break_even()
}

fn main() {
    let architecture = Architecture::reference();
    let chain = HarvestChain::reference();
    let conditions = WorkingConditions::reference();
    let design_speed = Speed::from_kmh(30.0);

    let analyzer = EnergyAnalyzer::new(&architecture, conditions).with_wheel(*chain.wheel());
    let advisor = OptimizationAdvisor::new(&analyzer, design_speed);

    for (label, policy) in [
        ("power-figures-only (naive)", SelectionPolicy::PowerFigures),
        ("duty-cycle-aware (paper)", SelectionPolicy::DutyCycleAware),
    ] {
        let outcome = advisor.optimize(policy).expect("optimization runs");
        println!("== {label} ==");
        for rec in &outcome.recommendations {
            println!("  {:<8} {}", rec.block, rec.rationale);
        }
        println!(
            "  energy per round @ {:.0} km/h: {} -> {} ({:.1} % saved)",
            design_speed.kmh(),
            outcome.energy_before,
            outcome.energy_after,
            outcome.saving() * 100.0
        );
        if let Some(be) = break_even(&outcome.architecture, &chain) {
            println!("  break-even after optimization: {:.1} km/h", be.kmh());
        }
        println!();
    }

    if let Some(be) = break_even(&architecture, &chain) {
        println!("baseline break-even (unoptimized): {:.1} km/h", be.kmh());
    }
}
