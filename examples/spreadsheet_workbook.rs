//! Drive the energy analysis entirely from the dynamic spreadsheet: the
//! generated workbook whose formulas compute the per-round energy, live.
//!
//! ```sh
//! cargo run --example spreadsheet_workbook
//! ```

use monityre::core::{EnergyAnalyzer, EnergyWorkbook};
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::profile::Wheel;
use monityre::units::Speed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let architecture = Architecture::reference();
    let conditions = WorkingConditions::reference();
    let wheel = Wheel::reference();

    let mut workbook =
        EnergyWorkbook::build(&architecture, conditions, &wheel, Speed::from_kmh(60.0))?;
    println!(
        "workbook generated: {} cells over {} blocks",
        workbook.sheet().len(),
        workbook.block_names().len()
    );

    // Sweep the speed cell and watch the formulas re-derive the budget.
    let analyzer = EnergyAnalyzer::new(&architecture, conditions).with_wheel(wheel);
    println!("\nspeed sweep (workbook vs analyzer):");
    for kmh in [15.0, 30.0, 60.0, 120.0] {
        workbook.set_speed(Speed::from_kmh(kmh))?;
        let sheet_uj = workbook.node_energy()?.microjoules();
        let rust_uj = analyzer
            .required_per_round(Speed::from_kmh(kmh))?
            .microjoules();
        println!("  {kmh:>5.0} km/h  workbook {sheet_uj:>9.4} µJ   analyzer {rust_uj:>9.4} µJ");
    }

    // Per-block breakdown straight from the cells.
    println!("\nper-block cells at 120 km/h:");
    for name in workbook.block_names().to_vec() {
        println!("  {:<8} {}", name, workbook.block_energy(&name)?);
    }

    // And the audit trail for one block.
    println!("\nwhere does the DSP number come from?");
    print!("{}", workbook.sheet().explain("dsp.energy_uj")?);
    Ok(())
}
