//! Vehicle-level view: four Sensor Nodes on one car, and the availability
//! of the friction-estimation function that needs all of them at once.
//!
//! ```sh
//! cargo run --example four_wheels
//! ```

use monityre::core::{SweepExecutor, VehicleEmulator};
use monityre::profile::{
    CompositeProfile, ExtraUrbanCycle, MotorwayCycle, RepeatProfile, SpeedProfile, UrbanCycle,
};
use monityre::units::{Duration, Speed};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let emulator = VehicleEmulator::reference();

    let trip = CompositeProfile::new(vec![
        Box::new(RepeatProfile::new(UrbanCycle::new(), 3)),
        Box::new(ExtraUrbanCycle::new()),
        Box::new(MotorwayCycle::new(
            Speed::from_kmh(120.0),
            Duration::from_mins(10.0),
        )?),
    ]);
    println!(
        "trip: {:.0} s, mean {:.1} km/h",
        trip.duration().secs(),
        trip.mean_speed(2000).kmh()
    );

    // One worker per corner; the result is bit-identical to a serial run.
    let report = emulator.run_with(&trip, &SweepExecutor::new(4))?;
    for (pos, r) in &report.corners {
        let last = r.samples.last().expect("samples recorded");
        println!(
            "  {}: coverage {:5.1} %, {} window(s), tyre ends at {}",
            pos.label(),
            r.coverage() * 100.0,
            r.windows.len(),
            last.tyre_temperature
        );
    }
    println!(
        "friction estimation available (all four corners) {:.1} % of the trip; bottleneck: {}",
        report.all_active_fraction * 100.0,
        report.bottleneck().label()
    );
    Ok(())
}
