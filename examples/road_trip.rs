//! Road trip: emulate the Sensor Node over a mixed urban/extra-urban/
//! motorway journey and report its operating windows.
//!
//! ```sh
//! cargo run --example road_trip
//! ```

use monityre::core::{EmulatorConfig, TransientEmulator};
use monityre::harvest::{HarvestChain, Supercap};
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::profile::{
    CompositeProfile, ExtraUrbanCycle, MotorwayCycle, RepeatProfile, SpeedProfile, UrbanCycle,
};
use monityre::units::{Duration, Speed};

fn main() {
    let architecture = Architecture::reference();
    let chain = HarvestChain::reference();

    // A one-hour-ish trip: city, then a country road, then motorway.
    let trip = CompositeProfile::new(vec![
        Box::new(RepeatProfile::new(UrbanCycle::new(), 4)),
        Box::new(ExtraUrbanCycle::new()),
        Box::new(
            MotorwayCycle::new(Speed::from_kmh(120.0), Duration::from_mins(25.0))
                .expect("valid motorway leg"),
        ),
        Box::new(RepeatProfile::new(UrbanCycle::new(), 2)),
    ]);
    println!(
        "trip: {:.0} s, mean speed {:.1} km/h",
        trip.duration().secs(),
        trip.mean_speed(2000).kmh()
    );

    let emulator = TransientEmulator::new(
        &architecture,
        &chain,
        WorkingConditions::reference(),
        EmulatorConfig::new(),
    )
    .expect("valid emulator configuration");

    let mut storage = Supercap::reference();
    let report = emulator.run(&trip, &mut storage);

    println!("operating windows:");
    for (i, w) in report.windows.iter().enumerate() {
        println!(
            "  #{:<2} {:>7.1} s … {:>7.1} s  ({:.1} s)",
            i + 1,
            w.start.secs(),
            w.end.secs(),
            w.length().secs()
        );
    }
    println!(
        "coverage {:.1} %, harvested {}, consumed {}, spilled {}, {} brownout(s)",
        report.coverage() * 100.0,
        report.harvested,
        report.consumed,
        report.spilled,
        report.brownouts
    );
    let last = report.samples.last().expect("samples recorded");
    println!(
        "final state: SoC {:.0} %, tyre at {}",
        last.soc * 100.0,
        last.tyre_temperature
    );
}
