//! `monityre` — energy analysis methods and tools for modelling and
//! optimizing monitoring tyre systems.
//!
//! A from-scratch Rust reproduction of the DATE 2011 paper by Bonanno,
//! Bocca and Sabatini (Politecnico di Torino / Pirelli Tyre): a methodology
//! and tool suite for the energy analysis of a **self-powered in-tyre
//! Sensor Node** supplied by a rotation-driven energy scavenger.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`units`] — strongly-typed physical quantities;
//! * [`power`] — per-block power models and the power database;
//! * [`harvest`] — scavenger, regulator and storage models;
//! * [`node`] — the Sensor Node architecture and wheel-round schedules;
//! * [`netlist`] — gate-level switching-activity and power estimation;
//! * [`profile`] — driving-cycle and temperature profiles;
//! * [`sheet`] — the dependency-tracked "dynamic spreadsheet" engine;
//! * [`core`] — the energy analysis flow: per-round evaluation, energy
//!   balance vs speed, the optimization advisor, and the long-window
//!   transient emulator.
//!
//! # Quickstart
//!
//! ```
//! use monityre::core::{EnergyBalance, Scenario, SweepExecutor};
//! use monityre::units::Speed;
//!
//! let scenario = Scenario::reference();
//! let balance = EnergyBalance::new(&scenario).unwrap();
//! let report = balance.sweep_with(
//!     Speed::from_kmh(5.0),
//!     Speed::from_kmh(200.0),
//!     196,
//!     &SweepExecutor::new(4),
//! );
//! println!("break-even: {:?}", report.break_even());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use monityre_core as core;
pub use monityre_harvest as harvest;
pub use monityre_netlist as netlist;
pub use monityre_node as node;
pub use monityre_power as power;
pub use monityre_profile as profile;
pub use monityre_sheet as sheet;
pub use monityre_units as units;
