//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Provides the narrow surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over float and
//! integer ranges — backed by xoshiro256++ seeded via SplitMix64. The stream
//! differs from real `StdRng` (ChaCha12), which is fine here: no golden
//! value in this workspace depends on the exact stream, only on seeds being
//! deterministic and the output being uniform.

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a value of type `T` from its canonical full distribution
    /// (`f64` → uniform in `[0, 1)`; integers → any value).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's canonical distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` using the top 53
/// bits (the standard multiply-by-2⁻⁵³ construction).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $ty
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of real `rand` — see the crate docs for
    /// why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = (s0.wrapping_add(s3)).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference method for seeding xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(2011);
        let mut b = StdRng::seed_from_u64(2011);
        for _ in 0..16 {
            assert_eq!(
                a.gen_range(0.0..1.0).to_bits(),
                b.gen_range(0.0..1.0).to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let matches = (0..8).filter(|_| a.gen_range(0.0..1.0) == b.gen_range(0.0..1.0));
        assert!(matches.count() < 8);
    }

    #[test]
    fn unit_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0usize..8);
            assert!(v < 8);
            let w: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
