//! Minimal, dependency-light stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `boxed`, range and tuple
//! strategies, [`strategy::Just`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::num::f64`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a fixed seed so test runs
//! are deterministic; there is no shrinking — a failing case reports its
//! inputs and panics.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Cap on total draws, counting cases rejected by `prop_assume!`.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// The generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A deterministic generator; every test run sees the same stream.
        /// Set `PROPTEST_SEED` to explore a different one.
        #[must_use]
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x7070_7465_7374u64); // "pptest"
            Self {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`.
        pub fn index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "index bound must be positive");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — draw a fresh one.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Result alias used by the `proptest!`-generated harness.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a pure sampling function.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Discards generated values failing `pred`, re-drawing up to a
        /// bounded number of times.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        base: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.base.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter `{}` rejected 10000 candidates", self.reason);
        }
    }

    /// A type-erased, cheaply clonable strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        inner: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among alternatives — the engine behind `prop_oneof!`.
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.index(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + offset) as $ty
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                lo: len,
                hi_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi_inclusive: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            Self {
                lo: *range.start(),
                hi_inclusive: *range.end(),
            }
        }
    }

    /// Generates `Vec`s with elements from `element` and length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric strategies mirroring `proptest::num`.

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Any `f64` bit pattern: finite, subnormal, infinite, or NaN.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any *normal* (finite, non-zero, non-subnormal) `f64`.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// See [`Any`].
        pub const ANY: Any = Any;
        /// See [`Normal`].
        pub const NORMAL: Normal = Normal;

        const SPECIALS: [f64; 8] = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
        ];

        impl Strategy for Any {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                // One draw in eight is a special value so edge cases appear
                // reliably even with modest case counts.
                if rng.index(8) == 0 {
                    SPECIALS[rng.index(SPECIALS.len())]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }

        impl Strategy for Normal {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let candidate = f64::from_bits(rng.next_u64());
                    if candidate.is_normal() {
                        return candidate;
                    }
                }
            }
        }
    }
}

/// Everything a `proptest!` test usually needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` shorthand module familiar from real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                let mut __accepted: u32 = 0;
                let mut __draws: u32 = 0;
                while __accepted < __config.cases && __draws < __config.max_global_rejects {
                    __draws += 1;
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {} failed: {}", __accepted + 1, __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
}

/// Rejects the current case (draws a fresh one) if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        fn oneof_and_map(v in prop_oneof![Just(1u32), (10u32..20).prop_map(|n| n * 2)]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        fn vec_lengths(items in crate::collection::vec(0i32..5, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }
    }

    #[test]
    fn deterministic_between_runs() {
        use crate::strategy::Strategy;
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        let s = 0.0f64..1.0;
        for _ in 0..8 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
