//! Derive macros for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`, which
//! are unavailable offline): the input item is parsed into a small shape
//! description, and the impl is emitted as source text parsed back into a
//! `TokenStream`. Supported shapes are exactly what the workspace uses:
//!
//! * named-field structs (with `#[serde(skip)]` / `#[serde(default)]` /
//!   `#[serde(skip_serializing_if = "Option::is_none")]`);
//! * tuple structs, typically `#[serde(transparent)]` newtypes;
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like real serde's default representation).
//!
//! Anything outside that set (generics, lifetimes, unknown serde attributes)
//! fails the build with an explicit message rather than mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Shape model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeAttrs {
    transparent: bool,
    skip: bool,
    default: bool,
    /// `skip_serializing_if = "Option::is_none"`: omit the field from the
    /// serialized map when its value serializes to `Value::Null`. Only the
    /// `Option::is_none` predicate is supported — the check is performed on
    /// the serialized value, which for an `Option` is `Null` exactly when
    /// the field is `None`.
    skip_none: bool,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses one `#[serde(...)]` attribute body (the tokens inside the parens),
/// folding the recognized flags into `attrs`. Panics on unknown flags so a
/// silently unsupported representation can never ship.
fn apply_serde_attr(tokens: TokenStream, attrs: &mut SerdeAttrs, context: &str) {
    let mut iter = tokens.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Ident(ident) => match ident.to_string().as_str() {
                "transparent" => attrs.transparent = true,
                "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                "default" => attrs.default = true,
                "skip_serializing_if" => {
                    // Only the `= "Option::is_none"` form is supported; the
                    // emitted code skips the field when its serialized value
                    // is `Null`, which is equivalent for `Option` fields.
                    match iter.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                        other => panic!(
                            "serde derive (vendored): expected `=` after `skip_serializing_if` on {context}, found {other:?}"
                        ),
                    }
                    match iter.next() {
                        Some(TokenTree::Literal(lit))
                            if lit.to_string() == "\"Option::is_none\"" =>
                        {
                            attrs.skip_none = true;
                        }
                        other => panic!(
                            "serde derive (vendored): `skip_serializing_if` supports only \
                             \"Option::is_none\" on {context}, found {other:?}"
                        ),
                    }
                }
                other => panic!(
                    "serde derive (vendored): unsupported serde attribute `{other}` on {context}"
                ),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!(
                "serde derive (vendored): unexpected token `{other}` in serde attribute on {context}"
            ),
        }
    }
}

/// Consumes leading attributes from `iter`, returning the serde flags found.
/// Non-serde attributes (doc comments, `#[default]`, ...) are skipped.
fn take_attrs(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    context: &str,
) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                let group = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("serde derive (vendored): malformed attribute near {other:?}"),
                };
                let mut inner = group.stream().into_iter();
                match inner.next() {
                    Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {
                        match inner.next() {
                            Some(TokenTree::Group(args))
                                if args.delimiter() == Delimiter::Parenthesis =>
                            {
                                apply_serde_attr(args.stream(), &mut attrs, context);
                            }
                            other => panic!(
                                "serde derive (vendored): malformed serde attribute near {other:?}"
                            ),
                        }
                    }
                    _ => {} // doc comment, #[default], #[must_use], ... — ignore
                }
            }
            _ => return attrs,
        }
    }
}

/// Skips a `pub` / `pub(crate)` visibility marker if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consumes a type (everything up to a top-level `,`), tracking `<`/`>`
/// nesting so generic arguments' commas don't end the field early.
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(tree) = iter.peek() {
        match tree {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    iter.next(); // consume the separator itself
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                }
                iter.next();
            }
            _ => {
                iter.next();
            }
        }
    }
}

/// Parses the body of a named-fields group (`{ a: T, #[serde(skip)] b: U }`).
fn parse_named_fields(stream: TokenStream, context: &str) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let attrs = take_attrs(&mut iter, context);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!(
                "serde derive (vendored): expected field name in {context}, found {other:?}"
            ),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde derive (vendored): expected `:` after field `{name}`, found {other:?}"
            ),
        }
        skip_type(&mut iter);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a tuple group (`(A, B<C, D>)` → 2).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        // Each field may carry attributes and visibility before its type.
        let _ = take_attrs(&mut iter, "tuple field");
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break; // trailing comma
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        let _attrs = take_attrs(&mut iter, "enum variant");
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde derive (vendored): expected variant name, found {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                match count_tuple_fields(g) {
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), "enum struct variant");
                iter.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(tree) = iter.peek() {
                if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                iter.next();
            }
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let attrs = take_attrs(&mut iter, "container");
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde derive (vendored): expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde derive (vendored): expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    let shape = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream(), "struct field"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde derive (vendored): malformed struct `{name}` near {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive (vendored): malformed enum `{name}` near {other:?}"),
        },
        other => panic!("serde derive (vendored): cannot derive for `{other}` items"),
    };
    Input { name, attrs, shape }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Named(fields) => {
            if input.attrs.transparent {
                let inner = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .unwrap_or_else(|| panic!("transparent struct `{name}` has no field"));
                let _ = write!(body, "::serde::Serialize::to_value(&self.{})", inner.name);
            } else {
                body.push_str(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                for field in fields.iter().filter(|f| !f.attrs.skip) {
                    if field.attrs.skip_none {
                        let _ = writeln!(
                            body,
                            "match ::serde::Serialize::to_value(&self.{0}) {{ ::serde::Value::Null => {{}}, __v => fields.push((::std::string::String::from(\"{0}\"), __v)) }}",
                            field.name
                        );
                    } else {
                        let _ = writeln!(
                            body,
                            "fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));",
                            field.name
                        );
                    }
                }
                body.push_str("::serde::Value::Map(fields)");
            }
        }
        Shape::Tuple(arity) => {
            if input.attrs.transparent || *arity == 1 {
                body.push_str("::serde::Serialize::to_value(&self.0)");
            } else {
                body.push_str("::serde::Value::Seq(vec![");
                for idx in 0..*arity {
                    let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
                }
                body.push_str("])");
            }
        }
        Shape::Unit => body.push_str("::serde::Value::Null"),
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            body,
                            "Self::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantShape::Newtype => {
                        let _ = writeln!(
                            body,
                            "Self::{vname}(__f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let _ = writeln!(
                            body,
                            "Self::{vname}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    VariantShape::Struct(fields) => {
                        if fields.iter().any(|f| f.attrs.skip_none) {
                            panic!(
                                "serde derive (vendored): `skip_serializing_if` is only supported \
                                 on named-struct fields, not enum variant `{vname}`"
                            );
                        }
                        let kept: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
                        let pattern = if kept.len() == fields.len() {
                            kept.iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ")
                        } else if kept.is_empty() {
                            "..".to_owned()
                        } else {
                            format!(
                                "{}, ..",
                                kept.iter()
                                    .map(|f| f.name.clone())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        let entries = kept
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = writeln!(
                            body,
                            "Self::{vname} {{ {pattern} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(vec![{entries}]))]),"
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

/// Emits the expression rebuilding one named field from map entries bound to
/// `__entries`.
fn named_field_expr(ty: &str, field: &Field) -> String {
    if field.attrs.skip {
        return format!("{}: ::std::default::Default::default(),", field.name);
    }
    let fallback = if field.attrs.default {
        "::std::default::Default::default()".to_owned()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty}\", \"{}\"))",
            field.name
        )
    };
    format!(
        "{0}: match ::serde::find_field(__entries, \"{0}\") {{ ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, ::std::option::Option::None => {fallback} }},",
        field.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Named(fields) => {
            if input.attrs.transparent {
                let kept: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
                let inner = kept
                    .first()
                    .unwrap_or_else(|| panic!("transparent struct `{name}` has no field"));
                let _ = write!(
                    body,
                    "::std::result::Result::Ok(Self {{ {}: ::serde::Deserialize::from_value(value)?, ",
                    inner.name
                );
                for field in fields.iter().filter(|f| f.attrs.skip) {
                    let _ = write!(body, "{}: ::std::default::Default::default(), ", field.name);
                }
                body.push_str("})");
            } else {
                let _ = write!(
                    body,
                    "let __entries = value.as_map().ok_or_else(|| ::serde::Error::invalid(\"map for struct `{name}`\", value))?;\n::std::result::Result::Ok(Self {{\n"
                );
                for field in fields {
                    body.push_str(&named_field_expr(name, field));
                    body.push('\n');
                }
                body.push_str("})");
            }
        }
        Shape::Tuple(arity) => {
            if input.attrs.transparent || *arity == 1 {
                body.push_str(
                    "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))",
                );
            } else {
                let _ = write!(
                    body,
                    "let __items = value.as_seq().ok_or_else(|| ::serde::Error::invalid(\"sequence for `{name}`\", value))?;\nif __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for `{name}`\")); }}\n::std::result::Result::Ok(Self("
                );
                for idx in 0..*arity {
                    let _ = write!(body, "::serde::Deserialize::from_value(&__items[{idx}])?,");
                }
                body.push_str("))");
            }
        }
        Shape::Unit => body.push_str("::std::result::Result::Ok(Self)"),
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are bare strings, payload
            // variants are single-entry maps keyed by the variant name.
            body.push_str("match value {\n::serde::Value::Str(__tag) => match __tag.as_str() {\n");
            for variant in variants {
                if matches!(variant.shape, VariantShape::Unit) {
                    let _ = writeln!(
                        body,
                        "\"{0}\" => ::std::result::Result::Ok(Self::{0}),",
                        variant.name
                    );
                }
            }
            let _ = write!(
                body,
                "__other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}},\n"
            );
            body.push_str(
                "::serde::Value::Map(__outer) if __outer.len() == 1 => {\nlet (__tag, __inner) = &__outer[0];\nmatch __tag.as_str() {\n",
            );
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {}
                    VariantShape::Newtype => {
                        let _ = writeln!(
                            body,
                            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    VariantShape::Tuple(arity) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => {{\nlet __items = __inner.as_seq().ok_or_else(|| ::serde::Error::invalid(\"sequence for variant `{vname}`\", __inner))?;\nif __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for variant `{vname}`\")); }}\n::std::result::Result::Ok(Self::{vname}("
                        );
                        for idx in 0..*arity {
                            let _ =
                                write!(body, "::serde::Deserialize::from_value(&__items[{idx}])?,");
                        }
                        body.push_str("))\n},\n");
                    }
                    VariantShape::Struct(fields) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => {{\nlet __entries = __inner.as_map().ok_or_else(|| ::serde::Error::invalid(\"map for variant `{vname}`\", __inner))?;\n::std::result::Result::Ok(Self::{vname} {{\n"
                        );
                        for field in fields {
                            // `Self::Variant { field: ... }` init syntax is
                            // identical to struct init, so reuse the helper.
                            body.push_str(&named_field_expr(name, field));
                            body.push('\n');
                        }
                        body.push_str("})\n},\n");
                    }
                }
            }
            let _ = write!(
                body,
                "__other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}}\n}},\n__other => ::std::result::Result::Err(::serde::Error::invalid(\"enum `{name}`\", __other)),\n}}"
            );
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde derive (vendored): generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde derive (vendored): generated Deserialize impl failed to parse")
}
