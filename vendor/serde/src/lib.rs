//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no reachable crates-io mirror, so the workspace
//! vendors the narrow serde surface it actually uses (see `EXPERIMENTS.md`).
//! Instead of serde's visitor-based zero-copy architecture, this crate uses a
//! simple self-describing [`Value`] tree as the interchange format:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * the companion `serde_json` vendor crate converts [`Value`] to/from JSON
//!   text.
//!
//! The derive macros (re-exported from `serde_derive` under the `derive`
//! feature, exactly like real serde) support the shapes this workspace uses:
//! plain named-field structs, tuple structs with `#[serde(transparent)]`,
//! unit enums, enums with newtype / tuple / struct variants, and the
//! `#[serde(skip)]` / `#[serde(default)]` field attributes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data-format crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved; keys are strings).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// A short human-readable name for the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a field by name in a map's entry list (linear scan; structs in
/// this workspace are small).
#[must_use]
pub fn find_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }

    /// A required struct field was absent.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` in `{ty}`"))
    }

    /// The value had the wrong shape for the target type.
    #[must_use]
    pub fn invalid(expected: &str, got: &Value) -> Self {
        Self::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(x) if x.fract() == 0.0 => *x as i64,
                    other => return Err(Error::invalid("integer", other)),
                };
                <$ty>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::custom("integer out of range")))
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => return Err(Error::invalid("integer", other)),
                };
                <$ty>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::custom("integer out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::invalid("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::invalid("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::invalid("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::invalid("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, got {found}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::invalid("tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Map impls — keys are serialized through `Value` and rendered as strings,
// which covers the `BTreeMap<String, _>` and `BTreeMap<UnitEnum, _>` maps
// this workspace stores.
// ---------------------------------------------------------------------------

fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::Int(n) => Ok(n.to_string()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must serialize to a string-like value, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string<K: Deserialize>(raw: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(raw.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = raw.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = raw.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = raw.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot interpret map key `{raw}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::invalid("map", value))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::invalid("map", value))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3i32).to_value(), Value::Int(3));
        assert_eq!(Option::<i32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i32>::from_value(&Value::Int(7)).unwrap(), Some(7));
    }

    #[test]
    fn float_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::Int(4)).unwrap(), 4.0);
    }

    #[test]
    fn map_keys_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1.5f64);
        let v = m.to_value();
        let back = BTreeMap::<String, f64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
