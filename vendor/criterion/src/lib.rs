//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Supports the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple warm-up + fixed-budget
//! measurement loop printing mean ns/iter; there is no statistical analysis
//! or HTML reporting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, `name/param`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The rendered id text.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, balancing warm-up and a fixed
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measurement: enough iterations to fill ~200 ms, at least 10.
        let target = ((0.2 / per_iter) as u64).clamp(10, 10_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_text(), f);
        self
    }

    /// Compatibility no-op (real criterion parses CLI flags here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op (real criterion prints the final report here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_text()), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.text), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label}: no measurement (Bencher::iter not called)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    println!("{label}: {ns:.1} ns/iter ({} iters)", bencher.iterations);
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }
}
