//! Minimal, dependency-free stand-in for `serde_json`, built on the vendored
//! `serde` crate's [`serde::Value`] tree.
//!
//! Supports the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`]. Numbers round-trip
//! exactly: integers stay integers, and floats rely on Rust's shortest
//! round-trip `Display` / correctly-rounded `FromStr`, which is what the real
//! crate's `float_roundtrip` feature guarantees.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err)
    }
}

/// Convenience alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's Display for f64 is the shortest representation that
                // round-trips, so parsing it back recovers the exact bits.
                out.push_str(&x.to_string());
            } else {
                // Matches real serde_json's default: non-finite → null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_from(text)?;
    T::from_value(&value).map_err(Error::from)
}

fn parse_value_from(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at offset {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        let end = self.pos + keyword.len();
        if self.bytes.get(self.pos..end) == Some(keyword.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?
        {
            b'n' => self.expect_keyword("null").map(|()| Value::Null),
            b't' => self.expect_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.expect_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}, got `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}, got `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let code = self.parse_hex4()?;
                        if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: must be followed by \uXXXX low.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(Error::new("invalid surrogate pair"));
                            }
                            let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape `\\{}` at offset {}",
                            other as char,
                            self.pos - 1
                        )))
                    }
                },
                b => {
                    // Re-decode UTF-8: back up and take the full char.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let rest = &self.bytes[start..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
    }

    #[test]
    fn float_bits_round_trip() {
        for x in [0.1f64, 1e-300, 1e300, std::f64::consts::PI, -2.5e-7] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}é🙂".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1i32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1i32];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<i32>>("[1,").is_err());
    }
}
