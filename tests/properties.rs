//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations, conditions and drive profiles.

use monityre::core::{EmulatorConfig, EnergyAnalyzer, EnergyBalance, Scenario, TransientEmulator};
use monityre::harvest::{HarvestChain, PiezoScavenger, Regulator, Supercap};
use monityre::node::{Architecture, NodeConfig};
use monityre::power::{ProcessCorner, WorkingConditions};
use monityre::profile::{PiecewiseProfile, Wheel};
use monityre::units::{
    Capacitance, Duration, Energy, Frequency, Resistance, Speed, Temperature, Voltage,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = NodeConfig> {
    (
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256), Just(512)],
        1u32..=16,
        8u32..=64,
        0.02f64..0.5,
        2.0f64..16.0,
    )
        .prop_map(|(samples, tx, payload, acq, mhz)| {
            NodeConfig::reference()
                .with_samples_per_round(samples)
                .with_tx_period_rounds(tx)
                .with_payload_bytes(payload)
                .with_acquisition_fraction(acq)
                .with_dsp_clock(Frequency::from_megahertz(mhz))
        })
}

fn arb_conditions() -> impl Strategy<Value = WorkingConditions> {
    (
        0.9f64..1.4,
        -40.0f64..125.0,
        prop_oneof![
            Just(ProcessCorner::SlowSlow),
            Just(ProcessCorner::Typical),
            Just(ProcessCorner::FastFast),
        ],
    )
        .prop_map(|(v, t, corner)| {
            WorkingConditions::builder()
                .supply(Voltage::from_volts(v))
                .temperature(Temperature::from_celsius(t))
                .corner(corner)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-round energy is positive and finite for every configuration,
    /// condition and speed.
    #[test]
    fn node_energy_positive_and_finite(
        config in arb_config(),
        cond in arb_conditions(),
        kmh in 1.0f64..250.0,
    ) {
        let arch = Architecture::from_config(config);
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let e = analyzer.required_per_round(Speed::from_kmh(kmh)).unwrap();
        prop_assert!(e.is_finite());
        prop_assert!(e > Energy::ZERO);
    }

    /// The required energy never increases when the node is configured to
    /// do strictly less work (fewer samples, sparser TX).
    #[test]
    fn less_work_never_costs_more(
        cond in arb_conditions(),
        kmh in 10.0f64..200.0,
        samples in 64u32..512,
        tx in 1u32..8,
    ) {
        let heavy = Architecture::from_config(
            NodeConfig::reference()
                .with_samples_per_round(samples)
                .with_tx_period_rounds(tx),
        );
        let light = Architecture::from_config(
            NodeConfig::reference()
                .with_samples_per_round(samples / 2)
                .with_tx_period_rounds(tx * 2),
        );
        let speed = Speed::from_kmh(kmh);
        let e_heavy = EnergyAnalyzer::new(&heavy, cond)
            .required_per_round(speed)
            .unwrap();
        let e_light = EnergyAnalyzer::new(&light, cond)
            .required_per_round(speed)
            .unwrap();
        prop_assert!(e_light <= e_heavy * 1.000_001);
    }

    /// The balance sweep has at most one surplus↔deficit transition for
    /// any scavenger sizing (monotone supply vs near-monotone demand).
    #[test]
    fn at_most_one_crossing(scale in 0.2f64..4.0, cond in arb_conditions()) {
        let chain = HarvestChain::new(
            PiezoScavenger::reference().scaled(scale),
            Regulator::reference(),
            Wheel::reference(),
        );
        let scenario = Scenario::builder().conditions(cond).chain(chain).build();
        let report = EnergyBalance::new(&scenario)
            .unwrap()
            .sweep(Speed::from_kmh(6.0), Speed::from_kmh(220.0), 108);
        let crossings = report
            .points()
            .windows(2)
            .filter(|w| w[0].is_surplus() != w[1].is_surplus())
            .count();
        prop_assert!(crossings <= 1, "{crossings} crossings at scale {scale}");
    }

    /// Emulator energy accounting balances for arbitrary piecewise drive
    /// profiles: ΔE_stored == harvested − consumed when self-discharge is
    /// negligible.
    #[test]
    fn emulator_conserves_energy(
        speeds in proptest::collection::vec(0.0f64..150.0, 3..8),
        seed_minutes in 1.0f64..4.0,
    ) {
        let arch = Architecture::reference();
        let chain = HarvestChain::reference();
        let mut points = vec![(Duration::ZERO, Speed::from_kmh(speeds[0]))];
        let segment = Duration::from_mins(seed_minutes / speeds.len() as f64);
        for (i, &kmh) in speeds.iter().enumerate().skip(1) {
            points.push((segment * i as f64, Speed::from_kmh(kmh)));
        }
        let profile = PiecewiseProfile::new(points).unwrap();

        let emulator = TransientEmulator::new(
            &arch,
            &chain,
            WorkingConditions::reference(),
            EmulatorConfig::new(),
        )
        .unwrap();
        let mut storage = Supercap::new(
            Capacitance::from_millifarads(47.0),
            Voltage::from_volts(1.8),
            Voltage::from_volts(3.6),
            Resistance::from_megaohms(1.0e9),
            Voltage::from_volts(2.7),
        );
        let before = storage.stored();
        let report = emulator.run(&profile, &mut storage);
        let delta = storage.stored() - before;
        let expected = report.harvested - report.consumed;
        prop_assert!(
            delta.approx_eq(expected, 1e-3),
            "ΔE {delta} vs harvested − consumed {expected}"
        );
        // Coverage is a valid fraction and windows fit the span.
        prop_assert!((0.0..=1.0).contains(&report.coverage()));
        for w in &report.windows {
            prop_assert!(w.start <= w.end);
        }
    }

    /// Serde round-trips any generated architecture exactly.
    #[test]
    fn architecture_serde_round_trip(config in arb_config()) {
        let arch = Architecture::from_config(config);
        let json = serde_json::to_string(&arch).unwrap();
        let back: Architecture = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, arch);
    }
}
