//! End-to-end integration: the full Fig. 1 flow through the facade crate.

use monityre::core::{Flow, FlowReport, Scenario, SelectionPolicy, SweepExecutor};
use monityre::profile::{CompositeProfile, ExtraUrbanCycle, UrbanCycle};
use monityre::units::Speed;

fn run_flow(policy: SelectionPolicy) -> FlowReport {
    let flow = Flow::new(&Scenario::reference(), Speed::from_kmh(30.0), policy)
        .with_executor(SweepExecutor::new(2));
    let trip = CompositeProfile::new(vec![
        Box::new(UrbanCycle::new()),
        Box::new(ExtraUrbanCycle::new()),
    ]);
    flow.run(&trip)
        .expect("the reference flow executes end to end")
}

#[test]
fn flow_produces_all_six_stage_artifacts() {
    let report = run_flow(SelectionPolicy::DutyCycleAware);
    assert_eq!(report.power_estimates.len(), 6);
    assert_eq!(report.initial_energy.blocks.len(), 6);
    assert_eq!(report.optimization.recommendations.len(), 6);
    assert!(report.balance.len() > 50);
    assert!(!report.emulation.samples.is_empty());
    assert!(!report.emulation.windows.is_empty());
}

#[test]
fn optimization_reduces_energy_and_activation_speed() {
    let report = run_flow(SelectionPolicy::DutyCycleAware);
    assert!(
        report.optimization.saving() > 0.15,
        "saving {}",
        report.optimization.saving()
    );
    let before = report.break_even_before().unwrap();
    let after = report.break_even_after().unwrap();
    assert!(after < before);
    // The paper's qualitative claim: activation speed drops by km/h-scale.
    assert!(before.kmh() - after.kmh() > 1.0);
}

#[test]
fn duty_cycle_aware_flow_beats_power_figures_flow() {
    let aware = run_flow(SelectionPolicy::DutyCycleAware);
    let naive = run_flow(SelectionPolicy::PowerFigures);
    assert!(aware.optimization.energy_after < naive.optimization.energy_after);
    assert!(aware.break_even_after().unwrap() <= naive.break_even_after().unwrap());
}

#[test]
fn flow_summary_is_complete() {
    let report = run_flow(SelectionPolicy::DutyCycleAware);
    let text = report.summary();
    for stage in 1..=6 {
        assert!(
            text.contains(&format!("Stage {stage}")),
            "missing stage {stage}"
        );
    }
}
