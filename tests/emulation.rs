//! Integration tests for long-window emulation on realistic cycles.

use monityre::core::{EmulatorConfig, TransientEmulator, VehicleEmulator};
use monityre::harvest::{HarvestChain, Storage, Supercap};
use monityre::node::Architecture;
use monityre::power::WorkingConditions;
use monityre::profile::{SpeedProfile, WltcLikeCycle};

#[test]
fn wltc_like_cycle_sustains_the_reference_node() {
    let arch = Architecture::reference();
    let chain = HarvestChain::reference();
    let emulator = TransientEmulator::new(
        &arch,
        &chain,
        WorkingConditions::reference(),
        EmulatorConfig::new(),
    )
    .unwrap();
    let cycle = WltcLikeCycle::new();
    let mut storage = Supercap::reference();
    let report = emulator.run(&cycle, &mut storage);

    // The WLTC-like mix averages ≈ 45 km/h — above break-even, so the trip
    // as a whole must be net positive and keep high coverage.
    assert!(report.coverage() > 0.8, "coverage {}", report.coverage());
    assert!(report.harvested > report.consumed);
    assert_eq!(report.brownouts, 0);
    // The low phase contains multi-minute crawls; the reservoir must
    // visibly cycle (SoC moves more than a couple of percent).
    let socs: Vec<f64> = report.samples.iter().map(|s| s.soc).collect();
    let min = socs.iter().copied().fold(1.0f64, f64::min);
    let max = socs.iter().copied().fold(0.0f64, f64::max);
    assert!(max - min > 0.02, "SoC band {min}..{max} too flat");
}

#[test]
fn wltc_like_cycle_supports_four_corner_friction_estimation() {
    let emulator = VehicleEmulator::reference();
    let report = emulator.run(&WltcLikeCycle::new()).unwrap();
    assert!(
        report.all_active_fraction > 0.7,
        "all-active {}",
        report.all_active_fraction
    );
    assert!(report.any_active_fraction >= report.all_active_fraction);
}

#[test]
fn emulation_respects_storage_bounds_throughout() {
    let arch = Architecture::reference();
    let chain = HarvestChain::reference();
    let emulator = TransientEmulator::new(
        &arch,
        &chain,
        WorkingConditions::reference(),
        EmulatorConfig::new(),
    )
    .unwrap();
    let cycle = WltcLikeCycle::new();
    let mut storage = Supercap::reference();
    let report = emulator.run(&cycle, &mut storage);
    for s in &report.samples {
        assert!((0.0..=1.0).contains(&s.soc), "SoC {} out of bounds", s.soc);
        assert!(!s.node_power.is_negative());
        assert!(s.tyre_temperature.celsius() > -50.0 && s.tyre_temperature.celsius() < 150.0);
    }
    assert!(storage.state_of_charge() >= 0.0);
    // Sanity: trip span recorded faithfully.
    assert!((report.span.secs() - cycle.duration().secs()).abs() < 1e-9);
}
