//! Integration assertions on the shapes of the paper's data figures.

use monityre::core::{EnergyBalance, InstantTrace, Scenario};
use monityre::units::{Duration, Speed};

#[test]
fn fig2_has_paper_shape() {
    let scenario = Scenario::reference();
    let balance = EnergyBalance::new(&scenario).unwrap();
    let report = balance.sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 391);

    // Generated: zero at cut-in, monotone increasing, saturating.
    let first = report.points().first().unwrap();
    let last = report.points().last().unwrap();
    assert_eq!(first.generated.joules(), 0.0, "below cut-in");
    for w in report.points().windows(2) {
        assert!(w[1].generated >= w[0].generated);
    }
    let near_end = &report.points()[report.len() - 40];
    assert!(
        last.generated.joules() < near_end.generated.joules() * 1.15,
        "generated curve must flatten at high speed"
    );

    // Required: decreasing from the low-speed leakage-dominated regime.
    assert!(first.required > last.required);

    // Exactly one crossing, in the calibrated band.
    let crossings = report
        .points()
        .windows(2)
        .filter(|w| w[0].is_surplus() != w[1].is_surplus())
        .count();
    assert_eq!(crossings, 1);
    let be = report.break_even().unwrap();
    assert!(be.kmh() > 20.0 && be.kmh() < 50.0, "break-even {be:?}");
}

#[test]
fn fig3_has_paper_structure() {
    let scenario = Scenario::reference();
    let analyzer = scenario.analyzer();
    let speed = Speed::from_kmh(60.0);
    let trace = InstantTrace::generate(
        &analyzer,
        speed,
        Duration::from_millis(500.0),
        Duration::from_micros(50.0),
    )
    .unwrap();

    // Three power scales: µW floor, hundreds-of-µW acquisition plateau,
    // mW TX spike.
    assert!(trace.floor().microwatts() < 25.0);
    assert!(trace.peak().milliwatts() > 15.0);
    let plateau = trace
        .samples()
        .iter()
        .filter(|s| s.total.microwatts() > 200.0 && s.total.milliwatts() < 5.0)
        .count();
    assert!(
        plateau > 100,
        "acquisition plateau missing ({plateau} samples)"
    );

    // Periodicity at the wheel round.
    let period = trace.round_period();
    let at = |t: Duration| {
        trace
            .samples()
            .iter()
            .min_by(|a, b| {
                (a.time.secs() - t.secs())
                    .abs()
                    .total_cmp(&(b.time.secs() - t.secs()).abs())
            })
            .unwrap()
            .total
    };
    // Same phase offset one round apart (both rounds without TX).
    let t1 = period * 1.3;
    let t2 = period * 2.3;
    assert!(at(t1).approx_eq(at(t2), 1e-6), "{} vs {}", at(t1), at(t2));
}

#[test]
fn fig2_and_fig3_are_mutually_consistent() {
    // The Fig. 3 trace's mean power must match the Fig. 2 required energy
    // divided by the round period (over whole TX cycles).
    let scenario = Scenario::reference();
    let analyzer = scenario.analyzer();
    let speed = Speed::from_kmh(60.0);
    let period = analyzer.round_period(speed).unwrap();
    let trace = InstantTrace::generate(
        &analyzer,
        speed,
        period * 8.0, // two full TX cycles
        Duration::from_micros(20.0),
    )
    .unwrap();
    let required = analyzer.required_per_round(speed).unwrap();
    let expected_mean = required / period;
    let rel = (trace.mean().watts() - expected_mean.watts()).abs() / expected_mean.watts();
    assert!(
        rel < 0.02,
        "trace mean {} vs analyzer {}",
        trace.mean(),
        expected_mean
    );
}
