//! Error type for storage operations.

use std::error::Error;
use std::fmt;

use monityre_units::Energy;

/// Errors raised by [`crate::Storage`] operations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StorageError {
    /// The reservoir cannot cover a withdrawal.
    Deficit {
        /// The amount requested.
        requested: Energy,
        /// What was actually available.
        available: Energy,
    },
}

impl StorageError {
    /// The unmet portion of the request.
    #[must_use]
    pub fn shortfall(&self) -> Energy {
        match self {
            Self::Deficit {
                requested,
                available,
            } => (*requested - *available).max(Energy::ZERO),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Deficit {
                requested,
                available,
            } => write!(
                f,
                "energy deficit: requested {requested}, only {available} available"
            ),
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortfall_is_difference() {
        let err = StorageError::Deficit {
            requested: Energy::from_micros(10.0),
            available: Energy::from_micros(4.0),
        };
        assert!(err.shortfall().approx_eq(Energy::from_micros(6.0), 1e-12));
    }

    #[test]
    fn display_names_both_amounts() {
        let err = StorageError::Deficit {
            requested: Energy::from_micros(10.0),
            available: Energy::from_micros(4.0),
        };
        let msg = err.to_string();
        assert!(msg.contains("deficit"));
    }
}
