//! Power conditioning: the AC→DC regulator between transducer and storage.
//!
//! Switched rectifier/boost stages for µW-class harvesters have a strongly
//! load-dependent efficiency: quiescent losses dominate at light input,
//! conduction losses bite at heavy input, with a broad peak in between.
//! The model is a piecewise-smooth curve parameterized by its peak.

use monityre_units::{Efficiency, Energy, Power};
use serde::{Deserialize, Serialize};

/// A conditioning stage with load-dependent efficiency.
///
/// Efficiency as a function of input power `p`:
///
/// ```text
/// η(p) = η_peak · p / (p + p_quiescent)        (quiescent roll-off)
///        · 1 / (1 + (p / p_heavy)²·k_cond)     (conduction roll-off)
/// ```
///
/// ```
/// use monityre_harvest::Regulator;
/// use monityre_units::Power;
///
/// let reg = Regulator::reference();
/// let light = reg.efficiency(Power::from_microwatts(5.0));
/// let mid = reg.efficiency(Power::from_microwatts(500.0));
/// assert!(mid.value() > light.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regulator {
    peak: Efficiency,
    quiescent: Power,
    heavy: Power,
    conduction_factor: f64,
}

impl Regulator {
    /// Builds a regulator.
    ///
    /// * `peak` — the best-case efficiency;
    /// * `quiescent` — input power scale below which efficiency collapses
    ///   (the controller's own consumption);
    /// * `heavy` — input power scale above which conduction losses grow;
    /// * `conduction_factor` — strength of the heavy-load roll-off.
    ///
    /// # Panics
    ///
    /// Panics if `quiescent` or `heavy` are non-positive or
    /// `conduction_factor` is negative.
    #[must_use]
    pub fn new(peak: Efficiency, quiescent: Power, heavy: Power, conduction_factor: f64) -> Self {
        assert!(
            quiescent.watts() > 0.0 && quiescent.is_finite(),
            "quiescent power must be positive, got {quiescent}"
        );
        assert!(
            heavy.watts() > 0.0 && heavy.is_finite(),
            "heavy-load power must be positive, got {heavy}"
        );
        assert!(
            conduction_factor >= 0.0 && conduction_factor.is_finite(),
            "conduction factor must be non-negative, got {conduction_factor}"
        );
        Self {
            peak,
            quiescent,
            heavy,
            conduction_factor,
        }
    }

    /// The reference conditioning stage: 82 % peak, 2 µW quiescent scale,
    /// 20 mW heavy-load scale (well above the transducer's mW-class
    /// maximum, so conduction losses stay second-order across the whole
    /// speed range).
    #[must_use]
    pub fn reference() -> Self {
        Self::new(
            Efficiency::new(0.82).expect("valid"),
            Power::from_microwatts(2.0),
            Power::from_milliwatts(20.0),
            0.5,
        )
    }

    /// An ideal, lossless stage (baseline for ablations).
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(
            Efficiency::IDEAL,
            Power::from_nanowatts(1.0),
            Power::from_watts(1.0e6),
            0.0,
        )
    }

    /// The peak efficiency.
    #[must_use]
    pub fn peak(&self) -> Efficiency {
        self.peak
    }

    /// Conversion efficiency at the given input power.
    #[must_use]
    pub fn efficiency(&self, input: Power) -> Efficiency {
        let p = input.watts().max(0.0);
        if p == 0.0 {
            // Degenerate but safe: an idle regulator converts nothing; report
            // a tiny efficiency rather than an invalid zero.
            return Efficiency::new(1e-9).expect("tiny efficiency is valid");
        }
        let quiescent_roll = p / (p + self.quiescent.watts());
        let x = p / self.heavy.watts();
        let conduction_roll = 1.0 / (1.0 + self.conduction_factor * x * x);
        let eta = (self.peak.value() * quiescent_roll * conduction_roll).clamp(1e-9, 1.0);
        Efficiency::new(eta).expect("clamped into (0, 1]")
    }

    /// Converts a per-round input energy given the *average* input power
    /// the transducer sustains at that operating point.
    #[must_use]
    pub fn convert(&self, input_energy: Energy, average_input: Power) -> Energy {
        input_energy * self.efficiency(average_input).value()
    }
}

impl Default for Regulator {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_in_the_middle() {
        let reg = Regulator::reference();
        let light = reg.efficiency(Power::from_microwatts(1.0)).value();
        let mid = reg.efficiency(Power::from_microwatts(800.0)).value();
        let heavy = reg.efficiency(Power::from_watts(0.5)).value();
        assert!(mid > light);
        assert!(mid > heavy);
    }

    #[test]
    fn efficiency_never_exceeds_peak() {
        let reg = Regulator::reference();
        for uw in [0.1, 1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let eta = reg.efficiency(Power::from_microwatts(uw));
            assert!(eta.value() <= reg.peak().value() + 1e-12);
        }
    }

    #[test]
    fn mid_load_efficiency_near_peak() {
        let reg = Regulator::reference();
        let eta = reg.efficiency(Power::from_microwatts(500.0)).value();
        assert!(eta > 0.75, "got {eta}");
    }

    #[test]
    fn zero_input_is_safe() {
        let reg = Regulator::reference();
        let eta = reg.efficiency(Power::ZERO);
        assert!(eta.value() > 0.0 && eta.value() < 1e-6);
    }

    #[test]
    fn convert_scales_energy() {
        let reg = Regulator::reference();
        let avg = Power::from_microwatts(500.0);
        let out = reg.convert(Energy::from_micros(10.0), avg);
        let eta = reg.efficiency(avg).value();
        assert!(out.approx_eq(Energy::from_micros(10.0 * eta), 1e-12));
    }

    #[test]
    fn ideal_is_lossless_at_moderate_load() {
        let reg = Regulator::ideal();
        let eta = reg.efficiency(Power::from_microwatts(100.0)).value();
        assert!(eta > 0.99, "got {eta}");
    }

    #[test]
    #[should_panic(expected = "quiescent power must be positive")]
    fn rejects_zero_quiescent() {
        let _ = Regulator::new(
            Efficiency::IDEAL,
            Power::ZERO,
            Power::from_milliwatts(1.0),
            0.1,
        );
    }

    #[test]
    fn serde_round_trip() {
        let reg = Regulator::reference();
        let json = serde_json::to_string(&reg).unwrap();
        let back: Regulator = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }
}
