//! Supercapacitor storage model.

use monityre_units::{Capacitance, Duration, Energy, Resistance, Voltage};
use serde::{Deserialize, Serialize};

use crate::{Storage, StorageError};

/// A supercapacitor reservoir with voltage window, self-discharge and
/// overflow spill.
///
/// State is tracked as the capacitor voltage; stored energy is `½CV²`.
/// The *usable* window is `[v_min, v_max]`: below `v_min` the node's
/// regulator drops out, above `v_max` the input clamp spills excess energy.
/// Self-discharge follows the RC decay of the leakage resistance.
///
/// ```
/// use monityre_harvest::{Storage, Supercap};
/// use monityre_units::Energy;
///
/// let mut cap = Supercap::reference();
/// let soc0 = cap.state_of_charge();
/// cap.deposit(Energy::from_millis(10.0));
/// assert!(cap.state_of_charge() > soc0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supercap {
    capacitance: Capacitance,
    v_min: Voltage,
    v_max: Voltage,
    leakage_resistance: Resistance,
    voltage: Voltage,
}

impl Supercap {
    /// Builds a supercap; the initial voltage is clamped into the usable
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is non-positive, the voltage window is
    /// inverted or non-positive, or the leakage resistance is non-positive.
    #[must_use]
    pub fn new(
        capacitance: Capacitance,
        v_min: Voltage,
        v_max: Voltage,
        leakage_resistance: Resistance,
        initial: Voltage,
    ) -> Self {
        assert!(
            capacitance.farads() > 0.0 && capacitance.is_finite(),
            "capacitance must be positive, got {capacitance}"
        );
        assert!(
            v_min.volts() >= 0.0 && v_max.volts() > v_min.volts(),
            "voltage window must satisfy 0 <= v_min < v_max, got [{v_min}, {v_max}]"
        );
        assert!(
            leakage_resistance.ohms() > 0.0 && leakage_resistance.is_finite(),
            "leakage resistance must be positive, got {leakage_resistance}"
        );
        Self {
            capacitance,
            v_min,
            v_max,
            leakage_resistance,
            voltage: initial.clamp(v_min, v_max),
        }
    }

    /// The reference reservoir: 47 mF, usable window 1.8–3.6 V, 5 MΩ
    /// self-discharge, starting half charged. Usable capacity ≈ 229 mJ —
    /// enough to ride through tens of seconds of urban stop-and-go.
    #[must_use]
    pub fn reference() -> Self {
        let v_min = Voltage::from_volts(1.8);
        let v_max = Voltage::from_volts(3.6);
        let mid = Voltage::from_volts((1.8f64.powi(2) / 2.0 + 3.6f64.powi(2) / 2.0).sqrt());
        Self::new(
            Capacitance::from_millifarads(47.0),
            v_min,
            v_max,
            Resistance::from_megaohms(5.0),
            mid,
        )
    }

    /// The current terminal voltage.
    #[must_use]
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// The usable voltage window `(v_min, v_max)`.
    #[must_use]
    pub fn window(&self) -> (Voltage, Voltage) {
        (self.v_min, self.v_max)
    }

    /// Total stored energy `½CV²` (including the unusable floor).
    #[must_use]
    pub fn stored(&self) -> Energy {
        self.capacitance.energy_at(self.voltage)
    }

    fn floor_energy(&self) -> Energy {
        self.capacitance.energy_at(self.v_min)
    }

    fn ceiling_energy(&self) -> Energy {
        self.capacitance.energy_at(self.v_max)
    }

    fn set_total(&mut self, total: Energy) {
        // V = sqrt(2E/C), clamped into the window.
        let v = (2.0 * total.joules().max(0.0) / self.capacitance.farads()).sqrt();
        self.voltage = Voltage::from_volts(v).clamp(self.v_min, self.v_max);
    }
}

impl Storage for Supercap {
    fn available(&self) -> Energy {
        (self.stored() - self.floor_energy()).max(Energy::ZERO)
    }

    fn capacity(&self) -> Energy {
        self.ceiling_energy() - self.floor_energy()
    }

    fn deposit(&mut self, amount: Energy) -> Energy {
        debug_assert!(!amount.is_negative(), "deposit must be non-negative");
        let total = self.stored() + amount;
        let spill = (total - self.ceiling_energy()).max(Energy::ZERO);
        self.set_total(total.min(self.ceiling_energy()));
        spill
    }

    fn withdraw(&mut self, amount: Energy) -> Result<(), StorageError> {
        debug_assert!(!amount.is_negative(), "withdrawal must be non-negative");
        let available = self.available();
        if amount > available {
            return Err(StorageError::Deficit {
                requested: amount,
                available,
            });
        }
        self.set_total(self.stored() - amount);
        Ok(())
    }

    fn self_discharge(&mut self, dt: Duration) {
        // RC decay of the terminal voltage, floored at v_min's energy
        // accounting (the leakage below v_min is real but outside the
        // usable model window — clamp keeps the invariant simple).
        let tau = self.leakage_resistance.ohms() * self.capacitance.farads();
        let decay = (-dt.secs() / tau).exp();
        let v = Voltage::from_volts(self.voltage.volts() * decay);
        self.voltage = v.clamp(self.v_min, self.v_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Supercap {
        Supercap::reference()
    }

    #[test]
    fn reference_starts_half_charged() {
        let cap = fresh();
        assert!((cap.state_of_charge() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deposit_withdraw_round_trip() {
        let mut cap = fresh();
        let before = cap.available();
        let spill = cap.deposit(Energy::from_millis(5.0));
        assert_eq!(spill, Energy::ZERO);
        cap.withdraw(Energy::from_millis(5.0)).unwrap();
        assert!(cap.available().approx_eq(before, 1e-9));
    }

    #[test]
    fn overfill_spills_exactly() {
        let mut cap = fresh();
        let room = cap.capacity() - cap.available();
        let spill = cap.deposit(room + Energy::from_millis(3.0));
        assert!(spill.approx_eq(Energy::from_millis(3.0), 1e-6));
        assert!((cap.state_of_charge() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overdraw_fails_without_side_effects() {
        let mut cap = fresh();
        let available = cap.available();
        let err = cap
            .withdraw(available + Energy::from_millis(1.0))
            .unwrap_err();
        assert!(err.shortfall().approx_eq(Energy::from_millis(1.0), 1e-6));
        assert!(cap.available().approx_eq(available, 1e-12));
    }

    #[test]
    fn draining_to_empty_is_allowed() {
        let mut cap = fresh();
        let available = cap.available();
        cap.withdraw(available).unwrap();
        assert!(cap.available().joules() < 1e-9);
        assert!((cap.voltage().volts() - 1.8).abs() < 1e-6);
    }

    #[test]
    fn self_discharge_decays() {
        let mut cap = fresh();
        cap.deposit(cap.capacity()); // fill up
        let v0 = cap.voltage();
        cap.self_discharge(Duration::from_hours(24.0));
        assert!(cap.voltage() < v0);
        // τ = 5 MΩ · 47 mF = 235 000 s ≈ 65 h: a day loses ~30 %.
        let expected = v0.volts() * f64::exp(-24.0 * 3600.0 / 235_000.0);
        assert!((cap.voltage().volts() - expected).abs() < 1e-6);
    }

    #[test]
    fn self_discharge_never_goes_below_floor() {
        let mut cap = fresh();
        cap.self_discharge(Duration::from_hours(10_000.0));
        assert!(cap.voltage().volts() >= 1.8 - 1e-12);
    }

    #[test]
    fn soc_bounds() {
        let mut cap = fresh();
        cap.deposit(Energy::from_joules(100.0));
        assert!(cap.state_of_charge() <= 1.0);
        cap.withdraw(cap.available()).unwrap();
        assert!(cap.state_of_charge() >= 0.0);
    }

    #[test]
    fn capacity_matches_half_cv2_window() {
        let cap = fresh();
        // ½·47 mF·(3.6² − 1.8²) = ½·0.047·9.72 = 228.42 mJ.
        assert!(cap.capacity().approx_eq(Energy::from_millis(228.42), 1e-3));
    }

    #[test]
    #[should_panic(expected = "voltage window must satisfy")]
    fn rejects_inverted_window() {
        let _ = Supercap::new(
            Capacitance::from_millifarads(10.0),
            Voltage::from_volts(3.0),
            Voltage::from_volts(2.0),
            Resistance::from_megaohms(1.0),
            Voltage::from_volts(2.5),
        );
    }

    #[test]
    fn initial_voltage_clamped() {
        let cap = Supercap::new(
            Capacitance::from_millifarads(10.0),
            Voltage::from_volts(1.0),
            Voltage::from_volts(3.0),
            Resistance::from_megaohms(1.0),
            Voltage::from_volts(9.0),
        );
        assert_eq!(cap.voltage().volts(), 3.0);
    }
}
