//! Energy-scavenging models: transducer, conditioning, storage.
//!
//! The Sensor Node "cannot be supplied by standard batteries for a full
//! tyre lifetime, therefore it is necessary to consider energy harvesting
//! devices that can supply energy to the system during the wheel rotation.
//! Unfortunately, the available energy depends almost on the size of such
//! a scavenging device and mostly on the tyre rotation speed" (§I).
//!
//! Pirelli's in-tyre piezoelectric scavenger is proprietary hardware, so
//! this crate provides parametric models that preserve the behaviour the
//! flow depends on:
//!
//! * [`Scavenger`] implementations — a piezoelectric transducer excited by
//!   the contact-patch deformation once per wheel round
//!   ([`PiezoScavenger`]: cut-in speed, rising region, saturation) and an
//!   electromagnetic alternative ([`ElectromagneticScavenger`]);
//! * [`Regulator`] — the AC→DC conditioning stage with a load-dependent
//!   efficiency curve;
//! * [`Storage`] implementations — a supercapacitor reservoir
//!   ([`Supercap`]) with voltage limits, self-discharge and spill, plus an
//!   [`IdealBattery`] baseline;
//! * [`HarvestChain`] — the composed source the energy-balance evaluator
//!   and the transient emulator consume.
//!
//! # Example
//!
//! ```
//! use monityre_harvest::HarvestChain;
//! use monityre_units::Speed;
//!
//! let chain = HarvestChain::reference();
//! let slow = chain.delivered_per_round(Speed::from_kmh(10.0));
//! let fast = chain.delivered_per_round(Speed::from_kmh(120.0));
//! assert!(fast > slow);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod chain;
mod error;
mod piezo;
mod regulator;
mod scavenger;
mod supercap;

pub use battery::IdealBattery;
pub use chain::HarvestChain;
pub use error::StorageError;
pub use piezo::{ElectromagneticScavenger, PiezoScavenger};
pub use regulator::Regulator;
pub use scavenger::{ScaledScavenger, Scavenger};
pub use supercap::Supercap;

use monityre_units::{Duration, Energy};

/// A rechargeable energy reservoir with explicit capacity limits.
///
/// Implementations must conserve energy: deposits beyond capacity are
/// *spilled* (reported back), withdrawals beyond the usable reserve fail
/// without side effects.
pub trait Storage {
    /// Energy currently stored above the usable floor.
    fn available(&self) -> Energy;

    /// Usable capacity (full minus floor).
    fn capacity(&self) -> Energy;

    /// Deposits `amount`, returning the spilled excess (zero when it fits).
    fn deposit(&mut self, amount: Energy) -> Energy;

    /// Withdraws `amount`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Deficit`] with the available amount when the
    /// reserve cannot cover the request; the state is unchanged.
    fn withdraw(&mut self, amount: Energy) -> Result<(), StorageError>;

    /// Applies self-discharge over `dt`.
    fn self_discharge(&mut self, dt: Duration);

    /// State of charge in `[0, 1]` relative to usable capacity.
    fn state_of_charge(&self) -> f64 {
        let cap = self.capacity().joules();
        if cap <= 0.0 {
            0.0
        } else {
            (self.available().joules() / cap).clamp(0.0, 1.0)
        }
    }
}
