//! Concrete transducer models.

use monityre_units::{Energy, Speed};
use serde::{Deserialize, Serialize};

use crate::Scavenger;

/// A piezoelectric in-tyre scavenger excited by the contact-patch
/// deformation once per wheel round.
///
/// Per-round energy follows a saturating law in speed:
///
/// ```text
/// E(v) = 0                                v ≤ v_cut-in
/// E(v) = E_sat · x² / (1 + x²),   x = (v − v_cut-in) / v_half
/// ```
///
/// * below the **cut-in speed** the strain rate is too low for the
///   rectifier threshold — nothing is produced;
/// * above it, output rises roughly quadratically (strain-rate squared)
///   while the deformation amplitude still grows;
/// * at high speed the deformation amplitude and the conditioning limit
///   the output, which saturates at `E_sat` per round.
///
/// The `reference()` parameters are calibrated so the composed
/// [`crate::HarvestChain::reference`] crosses the reference Sensor Node's
/// demand in the low tens of km/h, matching the qualitative break-even of
/// the paper's Fig. 2.
///
/// ```
/// use monityre_harvest::{PiezoScavenger, Scavenger};
/// use monityre_units::Speed;
///
/// let piezo = PiezoScavenger::reference();
/// assert_eq!(piezo.energy_per_round(Speed::from_kmh(3.0)).joules(), 0.0);
/// assert!(piezo.energy_per_round(Speed::from_kmh(60.0))
///         > piezo.energy_per_round(Speed::from_kmh(20.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiezoScavenger {
    saturation: Energy,
    cut_in: Speed,
    half_speed: Speed,
}

impl PiezoScavenger {
    /// Builds a piezo scavenger.
    ///
    /// * `saturation` — asymptotic per-round energy at high speed;
    /// * `cut_in` — speed below which nothing is produced;
    /// * `half_speed` — the speed *offset above cut-in* at which output
    ///   reaches half the saturation value.
    ///
    /// # Panics
    ///
    /// Panics if `saturation` is negative, `cut_in` negative, or
    /// `half_speed` non-positive.
    #[must_use]
    pub fn new(saturation: Energy, cut_in: Speed, half_speed: Speed) -> Self {
        assert!(
            saturation.is_finite() && !saturation.is_negative(),
            "saturation energy must be non-negative, got {saturation}"
        );
        assert!(
            cut_in.is_finite() && !cut_in.is_negative(),
            "cut-in speed must be non-negative, got {cut_in}"
        );
        assert!(
            half_speed.is_finite() && half_speed.mps() > 0.0,
            "half-saturation speed must be positive, got {half_speed}"
        );
        Self {
            saturation,
            cut_in,
            half_speed,
        }
    }

    /// The reference transducer: 90 µJ/round saturation, 5 km/h cut-in,
    /// half saturation 40 km/h above cut-in. At highway speed this yields
    /// ≈ 1.4 mW average raw power on a 1.9 m wheel — the mW class reported
    /// for in-tyre piezo harvesters.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(
            Energy::from_micros(90.0),
            Speed::from_kmh(5.0),
            Speed::from_kmh(40.0),
        )
    }

    /// The saturation energy.
    #[must_use]
    pub fn saturation(&self) -> Energy {
        self.saturation
    }

    /// The half-saturation speed offset.
    #[must_use]
    pub fn half_speed(&self) -> Speed {
        self.half_speed
    }

    /// Returns a copy with the saturation energy scaled by `factor` — the
    /// "size of the scavenging device" knob from §I.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative, got {factor}"
        );
        Self {
            saturation: self.saturation * factor,
            ..*self
        }
    }
}

impl Scavenger for PiezoScavenger {
    fn name(&self) -> &str {
        "piezo"
    }

    fn energy_per_round(&self, speed: Speed) -> Energy {
        if speed <= self.cut_in {
            return Energy::ZERO;
        }
        let x = (speed - self.cut_in) / self.half_speed;
        self.saturation * (x * x / (1.0 + x * x))
    }

    fn cut_in(&self) -> Speed {
        self.cut_in
    }

    fn clone_box(&self) -> Box<dyn Scavenger + Send + Sync> {
        Box::new(*self)
    }

    fn scaled_box(&self, factor: f64) -> Box<dyn Scavenger + Send + Sync> {
        // Scale the native saturation parameter instead of wrapping, so
        // a scaled piezo stays a `PiezoScavenger` with identical numerics.
        Box::new(self.scaled(factor))
    }
}

/// An electromagnetic (coil + magnet) alternative: per-round energy linear
/// in speed above cut-in, clamped at a rectifier ceiling.
///
/// Used by the ablation experiments as a second source shape — it starts
/// weaker but does not saturate until much higher speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectromagneticScavenger {
    /// Energy gained per round per unit speed (J per m/s).
    slope: f64,
    cut_in: Speed,
    ceiling: Energy,
}

impl ElectromagneticScavenger {
    /// Builds an electromagnetic scavenger.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is negative, `cut_in` negative, or `ceiling`
    /// negative.
    #[must_use]
    pub fn new(slope: f64, cut_in: Speed, ceiling: Energy) -> Self {
        assert!(
            slope.is_finite() && slope >= 0.0,
            "slope must be non-negative, got {slope}"
        );
        assert!(
            cut_in.is_finite() && !cut_in.is_negative(),
            "cut-in speed must be non-negative"
        );
        assert!(
            ceiling.is_finite() && !ceiling.is_negative(),
            "ceiling energy must be non-negative"
        );
        Self {
            slope,
            cut_in,
            ceiling,
        }
    }

    /// The reference coil: 2 µJ per round per m/s above a 8 km/h cut-in,
    /// ceiling 120 µJ/round.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(2.0e-6, Speed::from_kmh(8.0), Energy::from_micros(120.0))
    }
}

impl Scavenger for ElectromagneticScavenger {
    fn name(&self) -> &str {
        "electromagnetic"
    }

    fn energy_per_round(&self, speed: Speed) -> Energy {
        if speed <= self.cut_in {
            return Energy::ZERO;
        }
        let raw = Energy::from_joules(self.slope * (speed - self.cut_in).mps());
        raw.min(self.ceiling)
    }

    fn cut_in(&self) -> Speed {
        self.cut_in
    }

    fn clone_box(&self) -> Box<dyn Scavenger + Send + Sync> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_profile::Wheel;

    #[test]
    fn piezo_zero_below_cut_in() {
        let p = PiezoScavenger::reference();
        for kmh in [0.0, 2.0, 5.0] {
            assert_eq!(p.energy_per_round(Speed::from_kmh(kmh)), Energy::ZERO);
        }
    }

    #[test]
    fn piezo_monotone_in_speed() {
        let p = PiezoScavenger::reference();
        let mut last = Energy::ZERO;
        for kmh in (6..=250).step_by(2) {
            let e = p.energy_per_round(Speed::from_kmh(f64::from(kmh)));
            assert!(e > last, "at {kmh} km/h");
            last = e;
        }
    }

    #[test]
    fn piezo_half_saturation_point() {
        let p = PiezoScavenger::reference();
        // x = 1 at cut-in + half_speed = 45 km/h → exactly half saturation.
        let e = p.energy_per_round(Speed::from_kmh(45.0));
        assert!(e.approx_eq(Energy::from_micros(45.0), 1e-9));
    }

    #[test]
    fn piezo_saturates() {
        let p = PiezoScavenger::reference();
        let e = p.energy_per_round(Speed::from_kmh(500.0));
        assert!(e < p.saturation());
        assert!(e > p.saturation() * 0.98);
    }

    #[test]
    fn piezo_highway_power_is_mw_class() {
        let p = PiezoScavenger::reference();
        let wheel = Wheel::reference();
        let power = p.average_power(Speed::from_kmh(130.0), &wheel);
        assert!(
            power.milliwatts() > 0.8 && power.milliwatts() < 3.0,
            "got {power}"
        );
    }

    #[test]
    fn piezo_scaled_size() {
        let small = PiezoScavenger::reference().scaled(0.5);
        let e_ref = PiezoScavenger::reference().energy_per_round(Speed::from_kmh(60.0));
        let e_small = small.energy_per_round(Speed::from_kmh(60.0));
        assert!(e_small.approx_eq(e_ref * 0.5, 1e-12));
    }

    #[test]
    fn electromagnetic_linear_then_clamped() {
        let em = ElectromagneticScavenger::reference();
        let e20 = em.energy_per_round(Speed::from_kmh(20.0));
        let e32 = em.energy_per_round(Speed::from_kmh(32.0));
        // Linear: doubling the offset above 8 km/h doubles the energy.
        assert!(e32.approx_eq(e20 * 2.0, 1e-9));
        let e_fast = em.energy_per_round(Speed::from_kmh(400.0));
        assert!(e_fast.approx_eq(Energy::from_micros(120.0), 1e-12));
    }

    #[test]
    fn electromagnetic_zero_below_cut_in() {
        let em = ElectromagneticScavenger::reference();
        assert_eq!(em.energy_per_round(Speed::from_kmh(8.0)), Energy::ZERO);
    }

    #[test]
    fn names_differ() {
        assert_ne!(
            PiezoScavenger::reference().name(),
            ElectromagneticScavenger::reference().name()
        );
    }

    #[test]
    #[should_panic(expected = "half-saturation speed must be positive")]
    fn piezo_rejects_zero_half_speed() {
        let _ = PiezoScavenger::new(Energy::from_micros(10.0), Speed::ZERO, Speed::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let p = PiezoScavenger::reference();
        let json = serde_json::to_string(&p).unwrap();
        let back: PiezoScavenger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
