//! The scavenger abstraction.

use monityre_profile::Wheel;
use monityre_units::{Energy, Power, Speed};

/// An in-wheel energy transducer.
///
/// The natural characterization is *energy per wheel round as a function of
/// vehicle speed* — one contact-patch deformation (or one field crossing)
/// happens per round, and its vigor grows with speed. Average electrical
/// power follows by multiplying with the round rate.
pub trait Scavenger {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Raw (pre-regulator) electrical energy produced during one wheel
    /// round at constant `speed`. Must be zero below the cut-in speed and
    /// non-decreasing in speed.
    fn energy_per_round(&self, speed: Speed) -> Energy;

    /// The minimum speed at which the transducer produces anything.
    fn cut_in(&self) -> Speed;

    /// Average raw power at constant `speed` on the given wheel:
    /// `P = E_round · rounds/s`.
    fn average_power(&self, speed: Speed, wheel: &Wheel) -> Power {
        let e = self.energy_per_round(speed);
        Power::from_watts(e.joules() * wheel.rounds_per_second(speed).hertz())
    }

    /// An owned boxed copy of this transducer, so type-erased chains can
    /// be cloned and shared across evaluation sessions.
    fn clone_box(&self) -> Box<dyn Scavenger + Send + Sync>;

    /// A boxed copy whose per-round output is scaled by `factor` — the
    /// "size of the scavenging device" knob of §I.
    ///
    /// The default wraps the clone in a [`ScaledScavenger`]; concrete
    /// models with a native size parameter should override it.
    fn scaled_box(&self, factor: f64) -> Box<dyn Scavenger + Send + Sync> {
        Box::new(ScaledScavenger::new(self.clone_box(), factor))
    }
}

/// A transducer wrapper multiplying the inner per-round energy by a fixed
/// size factor. Produced by the default [`Scavenger::scaled_box`].
pub struct ScaledScavenger {
    inner: Box<dyn Scavenger + Send + Sync>,
    factor: f64,
}

impl ScaledScavenger {
    /// Wraps `inner`, scaling its output by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn new(inner: Box<dyn Scavenger + Send + Sync>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative, got {factor}"
        );
        Self { inner, factor }
    }

    /// The size factor applied to the inner transducer.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl std::fmt::Debug for ScaledScavenger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaledScavenger")
            .field("inner", &self.inner.name())
            .field("factor", &self.factor)
            .finish()
    }
}

impl Scavenger for ScaledScavenger {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn energy_per_round(&self, speed: Speed) -> Energy {
        self.inner.energy_per_round(speed) * self.factor
    }

    fn cut_in(&self) -> Speed {
        self.inner.cut_in()
    }

    fn clone_box(&self) -> Box<dyn Scavenger + Send + Sync> {
        Box::new(Self {
            inner: self.inner.clone_box(),
            factor: self.factor,
        })
    }

    fn scaled_box(&self, factor: f64) -> Box<dyn Scavenger + Send + Sync> {
        // Collapse nested wrappers into one multiplication.
        Box::new(Self::new(self.inner.clone_box(), self.factor * factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_units::Distance;

    /// A toy scavenger for exercising the trait's default method.
    struct Linear;

    impl Scavenger for Linear {
        fn name(&self) -> &str {
            "linear"
        }

        fn energy_per_round(&self, speed: Speed) -> Energy {
            Energy::from_micros(speed.mps())
        }

        fn cut_in(&self) -> Speed {
            Speed::ZERO
        }

        fn clone_box(&self) -> Box<dyn Scavenger + Send + Sync> {
            Box::new(Linear)
        }
    }

    #[test]
    fn average_power_is_energy_times_round_rate() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        // 10 m/s → 5 rounds/s, 10 µJ/round → 50 µW.
        let p = Linear.average_power(Speed::from_mps(10.0), &wheel);
        assert!(p.approx_eq(Power::from_microwatts(50.0), 1e-12));
    }

    #[test]
    fn average_power_zero_at_standstill() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        assert_eq!(Linear.average_power(Speed::ZERO, &wheel), Power::ZERO);
    }

    #[test]
    fn scaled_box_multiplies_energy() {
        let half = Linear.scaled_box(0.5);
        let v = Speed::from_mps(10.0);
        assert!(half
            .energy_per_round(v)
            .approx_eq(Linear.energy_per_round(v) * 0.5, 1e-12));
        assert_eq!(half.name(), "linear");
        assert_eq!(half.cut_in(), Linear.cut_in());
    }

    #[test]
    fn nested_scaling_collapses() {
        let quarter = Linear.scaled_box(0.5).scaled_box(0.5);
        let v = Speed::from_mps(8.0);
        assert!(quarter
            .energy_per_round(v)
            .approx_eq(Linear.energy_per_round(v) * 0.25, 1e-12));
    }

    #[test]
    fn clone_box_preserves_behaviour() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        let copy = Linear.clone_box();
        let v = Speed::from_mps(10.0);
        assert_eq!(copy.energy_per_round(v), Linear.energy_per_round(v));
        assert_eq!(
            copy.average_power(v, &wheel),
            Linear.average_power(v, &wheel)
        );
    }
}
