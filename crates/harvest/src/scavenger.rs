//! The scavenger abstraction.

use monityre_profile::Wheel;
use monityre_units::{Energy, Power, Speed};

/// An in-wheel energy transducer.
///
/// The natural characterization is *energy per wheel round as a function of
/// vehicle speed* — one contact-patch deformation (or one field crossing)
/// happens per round, and its vigor grows with speed. Average electrical
/// power follows by multiplying with the round rate.
pub trait Scavenger {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Raw (pre-regulator) electrical energy produced during one wheel
    /// round at constant `speed`. Must be zero below the cut-in speed and
    /// non-decreasing in speed.
    fn energy_per_round(&self, speed: Speed) -> Energy;

    /// The minimum speed at which the transducer produces anything.
    fn cut_in(&self) -> Speed;

    /// Average raw power at constant `speed` on the given wheel:
    /// `P = E_round · rounds/s`.
    fn average_power(&self, speed: Speed, wheel: &Wheel) -> Power {
        let e = self.energy_per_round(speed);
        Power::from_watts(e.joules() * wheel.rounds_per_second(speed).hertz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_units::Distance;

    /// A toy scavenger for exercising the trait's default method.
    struct Linear;

    impl Scavenger for Linear {
        fn name(&self) -> &str {
            "linear"
        }

        fn energy_per_round(&self, speed: Speed) -> Energy {
            Energy::from_micros(speed.mps())
        }

        fn cut_in(&self) -> Speed {
            Speed::ZERO
        }
    }

    #[test]
    fn average_power_is_energy_times_round_rate() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        // 10 m/s → 5 rounds/s, 10 µJ/round → 50 µW.
        let p = Linear.average_power(Speed::from_mps(10.0), &wheel);
        assert!(p.approx_eq(Power::from_microwatts(50.0), 1e-12));
    }

    #[test]
    fn average_power_zero_at_standstill() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        assert_eq!(Linear.average_power(Speed::ZERO, &wheel), Power::ZERO);
    }
}
