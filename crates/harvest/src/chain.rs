//! The composed harvesting chain: transducer → regulator, on a wheel.

use std::fmt;

use monityre_profile::Wheel;
use monityre_units::{Energy, Power, Speed};

use crate::{PiezoScavenger, Regulator, Scavenger};

/// The complete energy source seen by the Sensor Node: a transducer on a
/// specific wheel feeding a conditioning regulator.
///
/// The storage element is *not* part of the chain — the transient emulator
/// owns it as mutable state; the chain answers the stateless question
/// "how much usable energy arrives per wheel round at speed v?", which is
/// exactly the generated-energy curve of the paper's Fig. 2.
///
/// ```
/// use monityre_harvest::HarvestChain;
/// use monityre_units::Speed;
///
/// let chain = HarvestChain::reference();
/// assert_eq!(chain.delivered_per_round(Speed::from_kmh(3.0)).joules(), 0.0);
/// assert!(chain.delivered_per_round(Speed::from_kmh(50.0)).microjoules() > 10.0);
/// ```
pub struct HarvestChain {
    scavenger: Box<dyn Scavenger + Send + Sync>,
    regulator: Regulator,
    wheel: Wheel,
}

impl HarvestChain {
    /// Composes a chain.
    #[must_use]
    pub fn new<S>(scavenger: S, regulator: Regulator, wheel: Wheel) -> Self
    where
        S: Scavenger + Send + Sync + 'static,
    {
        Self {
            scavenger: Box::new(scavenger),
            regulator,
            wheel,
        }
    }

    /// The reference chain: reference piezo transducer, reference
    /// regulator, reference 205/55R16 wheel.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(
            PiezoScavenger::reference(),
            Regulator::reference(),
            Wheel::reference(),
        )
    }

    /// The transducer.
    #[must_use]
    pub fn scavenger(&self) -> &(dyn Scavenger + Send + Sync) {
        self.scavenger.as_ref()
    }

    /// The regulator.
    #[must_use]
    pub fn regulator(&self) -> &Regulator {
        &self.regulator
    }

    /// The wheel the transducer rides on.
    #[must_use]
    pub fn wheel(&self) -> &Wheel {
        &self.wheel
    }

    /// The transducer's cut-in speed.
    #[must_use]
    pub fn cut_in(&self) -> Speed {
        self.scavenger.cut_in()
    }

    /// Raw (pre-regulator) energy per wheel round at `speed`.
    #[must_use]
    pub fn raw_per_round(&self, speed: Speed) -> Energy {
        self.scavenger.energy_per_round(speed)
    }

    /// Usable (post-regulator) energy per wheel round at `speed` — the
    /// generated-energy curve of Fig. 2.
    #[must_use]
    pub fn delivered_per_round(&self, speed: Speed) -> Energy {
        let raw = self.raw_per_round(speed);
        let avg = self.scavenger.average_power(speed, &self.wheel);
        self.regulator.convert(raw, avg)
    }

    /// Average usable power at constant `speed`.
    #[must_use]
    pub fn delivered_power(&self, speed: Speed) -> Power {
        let e = self.delivered_per_round(speed);
        Power::from_watts(e.joules() * self.wheel.rounds_per_second(speed).hertz())
    }

    /// A copy of the chain with the transducer scaled by `factor` — how
    /// the vehicle emulator spreads scavenger sizes across the corners.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            scavenger: self.scavenger.scaled_box(factor),
            regulator: self.regulator,
            wheel: self.wheel,
        }
    }
}

impl Clone for HarvestChain {
    fn clone(&self) -> Self {
        Self {
            scavenger: self.scavenger.clone_box(),
            regulator: self.regulator,
            wheel: self.wheel,
        }
    }
}

impl fmt::Debug for HarvestChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarvestChain")
            .field("scavenger", &self.scavenger.name())
            .field("regulator", &self.regulator)
            .field("wheel", &self.wheel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivered_is_below_raw() {
        let chain = HarvestChain::reference();
        for kmh in [20.0, 50.0, 100.0, 150.0] {
            let v = Speed::from_kmh(kmh);
            assert!(
                chain.delivered_per_round(v) < chain.raw_per_round(v),
                "at {kmh}"
            );
        }
    }

    #[test]
    fn delivered_monotone_above_cut_in() {
        let chain = HarvestChain::reference();
        let mut last = Energy::ZERO;
        for kmh in (10..=200).step_by(5) {
            let e = chain.delivered_per_round(Speed::from_kmh(f64::from(kmh)));
            assert!(e >= last, "at {kmh} km/h");
            last = e;
        }
    }

    #[test]
    fn nothing_below_cut_in() {
        let chain = HarvestChain::reference();
        assert_eq!(
            chain.delivered_per_round(Speed::from_kmh(4.0)),
            Energy::ZERO
        );
        assert_eq!(chain.delivered_power(Speed::from_kmh(4.0)), Power::ZERO);
    }

    #[test]
    fn delivered_power_consistent_with_round_energy() {
        let chain = HarvestChain::reference();
        let v = Speed::from_kmh(80.0);
        let per_round = chain.delivered_per_round(v);
        let rate = chain.wheel().rounds_per_second(v).hertz();
        let p = chain.delivered_power(v);
        assert!(p.approx_eq(Power::from_watts(per_round.joules() * rate), 1e-12));
    }

    #[test]
    fn highway_delivery_is_mw_class() {
        let chain = HarvestChain::reference();
        let p = chain.delivered_power(Speed::from_kmh(130.0));
        assert!(p.milliwatts() > 0.5 && p.milliwatts() < 2.5, "got {p}");
    }

    #[test]
    fn custom_chain_composes() {
        let chain = HarvestChain::new(
            crate::ElectromagneticScavenger::reference(),
            Regulator::ideal(),
            Wheel::reference(),
        );
        assert_eq!(chain.scavenger().name(), "electromagnetic");
        let v = Speed::from_kmh(60.0);
        // Ideal regulator: delivered ≈ raw.
        let ratio = chain.delivered_per_round(v) / chain.raw_per_round(v);
        assert!(ratio > 0.99);
    }

    #[test]
    fn debug_shows_scavenger_name() {
        let chain = HarvestChain::reference();
        assert!(format!("{chain:?}").contains("piezo"));
    }

    #[test]
    fn clone_matches_original_bit_for_bit() {
        let chain = HarvestChain::reference();
        let copy = chain.clone();
        for kmh in [10.0, 40.0, 90.0, 160.0] {
            let v = Speed::from_kmh(kmh);
            assert_eq!(
                copy.delivered_per_round(v).joules().to_bits(),
                chain.delivered_per_round(v).joules().to_bits(),
                "at {kmh} km/h"
            );
        }
    }

    #[test]
    fn scaled_chain_matches_scaled_scavenger() {
        // The piezo chain must take the native scaling path: bit-identical
        // to composing a scaled PiezoScavenger by hand.
        let by_hand = HarvestChain::new(
            PiezoScavenger::reference().scaled(1.04),
            Regulator::reference(),
            Wheel::reference(),
        );
        let derived = HarvestChain::reference().scaled(1.04);
        for kmh in [15.0, 55.0, 120.0] {
            let v = Speed::from_kmh(kmh);
            assert_eq!(
                derived.delivered_per_round(v).joules().to_bits(),
                by_hand.delivered_per_round(v).joules().to_bits(),
                "at {kmh} km/h"
            );
        }
    }
}
