//! Ideal battery — the baseline the paper argues against.
//!
//! §I: "standard batteries cannot supply this chip for a full tyre
//! lifetime". The ablation experiments quantify that: an ideal
//! (loss-free, non-rechargeable) battery of realistic coin-cell capacity
//! runs out long before the tyre wears out, while the scavenger does not.

use monityre_units::{Duration, Energy};
use serde::{Deserialize, Serialize};

use crate::{Storage, StorageError};

/// An ideal primary battery: fixed initial energy, no self-discharge by
/// default, deposits rejected (primary cells do not recharge — deposits are
/// spilled in full).
///
/// ```
/// use monityre_harvest::{IdealBattery, Storage};
/// use monityre_units::Energy;
///
/// let mut cell = IdealBattery::coin_cell();
/// assert!(cell.withdraw(Energy::from_joules(1.0)).is_ok());
/// // Charging a primary cell spills everything.
/// assert_eq!(cell.deposit(Energy::from_joules(1.0)), Energy::from_joules(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealBattery {
    capacity: Energy,
    remaining: Energy,
    /// Fractional self-discharge per year (0 for ideal).
    annual_self_discharge: f64,
}

impl IdealBattery {
    /// Builds a battery with the given capacity, starting full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative/non-finite or the self-discharge
    /// fraction is outside `[0, 1)`.
    #[must_use]
    pub fn new(capacity: Energy, annual_self_discharge: f64) -> Self {
        assert!(
            capacity.is_finite() && !capacity.is_negative(),
            "battery capacity must be non-negative, got {capacity}"
        );
        assert!(
            (0.0..1.0).contains(&annual_self_discharge),
            "annual self-discharge must lie in [0, 1), got {annual_self_discharge}"
        );
        Self {
            capacity,
            remaining: capacity,
            annual_self_discharge,
        }
    }

    /// A CR2032-class lithium coin cell: ≈ 225 mAh at 3 V ≈ 2.4 kJ, 1 %
    /// yearly self-discharge (room-temperature shelf figure).
    #[must_use]
    pub fn coin_cell() -> Self {
        Self::new(Energy::from_joules(2430.0), 0.01)
    }

    /// The same cell *mounted inside the tyre*: sustained 40–80 °C
    /// operation, vibration-rated packaging and automotive derating push
    /// the effective self-discharge to ≈ 40 %/year (lithium primary cells
    /// lose capacity roughly 2× per 10 °C above room temperature).
    #[must_use]
    pub fn coin_cell_in_tyre() -> Self {
        Self::new(Energy::from_joules(2430.0), 0.40)
    }

    /// Energy drawn so far.
    #[must_use]
    pub fn consumed(&self) -> Energy {
        self.capacity - self.remaining
    }
}

impl Storage for IdealBattery {
    fn available(&self) -> Energy {
        self.remaining
    }

    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn deposit(&mut self, amount: Energy) -> Energy {
        // Primary cell: everything spills.
        amount
    }

    fn withdraw(&mut self, amount: Energy) -> Result<(), StorageError> {
        if amount > self.remaining {
            return Err(StorageError::Deficit {
                requested: amount,
                available: self.remaining,
            });
        }
        self.remaining -= amount;
        Ok(())
    }

    fn self_discharge(&mut self, dt: Duration) {
        if self.annual_self_discharge == 0.0 {
            return;
        }
        let years = dt.secs() / (365.25 * 24.0 * 3600.0);
        let keep = (1.0 - self.annual_self_discharge).powf(years);
        self.remaining *= keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let cell = IdealBattery::coin_cell();
        assert_eq!(cell.available(), cell.capacity());
        assert_eq!(cell.state_of_charge(), 1.0);
    }

    #[test]
    fn withdrawals_accumulate() {
        let mut cell = IdealBattery::coin_cell();
        cell.withdraw(Energy::from_joules(100.0)).unwrap();
        cell.withdraw(Energy::from_joules(50.0)).unwrap();
        assert!(cell.consumed().approx_eq(Energy::from_joules(150.0), 1e-12));
    }

    #[test]
    fn overdraw_reports_available() {
        let mut cell = IdealBattery::new(Energy::from_joules(10.0), 0.0);
        let err = cell.withdraw(Energy::from_joules(11.0)).unwrap_err();
        assert!(err.shortfall().approx_eq(Energy::from_joules(1.0), 1e-12));
    }

    #[test]
    fn deposits_spill_entirely() {
        let mut cell = IdealBattery::coin_cell();
        cell.withdraw(Energy::from_joules(5.0)).unwrap();
        let spilled = cell.deposit(Energy::from_joules(5.0));
        assert_eq!(spilled, Energy::from_joules(5.0));
        assert!(cell.consumed().approx_eq(Energy::from_joules(5.0), 1e-12));
    }

    #[test]
    fn yearly_self_discharge() {
        let mut cell = IdealBattery::coin_cell();
        cell.self_discharge(Duration::from_hours(365.25 * 24.0));
        assert!((cell.state_of_charge() - 0.99).abs() < 1e-6);
    }

    #[test]
    fn zero_self_discharge_is_exactly_stable() {
        let mut cell = IdealBattery::new(Energy::from_joules(100.0), 0.0);
        cell.self_discharge(Duration::from_hours(100_000.0));
        assert_eq!(cell.available(), Energy::from_joules(100.0));
    }

    #[test]
    #[should_panic(expected = "annual self-discharge")]
    fn rejects_discharge_fraction_of_one() {
        let _ = IdealBattery::new(Energy::from_joules(1.0), 1.0);
    }
}
