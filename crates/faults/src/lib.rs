//! Deterministic, seed-driven fault injection for the serving stack.
//!
//! Ergen-style in-tyre radio links drop frames, brown out below the
//! break-even speed, and stall mid-transfer; a serving system for the
//! paper's energy analyses only earns the "production" label if its
//! behaviour under those conditions is *specified and tested*, not
//! discovered in the field. This crate supplies the test half of that
//! bargain: a [`FaultPlan`] is a seeded schedule of injectable faults
//! that the `monityre-serve` stack consults at its instrumented choke
//! points (the accept loop, the worker pool, response stream I/O).
//!
//! Design rules, each load-bearing:
//!
//! * **Compiled in always, inert unless armed.** Every injection point
//!   is a branch on an `Option<&FaultPlan>`; a `None` plan costs one
//!   pointer test and nothing else. Production binaries carry the same
//!   code the chaos suite exercises, so the tested paths are the
//!   shipped paths.
//! * **Deterministic by construction.** Whether the *n*-th decision of
//!   a given [`FaultKind`] fires is a pure function of `(seed, kind, n)`
//!   — a splitmix64 hash compared against the kind's probability
//!   threshold. Thread interleavings can reorder *wall-clock* effects
//!   but never change which occurrences fire, so a failing chaos run
//!   reproduces from its seed alone.
//! * **Observable.** Every injected fault increments the process-global
//!   [`monityre_obs`] counters `faults.injected` and
//!   `faults.injected.<kind>`, which the server's `metrics` op exposes.
//!
//! Plans are built programmatically ([`FaultPlan::new`] +
//! [`FaultPlan::with_fault`]) or parsed from a spec string
//! (`<seed>:<kind>=<prob>[,<kind>=<prob>...]`), which is also the format
//! of the [`FAULTS_ENV_VAR`] environment variable the server reads at
//! startup:
//!
//! ```
//! use monityre_faults::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("2011:conn_reset=0.5,corrupt_frame=0.25").unwrap();
//! assert_eq!(plan.seed(), 2011);
//! // The same plan replays the same decision sequence.
//! let replay = FaultPlan::parse("2011:conn_reset=0.5,corrupt_frame=0.25").unwrap();
//! let fired: Vec<bool> = (0..32).map(|_| plan.decide(FaultKind::ConnReset)).collect();
//! let again: Vec<bool> = (0..32).map(|_| replay.decide(FaultKind::ConnReset)).collect();
//! assert_eq!(fired, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;

pub use plan::{FaultKind, FaultPlan, FAULTS_ENV_VAR};
