//! The fault taxonomy and the seeded decision schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use monityre_obs::{names, Counter, Registry};

/// The environment variable `monityre serve` reads at startup:
/// `MONITYRE_FAULTS=<seed>:<kind>=<prob>[,<kind>=<prob>...]`.
pub const FAULTS_ENV_VAR: &str = "MONITYRE_FAULTS";

/// Every fault the serving stack can inject, named after the failure it
/// simulates. The injection *site* is part of the contract — the chaos
/// suite's invariants depend on whether a fault fires before or after a
/// job's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Drop a freshly accepted connection before reading anything — the
    /// client experiences a refused/reset connect. Fires before any
    /// request is parsed, so nothing is executed.
    AcceptDrop,
    /// Close the connection instead of writing a response. Fires after
    /// evaluation, so the result exists server-side but never travels.
    ConnReset,
    /// Split the response write into two flushes with a pause between —
    /// a benign fragmentation fault; the response still completes.
    PartialWrite,
    /// Sleep before parsing a request line — a slow server.
    SlowRead,
    /// Hold the connection open without responding (for [`FaultPlan::stall`]),
    /// then close it — the client's read must time out, not hang.
    StallRead,
    /// Write only a newline-less prefix of the response, then close.
    TruncateFrame,
    /// Flip the response line's first byte to an invalid-UTF-8 value, so
    /// the corruption is always detectable by the client.
    CorruptFrame,
    /// Panic inside the worker mid-job; the pool must catch it, answer
    /// the client with a retryable `internal` error, and keep serving.
    WorkerPanic,
    /// Pause a worker before it picks up its next job — queue-wait and
    /// deadline pressure without any protocol damage.
    QueueStall,
    /// Sleep before writing the (correct) response.
    DelayResponse,
    /// Write only a prefix of a segment-store batch, then poison the
    /// store — the in-process stand-in for `kill -9` landing mid-write.
    /// The torn tail stays on disk; startup recovery must truncate it.
    TornWrite,
    /// Skip the segment store's batch fsync: the bytes reach the page
    /// cache but durability is not guaranteed if the host dies next.
    ShortFsync,
    /// Fail the segment store's batch fsync after the write landed: the
    /// store must cut the segment back to the batch start (the batch is
    /// reported uncommitted) so an idempotent retry cannot double it.
    FailFsync,
}

impl FaultKind {
    /// Every kind, for enumeration in specs, tests and docs.
    pub const ALL: [FaultKind; 13] = [
        FaultKind::AcceptDrop,
        FaultKind::ConnReset,
        FaultKind::PartialWrite,
        FaultKind::SlowRead,
        FaultKind::StallRead,
        FaultKind::TruncateFrame,
        FaultKind::CorruptFrame,
        FaultKind::WorkerPanic,
        FaultKind::QueueStall,
        FaultKind::DelayResponse,
        FaultKind::TornWrite,
        FaultKind::ShortFsync,
        FaultKind::FailFsync,
    ];

    /// The spec name (snake_case).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AcceptDrop => "accept_drop",
            FaultKind::ConnReset => "conn_reset",
            FaultKind::PartialWrite => "partial_write",
            FaultKind::SlowRead => "slow_read",
            FaultKind::StallRead => "stall_read",
            FaultKind::TruncateFrame => "truncate_frame",
            FaultKind::CorruptFrame => "corrupt_frame",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::QueueStall => "queue_stall",
            FaultKind::DelayResponse => "delay_response",
            FaultKind::TornWrite => "torn_write",
            FaultKind::ShortFsync => "short_fsync",
            FaultKind::FailFsync => "fail_fsync",
        }
    }

    /// Parses a spec name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.name() == name)
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|kind| *kind == self)
            .expect("every kind is in ALL")
    }
}

/// splitmix64 — the standard finalizer; every bit of the input avalanches.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault schedule.
///
/// The plan holds one probability threshold and one decision counter per
/// [`FaultKind`]; [`FaultPlan::decide`] hashes `(seed, kind, n)` for the
/// kind's *n*-th decision and fires when the hash lands under the
/// threshold. Share it across threads behind an [`Arc`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-kind firing thresholds: a decision fires when the hash of its
    /// occurrence index is strictly below the threshold.
    thresholds: [u64; FaultKind::ALL.len()],
    /// Per-kind occurrence counters — the `n` in `(seed, kind, n)`.
    counters: [AtomicU64; FaultKind::ALL.len()],
    delay: Duration,
    stall: Duration,
    pause: Duration,
    injected_total: Arc<Counter>,
    injected_kind: [Arc<Counter>; FaultKind::ALL.len()],
}

impl FaultPlan {
    /// An inert plan (no fault fires) with the given seed and default
    /// timings: 25 ms delay, 1.5 s stall, 10 ms pause.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let registry = Registry::global();
        Self {
            seed,
            thresholds: [0; FaultKind::ALL.len()],
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            delay: Duration::from_millis(25),
            stall: Duration::from_millis(1500),
            pause: Duration::from_millis(10),
            injected_total: registry.counter(names::FAULTS_INJECTED),
            injected_kind: std::array::from_fn(|i| {
                registry.counter(&format!(
                    "{}.{}",
                    names::FAULTS_INJECTED,
                    FaultKind::ALL[i].name()
                ))
            }),
        }
    }

    /// Sets `kind`'s firing probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_fault(mut self, kind: FaultKind, probability: f64) -> Self {
        self.thresholds[kind.index()] = threshold_of(probability);
        self
    }

    /// Overrides the plan's timings: `delay` (slow read / delayed
    /// response), `stall` (stalled read hold), `pause` (partial-write and
    /// queue-stall pauses). Chaos tests shrink these to keep runtime low.
    #[must_use]
    pub fn with_timings(mut self, delay: Duration, stall: Duration, pause: Duration) -> Self {
        self.delay = delay;
        self.stall = stall;
        self.pause = pause;
        self
    }

    /// Parses `<seed>:<kind>=<prob>[,<kind>=<prob>...]` — the
    /// [`FAULTS_ENV_VAR`] / `--faults` format. An empty fault list
    /// (`"7:"`) is a valid inert plan.
    ///
    /// # Errors
    ///
    /// Returns a printable message naming the malformed part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed_text, faults) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{spec}` is missing the `<seed>:` prefix"))?;
        let seed: u64 = seed_text
            .trim()
            .parse()
            .map_err(|_| format!("fault spec seed `{seed_text}` is not an unsigned integer"))?;
        let mut plan = Self::new(seed);
        for entry in faults.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, prob_text) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is not `<kind>=<prob>`"))?;
            let kind = FaultKind::from_name(name.trim()).ok_or_else(|| {
                format!(
                    "unknown fault kind `{}`; kinds: {}",
                    name.trim(),
                    FaultKind::ALL
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            let probability: f64 = prob_text
                .trim()
                .parse()
                .map_err(|_| format!("fault probability `{prob_text}` is not a number"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!(
                    "fault probability {probability} for `{}` is not in [0, 1]",
                    kind.name()
                ));
            }
            plan = plan.with_fault(kind, probability);
        }
        Ok(plan)
    }

    /// Builds the plan described by [`FAULTS_ENV_VAR`], if set.
    ///
    /// # Errors
    ///
    /// Returns the parse failure when the variable is set but malformed —
    /// a typo must fail loudly, not silently disarm the chaos run.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULTS_ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(spec.trim()).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan's seed (for failure-reproduction logs).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the *next* occurrence of `kind` fires, advancing the
    /// kind's occurrence counter. Deterministic in `(seed, kind, n)`;
    /// fired decisions are tallied into the `faults.injected` counters.
    pub fn decide(&self, kind: FaultKind) -> bool {
        let threshold = self.thresholds[kind.index()];
        // Count every decision, fired or not, so occurrence indices stay
        // aligned with the observable event sequence.
        let n = self.counters[kind.index()].fetch_add(1, Ordering::Relaxed);
        if threshold == 0 {
            return false;
        }
        let salt = (kind.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let hash = splitmix64(self.seed ^ salt ^ splitmix64(n));
        let fire = threshold == u64::MAX || hash < threshold;
        if fire {
            self.injected_total.inc();
            self.injected_kind[kind.index()].inc();
            // Leave a flight-recorder event (linked to the current trace
            // context, if any) and trigger a post-mortem dump when one is
            // armed — an injected fault is exactly the moment the recent
            // span history is worth keeping.
            monityre_obs::recorder::record_event(format!("fault.{}", kind.name()));
            monityre_obs::recorder::dump("fault_injected");
        }
        fire
    }

    /// How many decisions of `kind` fired so far.
    #[must_use]
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected_kind[kind.index()].get()
    }

    /// Total fired decisions across all kinds.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected_total.get()
    }

    /// The sleep for [`FaultKind::SlowRead`] / [`FaultKind::DelayResponse`].
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// How long [`FaultKind::StallRead`] holds the connection silent.
    #[must_use]
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// The pause of [`FaultKind::PartialWrite`] / [`FaultKind::QueueStall`].
    #[must_use]
    pub fn pause(&self) -> Duration {
        self.pause
    }

    /// The armed kinds and their probabilities, for startup logs.
    #[must_use]
    pub fn describe(&self) -> String {
        let armed: Vec<String> = FaultKind::ALL
            .iter()
            .filter(|kind| self.thresholds[kind.index()] > 0)
            .map(|kind| {
                format!(
                    "{}={:.3}",
                    kind.name(),
                    self.thresholds[kind.index()] as f64 / u64::MAX as f64
                )
            })
            .collect();
        if armed.is_empty() {
            format!("seed {} (inert)", self.seed)
        } else {
            format!("seed {}: {}", self.seed, armed.join(", "))
        }
    }
}

/// Maps a probability to the `u64` firing threshold.
fn threshold_of(probability: f64) -> u64 {
    if probability <= 0.0 || !probability.is_finite() {
        0
    } else if probability >= 1.0 {
        u64::MAX
    } else {
        // Rounding at the extremes is irrelevant: the chaos invariants
        // never depend on the exact firing *rate*, only on determinism.
        (probability * u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert!(FaultKind::from_name("gremlin").is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42).with_fault(FaultKind::ConnReset, 0.5);
        let b = FaultPlan::new(42).with_fault(FaultKind::ConnReset, 0.5);
        let fired_a: Vec<bool> = (0..256).map(|_| a.decide(FaultKind::ConnReset)).collect();
        let fired_b: Vec<bool> = (0..256).map(|_| b.decide(FaultKind::ConnReset)).collect();
        assert_eq!(fired_a, fired_b);
        assert!(fired_a.iter().any(|f| *f), "p=0.5 must fire sometimes");
        assert!(fired_a.iter().any(|f| !*f), "p=0.5 must also pass");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with_fault(FaultKind::CorruptFrame, 0.5);
        let b = FaultPlan::new(2).with_fault(FaultKind::CorruptFrame, 0.5);
        let fired_a: Vec<bool> = (0..256)
            .map(|_| a.decide(FaultKind::CorruptFrame))
            .collect();
        let fired_b: Vec<bool> = (0..256)
            .map(|_| b.decide(FaultKind::CorruptFrame))
            .collect();
        assert_ne!(fired_a, fired_b);
    }

    #[test]
    fn kinds_draw_independent_streams() {
        let plan = FaultPlan::new(7)
            .with_fault(FaultKind::ConnReset, 0.5)
            .with_fault(FaultKind::TruncateFrame, 0.5);
        let resets: Vec<bool> = (0..256)
            .map(|_| plan.decide(FaultKind::ConnReset))
            .collect();
        let truncs: Vec<bool> = (0..256)
            .map(|_| plan.decide(FaultKind::TruncateFrame))
            .collect();
        assert_ne!(resets, truncs, "kind must salt the hash");
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let plan = FaultPlan::new(9)
            .with_fault(FaultKind::WorkerPanic, 1.0)
            .with_fault(FaultKind::ConnReset, 0.0);
        for _ in 0..64 {
            assert!(plan.decide(FaultKind::WorkerPanic));
            assert!(!plan.decide(FaultKind::ConnReset));
            assert!(!plan.decide(FaultKind::AcceptDrop), "unarmed kind is inert");
        }
        assert_eq!(plan.injected(FaultKind::WorkerPanic), 64);
        assert_eq!(plan.injected(FaultKind::ConnReset), 0);
        assert!(plan.injected_total() >= 64);
    }

    #[test]
    fn parse_round_trips_the_env_format() {
        let plan = FaultPlan::parse("2011:conn_reset=0.5, corrupt_frame=1.0").unwrap();
        assert_eq!(plan.seed(), 2011);
        assert!(plan.decide(FaultKind::CorruptFrame));
        assert!(plan.describe().contains("conn_reset"));
        let inert = FaultPlan::parse("7:").unwrap();
        assert!(inert.describe().contains("inert"));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "no-seed",
            "x:conn_reset=0.5",
            "1:gremlin=0.5",
            "1:conn_reset",
            "1:conn_reset=high",
            "1:conn_reset=1.5",
            "1:conn_reset=-0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn decisions_fire_at_roughly_the_requested_rate() {
        let plan = FaultPlan::new(123).with_fault(FaultKind::DelayResponse, 0.25);
        let fired = (0..4096)
            .filter(|_| plan.decide(FaultKind::DelayResponse))
            .count();
        let rate = fired as f64 / 4096.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
    }
}
