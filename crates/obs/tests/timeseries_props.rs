//! Property tests pinning the downsampling invariant: for *arbitrary*
//! sample streams, every coarser-tier bucket equals the exact aggregate
//! of its finer-tier constituents — bit-identical `u64` for counters;
//! `count`/`min`/`max`/`last` preserved and `sum` bit-stable (the
//! left-to-right `f64` fold of the fine sums) for gauges.
//!
//! The streams deliberately include out-of-order timestamps within the
//! live window, duplicate timestamps, negative/fractional gauge values,
//! and enough samples to wrap the fine ring — the invariant must hold
//! for whatever buckets remain retained.

use monityre_obs::{SampleValue, SeriesStore, TierSpec};
use proptest::prelude::*;

/// A deliberately awkward pyramid: ratios 5 and 4, small rings so
/// streams wrap them several times.
const TIERS: [TierSpec; 3] = [
    TierSpec {
        step_us: 10,
        slots: 25,
    },
    TierSpec {
        step_us: 50,
        slots: 16,
    },
    TierSpec {
        step_us: 200,
        slots: 10,
    },
];

fn option_of<T: Clone + 'static>(inner: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    prop_oneof![Just(None), inner.prop_map(Some)].boxed()
}

/// Monotone-with-jitter timestamps: mostly ascending (a scrape loop),
/// with occasional small back-steps that stay inside the fine window.
fn arb_timestamps(len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((1u64..30, 0u64..15), len).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(fwd, back)| {
                ts += fwd;
                ts.saturating_sub(back.min(ts))
            })
            .collect()
    })
}

/// For each adjacent tier pair, every retained coarse bucket must equal
/// the fold (in ascending time order) of its retained fine constituents.
fn assert_exact_downsampling(store: &SeriesStore, metric: &str, now_us: u64, is_counter: bool) {
    let tiers = store.tiers().to_vec();
    for pair in tiers.windows(2) {
        let (fine_spec, coarse_spec) = (pair[0], pair[1]);
        let fine = store
            .query(metric, Some(fine_spec.step_us), None, now_us)
            .expect("series exists");
        let coarse = store
            .query(metric, Some(coarse_spec.step_us), None, now_us)
            .expect("series exists");
        assert_eq!(fine.step_us, fine_spec.step_us);
        assert_eq!(coarse.step_us, coarse_spec.step_us);
        // Fine buckets older than the fine ring's retention may have been
        // overwritten by a newer wrap, so only coarse buckets whose whole
        // interval is younger than that can be re-folded from survivors.
        let fine_retention = fine_spec.step_us * fine_spec.slots as u64;
        let safe_from = now_us
            .saturating_sub(fine_retention)
            .saturating_add(fine_spec.step_us);
        for point in &coarse.points {
            let lo = point.ts_us;
            let hi = lo + coarse_spec.step_us;
            if lo < safe_from {
                continue;
            }
            let constituents: Vec<_> = fine
                .points
                .iter()
                .filter(|p| p.ts_us >= lo && p.ts_us < hi)
                .collect();
            assert!(
                !constituents.is_empty(),
                "retained coarse bucket at {lo} lost all fine constituents"
            );
            if is_counter {
                let last = constituents.last().unwrap().counter.unwrap();
                assert_eq!(
                    point.counter,
                    Some(last),
                    "counter bucket at {lo} must be bit-identical to its last fine constituent"
                );
            } else {
                let mut count = 0u64;
                let mut sum = 0.0f64;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut first = true;
                for p in &constituents {
                    let g = p.gauge.unwrap();
                    count += g.count;
                    if first {
                        sum = g.sum;
                        first = false;
                    } else {
                        sum += g.sum;
                    }
                    min = min.min(g.min);
                    max = max.max(g.max);
                }
                let last = constituents.last().unwrap().gauge.unwrap().last;
                let got = point.gauge.unwrap();
                assert_eq!(got.count, count, "gauge count at {lo}");
                assert_eq!(
                    got.sum.to_bits(),
                    sum.to_bits(),
                    "gauge sum at {lo} must be the bit-stable left-to-right fold"
                );
                assert_eq!(got.min, min, "gauge min at {lo}");
                assert_eq!(got.max, max, "gauge max at {lo}");
                assert_eq!(got.last, last, "gauge last at {lo}");
            }
        }
    }
}

proptest! {
    #[test]
    fn counter_tiers_aggregate_exactly(
        stamps in arb_timestamps(120),
        values in proptest::collection::vec(0u64..=u64::MAX, 120),
    ) {
        let store = SeriesStore::new(&TIERS);
        let mut now = 0u64;
        for (&ts, &v) in stamps.iter().zip(&values) {
            store.record(ts, "prop.counter", SampleValue::Counter(v));
            now = now.max(ts);
        }
        assert_exact_downsampling(&store, "prop.counter", now, true);
    }

    #[test]
    fn gauge_tiers_aggregate_exactly(
        stamps in arb_timestamps(120),
        values in proptest::collection::vec(-1.0e9f64..1.0e9, 120),
    ) {
        let store = SeriesStore::new(&TIERS);
        let mut now = 0u64;
        for (&ts, &v) in stamps.iter().zip(&values) {
            store.record(ts, "prop.gauge", SampleValue::Gauge(v));
            now = now.max(ts);
        }
        assert_exact_downsampling(&store, "prop.gauge", now, false);
    }

    #[test]
    fn queries_never_panic_and_slices_round_trip(
        stamps in arb_timestamps(60),
        values in proptest::collection::vec(0u64..=u64::MAX, 60),
        step in option_of((1u64..500).boxed()),
        range in option_of((1u64..5_000).boxed()),
        now in 0u64..10_000,
    ) {
        let store = SeriesStore::new(&TIERS);
        for (&ts, &v) in stamps.iter().zip(&values) {
            store.record(ts, "prop.any", SampleValue::Counter(v));
        }
        if let Some(slice) = store.query("prop.any", step, range, now) {
            let json = serde_json::to_string(&slice).unwrap();
            let back: monityre_obs::SeriesSlice = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, slice);
        }
    }
}
