//! The optional JSON-lines trace sink.
//!
//! Spans always record into the registry; additionally, when a sink is
//! configured, every finished span appends one JSON line
//! (`{"ts_us":…,"span":"…","dur_us":…}`) to it. The sink is selected
//! once per process: from the [`TRACE_ENV_VAR`] environment variable at
//! first use, or explicitly via [`set_trace_path`] (the CLI's
//! `--trace-out` flag) / [`set_trace_writer`] (tests). When no sink is
//! configured the cost of a finished span stays one relaxed atomic load.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable naming the trace output file. Set it to a path
/// to capture one JSON line per span without touching the CLI.
pub const TRACE_ENV_VAR: &str = "MONITYRE_TRACE";

/// Fast-path flag: true iff a writer is installed. Lets `trace_event`
/// skip the mutex entirely in the (default) no-sink case.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

type SharedWriter = Mutex<Option<Box<dyn Write + Send>>>;

fn sink() -> &'static SharedWriter {
    static SINK: OnceLock<SharedWriter> = OnceLock::new();
    SINK.get_or_init(|| {
        let from_env = std::env::var(TRACE_ENV_VAR)
            .ok()
            .filter(|path| !path.trim().is_empty())
            .and_then(|path| open_writer(Path::new(&path)));
        if from_env.is_some() {
            SINK_ACTIVE.store(true, Ordering::Release);
        }
        Mutex::new(from_env)
    })
}

fn open_writer(path: &Path) -> Option<Box<dyn Write + Send>> {
    match File::create(path) {
        Ok(file) => Some(Box::new(BufWriter::new(file))),
        Err(err) => {
            eprintln!(
                "monityre-obs: cannot open trace file {}: {err}",
                path.display()
            );
            None
        }
    }
}

/// Routes span events to a JSON-lines file at `path`, replacing any
/// sink configured earlier (including one taken from [`TRACE_ENV_VAR`]).
/// Returns an error message if the file cannot be created.
pub fn set_trace_path(path: &Path) -> Result<(), String> {
    let writer = File::create(path)
        .map(|file| Box::new(BufWriter::new(file)) as Box<dyn Write + Send>)
        .map_err(|err| format!("cannot open trace file {}: {err}", path.display()))?;
    set_trace_writer(writer);
    Ok(())
}

/// Installs an arbitrary writer as the span sink (tests use an in-memory
/// buffer). Replaces any previous sink; the old writer is flushed by drop.
pub fn set_trace_writer(writer: Box<dyn Write + Send>) {
    // Recover a poisoned lock: a worker that panicked mid-`trace_event`
    // left a valid (at worst partially written) sink behind, and wedging
    // every later span on its poison would turn one panic into a
    // process-wide observability outage.
    *sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(writer);
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Whether a trace sink is currently installed.
#[must_use]
pub fn trace_sink_active() -> bool {
    // Force env-var initialization so the answer is accurate before the
    // first span fires.
    let _ = sink();
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// The span drop path's probe: one atomic load once the env sink has been
/// resolved, so inactive-sink spans skip the timestamp math entirely.
pub(crate) fn active() -> bool {
    if SINK_ACTIVE.load(Ordering::Acquire) {
        return true;
    }
    let _ = sink(); // one-time env-var resolution
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// Appends one span event line to the sink, if one is installed. Write
/// errors disable the sink (reported once) rather than failing the span.
pub fn trace_event(name: &str, start_us: u64, dur_us: u64) {
    trace_event_with(name, start_us, dur_us, None);
}

/// [`trace_event`] with trace linkage: when `ids` is present the line
/// additionally carries `"trace"`, `"span_id"` and `"parent"` fields (the
/// same shape the flight recorder dumps), so a `MONITYRE_TRACE` file can
/// feed `monityre obs trace` directly.
pub fn trace_event_with(name: &str, start_us: u64, dur_us: u64, ids: Option<crate::SpanIds>) {
    if !SINK_ACTIVE.load(Ordering::Acquire) {
        // Cheap probe first; fall through to init the env-var sink once.
        let _ = sink();
        if !SINK_ACTIVE.load(Ordering::Acquire) {
            return;
        }
    }
    // A panic between here and the unlock leaves at most a torn line;
    // recovering the poison keeps every later span's telemetry flowing.
    let mut guard = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(writer) = guard.as_mut() else {
        return;
    };
    let linkage = ids.map_or_else(String::new, |ids| {
        format!(
            ",\"trace\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent\":\"{:016x}\"",
            ids.trace_id, ids.span_id, ids.parent_id
        )
    });
    let line = format!(
        "{{\"ts_us\":{start_us},\"span\":{},\"dur_us\":{dur_us}{linkage}}}\n",
        serde_json::to_string(&name.to_owned()).unwrap_or_else(|_| "\"?\"".to_owned())
    );
    let write = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush());
    if let Err(err) = write {
        eprintln!("monityre-obs: trace sink write failed, disabling: {err}");
        *guard = None;
        SINK_ACTIVE.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Write impl that appends into a shared buffer.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The sink is process-global; tests that install writers serialize
    /// on this so concurrent test threads never steal each other's events.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn events_are_json_lines() {
        let _serial = test_lock();
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        assert!(trace_sink_active());
        trace_event("unit.sink", 17, 250);
        let captured = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = captured
            .lines()
            .find(|l| l.contains("unit.sink"))
            .expect("event line present");
        assert!(line.contains("\"span\":\"unit.sink\""), "{line}");
        assert!(line.contains("\"dur_us\":250"), "{line}");
        assert!(line.contains("\"ts_us\":17"), "{line}");
    }

    #[test]
    fn traced_events_carry_linkage_fields() {
        let _serial = test_lock();
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        trace_event_with(
            "unit.linked",
            5,
            9,
            Some(crate::SpanIds {
                trace_id: 0xabcd,
                span_id: 0x1234,
                parent_id: 0,
            }),
        );
        let captured = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = captured
            .lines()
            .find(|l| l.contains("unit.linked"))
            .expect("event line present");
        assert!(line.contains("\"trace\":\"000000000000abcd\""), "{line}");
        assert!(line.contains("\"span_id\":\"0000000000001234\""), "{line}");
        assert!(line.contains("\"parent\":\"0000000000000000\""), "{line}");
    }

    #[test]
    fn poisoned_sink_lock_recovers() {
        let _serial = test_lock();
        // Poison the sink mutex by panicking while holding it, as a
        // crashing worker mid-`trace_event` would.
        let _ = std::thread::spawn(|| {
            let _guard = sink()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("poison the sink lock (intentional)");
        })
        .join();
        // Both the installer and the event path must shrug it off.
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        trace_event("unit.poison", 1, 2);
        let captured = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(captured.contains("unit.poison"), "{captured}");
    }
}
