//! Always-on wall-clock sampling profiler.
//!
//! A driver thread (owned by the embedding server, see
//! `monityre-serve`) calls [`Profiler::sample`] at a fixed cadence.
//! Each tick walks every thread's *open-span stack* — the spans a
//! thread is currently inside, maintained by the flight recorder — and
//! increments a counter for that exact stack. Because sampling is
//! wall-clock (the thread need not be on-CPU), the flame-table
//! attributes elapsed time to *phases*: a worker blocked in an fsync
//! shows up under `serve.ingest;ingest.fsync`, one crunching a sweep
//! under `serve.execute;balance.sweep`.
//!
//! Safety argument: the sampler only ever takes the same two locks the
//! recorder's own dump path takes, in the same outer→inner order
//! (registry of thread logs, then one thread log at a time), so it can
//! never deadlock against span open/close or a dump. It copies the
//! `&'static str` span names out under the lock and folds them into the
//! table after releasing it; the sampled thread is blocked only for a
//! handful of pointer copies. Nothing on the *span* path changes at
//! all — the profiler is a pure reader, which is what keeps its
//! overhead within the BENCH_obs budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::recorder;

/// One row of the flame-table: a distinct open-span stack and how often
/// it was observed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlameRow {
    /// The stack in collapsed form, root first, `;`-separated
    /// (`serve.execute;balance.sweep`).
    pub stack: String,
    /// Ticks on which some thread was observed in exactly this stack.
    pub samples: u64,
    /// `samples` as a percentage of all stack observations.
    pub pct: f64,
}

/// The profiler's accumulated phase attribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlameTable {
    /// Sampling ticks taken since the profiler started.
    pub ticks: u64,
    /// Ticks on which no thread had any span open (the process was
    /// idle, or busy outside instrumented phases).
    pub idle_ticks: u64,
    /// Distinct stacks, heaviest first.
    pub rows: Vec<FlameRow>,
}

#[derive(Default)]
struct Table {
    /// Keyed by the exact open-span stack. `Vec<&'static str>` borrows
    /// as `[&str]`, so steady-state lookups never allocate.
    stacks: HashMap<Vec<&'static str>, u64>,
}

/// Accumulates wall-clock samples of every thread's open-span stack.
///
/// The struct is passive: something must call [`Profiler::sample`] on a
/// cadence (the serve layer runs a dedicated sampler thread and drains
/// it on graceful shutdown).
#[derive(Default)]
pub struct Profiler {
    ticks: AtomicU64,
    idle_ticks: AtomicU64,
    table: Mutex<Table>,
}

impl Profiler {
    /// A fresh, empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes one sampling tick: reads every thread's current open-span
    /// stack and folds it into the flame-table. Cheap when idle (one
    /// registry lock, zero allocation).
    pub fn sample(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        let mut busy = 0usize;
        recorder::visit_open_spans(|stack| {
            busy += 1;
            if let Some(count) = table.stacks.get_mut(stack) {
                *count += 1;
            } else {
                table.stacks.insert(stack.to_vec(), 1);
            }
        });
        if busy == 0 {
            self.idle_ticks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The accumulated flame-table, heaviest stacks first.
    #[must_use]
    pub fn snapshot(&self) -> FlameTable {
        let table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        let total: u64 = table.stacks.values().sum();
        let mut rows: Vec<FlameRow> = table
            .stacks
            .iter()
            .map(|(stack, &samples)| FlameRow {
                stack: stack.join(";"),
                samples,
                #[allow(clippy::cast_precision_loss)]
                pct: if total == 0 {
                    0.0
                } else {
                    samples as f64 * 100.0 / total as f64
                },
            })
            .collect();
        rows.sort_by(|a, b| {
            b.samples
                .cmp(&a.samples)
                .then_with(|| a.stack.cmp(&b.stack))
        });
        FlameTable {
            ticks: self.ticks.load(Ordering::Relaxed),
            idle_ticks: self.idle_ticks.load(Ordering::Relaxed),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn idle_ticks_count_when_nothing_is_open() {
        let profiler = Profiler::new();
        profiler.sample();
        let table = profiler.snapshot();
        assert_eq!(table.ticks, 1);
        // Other tests in the process may hold spans open concurrently,
        // so only assert the idle path when we truly were alone.
        if table.rows.is_empty() {
            assert_eq!(table.idle_ticks, 1);
        }
    }

    #[test]
    fn nested_spans_attribute_to_the_full_stack() {
        let profiler = Profiler::new();
        {
            let _outer = span("profiler.test_outer");
            let _inner = span("profiler.test_inner");
            profiler.sample();
            profiler.sample();
        }
        let table = profiler.snapshot();
        assert_eq!(table.ticks, 2);
        let row = table
            .rows
            .iter()
            .find(|r| r.stack.contains("profiler.test_outer;profiler.test_inner"))
            .expect("nested stack sampled");
        assert_eq!(row.samples, 2);
        assert!(row.pct > 0.0);
    }

    #[test]
    fn flame_table_round_trips_through_json() {
        let table = FlameTable {
            ticks: 100,
            idle_ticks: 40,
            rows: vec![FlameRow {
                stack: "serve.execute;balance.sweep".into(),
                samples: 60,
                pct: 100.0,
            }],
        };
        let json = serde_json::to_string(&table).unwrap();
        let back: FlameTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }
}
