//! Declarative service-level objectives with multi-window burn-rate
//! alerting.
//!
//! An objective ([`SloSpec`]) names a budget — "p99 execute latency
//! below X", "error ratio below 0.1 %", "deficit alerts below N/s" —
//! and the engine ([`SloEngine`]) evaluates it against the time-series
//! rings ([`crate::SeriesStore`]) over **two** windows, the SRE-workbook
//! shape: a *fast* window (default 5 m) that notices a problem while it
//! is still happening, and a *slow* window (default 1 h) that confirms
//! it has been burning long enough to matter. The **burn rate** is
//! "observed badness ÷ budgeted badness" over a window: 1.0 means the
//! budget is being consumed exactly as fast as it accrues.
//!
//! State machine per objective:
//!
//! * `ok` — neither window burns (fast < 1);
//! * `warning` — the fast window burns (fast ≥ 1, slow < 1): the problem
//!   is live but not yet sustained;
//! * `page` — both windows burn (fast ≥ 1 and slow ≥ 1): live *and*
//!   sustained.
//!
//! Every transition leaves a flight-recorder event
//! (`slo.transition.<objective>.<from>_to_<to>[.trace.<id>]`, see
//! [`crate::names::SLO_TRANSITION_EVENT`]) carrying the newest exemplar
//! trace id of the objective's related histogram — the concrete request
//! to go look at. The aggregate [`HealthReport`] is the process's
//! readiness answer: `degraded` while any objective warns, `unhealthy`
//! while any pages.

use serde::{Deserialize, Serialize};

use crate::names::SLO_TRANSITION_EVENT;
use crate::registry::RegistrySnapshot;
use crate::timeseries::SeriesStore;

/// Default fast burn window: 5 minutes.
pub const DEFAULT_FAST_US: u64 = 300_000_000;
/// Default slow burn window: 1 hour.
pub const DEFAULT_SLOW_US: u64 = 3_600_000_000;

/// What one objective bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// A gauge series must stay below `threshold`; up to `tolerance`
    /// (fraction of window samples) may violate before the budget burns.
    /// E.g. `serve.execute.p99_us < 250_000` with tolerance 0.1.
    GaugeAbove {
        /// The gauge series name (often a derived histogram quantile).
        metric: String,
        /// The value a sample must stay below.
        threshold: f64,
        /// Violating-sample fraction budget, (0, 1].
        tolerance: f64,
    },
    /// Σ(bad counter deltas) / Σ(total counter deltas) must stay below
    /// `budget` over the window. E.g. errors / requests < 0.001.
    RatioAbove {
        /// Counter series summed as the numerator.
        bad: Vec<String>,
        /// Counter series summed as the denominator.
        total: Vec<String>,
        /// Bad fraction budget, (0, 1].
        budget: f64,
    },
    /// A counter's rate must stay below `max_per_sec`.
    RateAbove {
        /// The counter series name.
        metric: String,
        /// Events per second the budget allows.
        max_per_sec: f64,
    },
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Short kebab-case objective name (appears in events and reports).
    pub name: String,
    /// What is bounded.
    pub kind: SloKind,
    /// Fast burn window, microseconds.
    pub fast_us: u64,
    /// Slow burn window, microseconds.
    pub slow_us: u64,
    /// Histogram whose newest exemplar trace id annotates transitions.
    pub exemplar_from: Option<String>,
}

impl SloSpec {
    /// An objective with the default 5 m / 1 h windows.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: SloKind) -> Self {
        Self {
            name: name.into(),
            kind,
            fast_us: DEFAULT_FAST_US,
            slow_us: DEFAULT_SLOW_US,
            exemplar_from: None,
        }
    }

    /// Overrides both burn windows (CI uses seconds-scale windows).
    #[must_use]
    pub fn with_windows(mut self, fast_us: u64, slow_us: u64) -> Self {
        self.fast_us = fast_us;
        self.slow_us = slow_us;
        self
    }

    /// Names the histogram whose exemplars annotate transitions.
    #[must_use]
    pub fn with_exemplar_from(mut self, histogram: impl Into<String>) -> Self {
        self.exemplar_from = Some(histogram.into());
        self
    }
}

/// Objective alert state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SloState {
    /// Neither window burns.
    #[default]
    Ok,
    /// The fast window burns: live, not yet sustained.
    Warning,
    /// Both windows burn: live and sustained.
    Page,
}

impl SloState {
    /// The wire/event spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Page => "page",
        }
    }
}

/// One objective's evaluated health.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObjectiveHealth {
    /// The objective name.
    pub name: String,
    /// `"ok"`, `"warning"` or `"page"`.
    pub state: String,
    /// Burn rate over the fast window (1.0 = budget consumed at accrual).
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Newest exemplar trace id of the related histogram, when one exists.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exemplar: Option<String>,
}

/// The process's aggregate readiness answer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"`, `"degraded"` (some objective warns) or `"unhealthy"`
    /// (some objective pages).
    pub status: String,
    /// Per-objective detail.
    pub objectives: Vec<ObjectiveHealth>,
}

#[derive(Debug)]
struct Objective {
    spec: SloSpec,
    state: SloState,
}

/// Evaluates a set of objectives against the time-series rings.
#[derive(Debug)]
pub struct SloEngine {
    objectives: Vec<Objective>,
}

impl SloEngine {
    /// An engine over the given objectives.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>) -> Self {
        Self {
            objectives: specs
                .into_iter()
                .map(|spec| Objective {
                    spec,
                    state: SloState::Ok,
                })
                .collect(),
        }
    }

    /// Evaluates every objective at `now_us` against `store`, emitting a
    /// flight-recorder event per state transition (annotated with the
    /// newest exemplar trace id found in `snapshot`'s related histogram).
    pub fn evaluate(
        &mut self,
        store: &SeriesStore,
        snapshot: &RegistrySnapshot,
        now_us: u64,
    ) -> HealthReport {
        let mut report = HealthReport {
            status: "ok".to_owned(),
            objectives: Vec::with_capacity(self.objectives.len()),
        };
        let mut worst = SloState::Ok;
        for objective in &mut self.objectives {
            let fast_burn = burn_rate(store, &objective.spec.kind, objective.spec.fast_us, now_us);
            let slow_burn = burn_rate(store, &objective.spec.kind, objective.spec.slow_us, now_us);
            let next = if fast_burn >= 1.0 && slow_burn >= 1.0 {
                SloState::Page
            } else if fast_burn >= 1.0 {
                SloState::Warning
            } else {
                SloState::Ok
            };
            let exemplar = objective
                .spec
                .exemplar_from
                .as_deref()
                .and_then(|name| newest_exemplar(snapshot, name));
            if next != objective.state {
                let mut event = format!(
                    "{SLO_TRANSITION_EVENT}.{}.{}_to_{}",
                    objective.spec.name,
                    objective.state.as_str(),
                    next.as_str()
                );
                if let Some(trace) = &exemplar {
                    event.push_str(".trace.");
                    event.push_str(trace);
                }
                crate::recorder::record_event(event);
                objective.state = next;
            }
            if state_rank(next) > state_rank(worst) {
                worst = next;
            }
            report.objectives.push(ObjectiveHealth {
                name: objective.spec.name.clone(),
                state: next.as_str().to_owned(),
                fast_burn,
                slow_burn,
                exemplar,
            });
        }
        report.status = match worst {
            SloState::Ok => "ok",
            SloState::Warning => "degraded",
            SloState::Page => "unhealthy",
        }
        .to_owned();
        report
    }
}

fn state_rank(state: SloState) -> u8 {
    match state {
        SloState::Ok => 0,
        SloState::Warning => 1,
        SloState::Page => 2,
    }
}

/// The newest (largest observed value) exemplar trace id of `histogram`.
fn newest_exemplar(snapshot: &RegistrySnapshot, histogram: &str) -> Option<String> {
    snapshot
        .histograms
        .iter()
        .find(|h| h.name == histogram)?
        .exemplars
        .as_ref()?
        .iter()
        .max_by_key(|e| e.value_us)
        .map(|e| e.trace_id.clone())
}

/// Burn rate of one objective over one window ending at `now_us`.
/// Windows with no (or too little) data burn 0 — absence of evidence is
/// not an alert.
fn burn_rate(store: &SeriesStore, kind: &SloKind, window_us: u64, now_us: u64) -> f64 {
    match kind {
        SloKind::GaugeAbove {
            metric,
            threshold,
            tolerance,
        } => {
            let Some(slice) = store.query(metric, None, Some(window_us), now_us) else {
                return 0.0;
            };
            let mut samples = 0u64;
            let mut violating = 0u64;
            for point in &slice.points {
                let Some(gauge) = point.gauge else { continue };
                samples += gauge.count;
                // A bucket's max bounds every sample in it; its min bounds
                // none. Count conservatively by the bucket's last sample,
                // scaled by the bucket's population when max violates.
                if gauge.max > *threshold {
                    // Upper-bound the violators by the bucket population
                    // when even the minimum violates; otherwise count one.
                    violating += if gauge.min > *threshold {
                        gauge.count
                    } else {
                        1
                    };
                }
            }
            if samples == 0 {
                return 0.0;
            }
            #[allow(clippy::cast_precision_loss)]
            let fraction = violating as f64 / samples as f64;
            fraction / tolerance.max(f64::MIN_POSITIVE)
        }
        SloKind::RatioAbove { bad, total, budget } => {
            let bad_delta: u64 = bad
                .iter()
                .map(|name| counter_delta(store, name, window_us, now_us))
                .sum();
            let total_delta: u64 = total
                .iter()
                .map(|name| counter_delta(store, name, window_us, now_us))
                .sum();
            if total_delta == 0 {
                return 0.0;
            }
            #[allow(clippy::cast_precision_loss)]
            let ratio = bad_delta as f64 / total_delta as f64;
            ratio / budget.max(f64::MIN_POSITIVE)
        }
        SloKind::RateAbove {
            metric,
            max_per_sec,
        } => {
            let delta = counter_delta(store, metric, window_us, now_us);
            if delta == 0 {
                return 0.0;
            }
            #[allow(clippy::cast_precision_loss)]
            let rate = delta as f64 / (window_us.max(1) as f64 / 1_000_000.0);
            rate / max_per_sec.max(f64::MIN_POSITIVE)
        }
    }
}

/// Last-minus-first cumulative value of a counter series over a window;
/// 0 when fewer than two buckets exist (no rate is observable yet).
fn counter_delta(store: &SeriesStore, metric: &str, window_us: u64, now_us: u64) -> u64 {
    let Some(slice) = store.query(metric, None, Some(window_us), now_us) else {
        return 0;
    };
    let mut first = None;
    let mut last = None;
    for point in &slice.points {
        let Some(value) = point.counter else { continue };
        if first.is_none() {
            first = Some(value);
        }
        last = Some(value);
    }
    match (first, last) {
        (Some(first), Some(last)) if slice.points.len() >= 2 => last.saturating_sub(first),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{SampleValue, TierSpec};

    fn store() -> SeriesStore {
        SeriesStore::new(&[TierSpec {
            step_us: 1_000_000,
            slots: 600,
        }])
    }

    fn sec(n: u64) -> u64 {
        n * 1_000_000
    }

    #[test]
    fn error_ratio_burns_and_recovers() {
        let store = store();
        let snapshot = RegistrySnapshot::default();
        let spec = SloSpec::new(
            "error-ratio",
            SloKind::RatioAbove {
                bad: vec!["bad".into()],
                total: vec!["good".into(), "bad".into()],
                // A generous 10 % budget so the short storm below burns the
                // fast window (20 % bad) before the slow one (9.4 % bad) —
                // the warning stage is observable before the page.
                budget: 0.1,
            },
        )
        .with_windows(sec(10), sec(30));
        let mut engine = SloEngine::new(vec![spec]);

        // 20 clean seconds: ok.
        for t in 0..20u64 {
            store.record(sec(t), "good", SampleValue::Counter(t * 10));
            store.record(sec(t), "bad", SampleValue::Counter(0));
        }
        let report = engine.evaluate(&store, &snapshot, sec(19));
        assert_eq!(report.status, "ok");

        // A 5-second error storm: the fast window trips first.
        for t in 20..25u64 {
            store.record(sec(t), "good", SampleValue::Counter(200 + (t - 20) * 10));
            store.record(sec(t), "bad", SampleValue::Counter((t - 19) * 5));
        }
        let report = engine.evaluate(&store, &snapshot, sec(24));
        assert_eq!(report.status, "degraded", "{report:?}");
        assert_eq!(report.objectives[0].state, "warning");
        assert!(report.objectives[0].fast_burn >= 1.0);

        // Sustained: the slow window catches up and it pages.
        for t in 25..55u64 {
            store.record(sec(t), "good", SampleValue::Counter(250 + (t - 24) * 10));
            store.record(sec(t), "bad", SampleValue::Counter(25 + (t - 24) * 5));
        }
        let report = engine.evaluate(&store, &snapshot, sec(54));
        assert_eq!(report.status, "unhealthy", "{report:?}");
        assert_eq!(report.objectives[0].state, "page");

        // Recovery: errors stop, windows drain, state returns to ok.
        for t in 55..100u64 {
            store.record(sec(t), "good", SampleValue::Counter(550 + (t - 54) * 10));
            store.record(sec(t), "bad", SampleValue::Counter(175));
        }
        let report = engine.evaluate(&store, &snapshot, sec(99));
        assert_eq!(report.status, "ok", "{report:?}");
    }

    #[test]
    fn transitions_emit_flight_recorder_events() {
        let store = store();
        let snapshot = RegistrySnapshot::default();
        let spec = SloSpec::new(
            "deficit-rate",
            SloKind::RateAbove {
                metric: "alerts".into(),
                max_per_sec: 1.0,
            },
        )
        .with_windows(sec(5), sec(10));
        let mut engine = SloEngine::new(vec![spec]);
        for t in 0..10u64 {
            store.record(sec(t), "alerts", SampleValue::Counter(t * 50));
        }
        let report = engine.evaluate(&store, &snapshot, sec(9));
        assert_eq!(report.status, "unhealthy");
        let events: Vec<String> = crate::recorder::snapshot()
            .into_iter()
            .filter(|r| r.name.starts_with(SLO_TRANSITION_EVENT))
            .map(|r| r.name.into_owned())
            .collect();
        assert!(
            events.iter().any(|e| e.contains("deficit-rate.ok_to_page")),
            "{events:?}"
        );
    }

    #[test]
    fn latency_objective_reads_quantile_gauges_and_exemplars() {
        let store = store();
        let registry = crate::Registry::new();
        let hist = registry.histogram("slo.exec");
        hist.record_us_traced(900_000, 0xabcd);
        let snapshot = registry.snapshot();
        let spec = SloSpec::new(
            "exec-p99",
            SloKind::GaugeAbove {
                metric: "slo.exec.p99_us".into(),
                threshold: 250_000.0,
                tolerance: 0.1,
            },
        )
        .with_windows(sec(5), sec(10))
        .with_exemplar_from("slo.exec");
        let mut engine = SloEngine::new(vec![spec]);
        for t in 0..10u64 {
            store.record_snapshot(sec(t), &snapshot);
        }
        let report = engine.evaluate(&store, &snapshot, sec(9));
        assert_eq!(report.status, "unhealthy", "{report:?}");
        assert_eq!(
            report.objectives[0].exemplar.as_deref(),
            Some(format!("{:016x}", 0xabcdu64).as_str())
        );
    }

    #[test]
    fn empty_windows_never_alert() {
        let store = store();
        let snapshot = RegistrySnapshot::default();
        let mut engine = SloEngine::new(vec![SloSpec::new(
            "quiet",
            SloKind::RatioAbove {
                bad: vec!["nothing".into()],
                total: vec!["nothing".into()],
                budget: 0.001,
            },
        )]);
        let report = engine.evaluate(&store, &snapshot, sec(100));
        assert_eq!(report.status, "ok");
        assert_eq!(report.objectives[0].fast_burn, 0.0);
    }

    #[test]
    fn gauge_exactly_at_threshold_does_not_burn() {
        // "Stay below X" is strict: a sample sitting exactly on the
        // threshold spends no budget; one ULP above it does.
        let at_threshold = store();
        let snapshot = RegistrySnapshot::default();
        let threshold = 250_000.0f64;
        let spec = SloSpec::new(
            "edge-gauge",
            SloKind::GaugeAbove {
                metric: "edge.gauge".into(),
                threshold,
                tolerance: 0.1,
            },
        )
        .with_windows(sec(5), sec(10));
        let mut engine = SloEngine::new(vec![spec.clone()]);
        for t in 0..10u64 {
            at_threshold.record(sec(t), "edge.gauge", SampleValue::Gauge(threshold));
        }
        let report = engine.evaluate(&at_threshold, &snapshot, sec(9));
        assert_eq!(report.status, "ok", "{report:?}");
        assert_eq!(report.objectives[0].fast_burn, 0.0);
        assert_eq!(report.objectives[0].slow_burn, 0.0);

        // The next representable value above the threshold violates.
        let above = store();
        for t in 0..10u64 {
            above.record(
                sec(t),
                "edge.gauge",
                SampleValue::Gauge(threshold.next_up()),
            );
        }
        let mut engine = SloEngine::new(vec![spec]);
        let report = engine.evaluate(&above, &snapshot, sec(9));
        assert_ne!(report.status, "ok", "{report:?}");
        assert!(report.objectives[0].fast_burn >= 1.0);
    }

    #[test]
    fn ratio_exactly_at_budget_burns_at_exactly_one() {
        // bad/total == budget is the burn-rate fixed point: the budget
        // is consumed exactly as fast as it accrues, and `>= 1.0` means
        // the boundary itself alerts.
        let store = store();
        let snapshot = RegistrySnapshot::default();
        let spec = SloSpec::new(
            "edge-ratio",
            SloKind::RatioAbove {
                bad: vec!["edge.bad".into()],
                total: vec!["edge.total".into()],
                budget: 0.1,
            },
        )
        .with_windows(sec(10), sec(30));
        let mut engine = SloEngine::new(vec![spec]);
        // One bad per ten total, every second: the ratio is exactly the
        // budget over every window.
        for t in 0..40u64 {
            store.record(sec(t), "edge.bad", SampleValue::Counter(t));
            store.record(sec(t), "edge.total", SampleValue::Counter(t * 10));
        }
        let report = engine.evaluate(&store, &snapshot, sec(39));
        assert_eq!(report.objectives[0].fast_burn, 1.0, "{report:?}");
        assert_eq!(report.objectives[0].slow_burn, 1.0, "{report:?}");
        assert_eq!(
            report.status, "unhealthy",
            "both windows at the fixed point must page: {report:?}"
        );
    }

    #[test]
    fn fast_fires_slow_holds_pins_warning_across_evaluations() {
        // A live-but-not-yet-sustained burn (fast ≥ 1, slow < 1) lands
        // in `warning` and *stays* there while the slow window holds —
        // re-evaluating must neither escalate nor flap back to ok.
        let store = store();
        let snapshot = RegistrySnapshot::default();
        let spec = SloSpec::new(
            "edge-pin",
            SloKind::GaugeAbove {
                metric: "edge.pin".into(),
                threshold: 100.0,
                tolerance: 0.5,
            },
        )
        .with_windows(sec(4), sec(40));
        let mut engine = SloEngine::new(vec![spec]);
        // 36 clean seconds, then a 4-second spike: the fast window is
        // pure violation, the slow one mostly clean.
        for t in 0..36u64 {
            store.record(sec(t), "edge.pin", SampleValue::Gauge(50.0));
        }
        for t in 36..40u64 {
            store.record(sec(t), "edge.pin", SampleValue::Gauge(500.0));
        }
        let report = engine.evaluate(&store, &snapshot, sec(39));
        assert_eq!(report.status, "degraded", "{report:?}");
        assert_eq!(report.objectives[0].state, "warning");
        assert!(report.objectives[0].fast_burn >= 1.0);
        assert!(report.objectives[0].slow_burn < 1.0);

        // Same data, repeated evaluation: the state is pinned, and no
        // further transition events accumulate.
        let events_before = crate::recorder::snapshot()
            .into_iter()
            .filter(|r| r.name.contains("edge-pin"))
            .count();
        for _ in 0..3 {
            let report = engine.evaluate(&store, &snapshot, sec(39));
            assert_eq!(report.objectives[0].state, "warning", "{report:?}");
        }
        let events_after = crate::recorder::snapshot()
            .into_iter()
            .filter(|r| r.name.contains("edge-pin"))
            .count();
        assert_eq!(
            events_before, events_after,
            "a pinned state must not re-emit transition events"
        );
    }

    #[test]
    fn health_reports_round_trip_through_json() {
        let report = HealthReport {
            status: "degraded".into(),
            objectives: vec![ObjectiveHealth {
                name: "error-ratio".into(),
                state: "warning".into(),
                fast_burn: 3.5,
                slow_burn: 0.25,
                exemplar: Some("00000000000000a1".into()),
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // No-exemplar objectives keep the field off the wire.
        let bare = HealthReport::default();
        assert!(!serde_json::to_string(&bare).unwrap().contains("exemplar"));
    }
}
