//! Observability for the monityre evaluation and serving stack.
//!
//! The paper's whole contribution is *visibility into where energy goes* —
//! per-block power split by dynamic/static and weighted by duty cycle. This
//! crate gives the reproduction the same visibility into where *time* goes,
//! with three layers and no heavy dependencies:
//!
//! 1. a **metrics registry** ([`Registry`]) — lock-sharded maps of named
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket latency [`Histogram`]s with
//!    p50/p90/p99 estimation. One process-wide instance ([`Registry::global`])
//!    collects the core evaluation spans; subsystems that need exact,
//!    isolated counters (the serving layer's `stats` op) own private
//!    instances of the same type;
//! 2. a **span API** ([`span!`]/[`span`]) — lightweight timer guards that
//!    record wall time into a global histogram on drop, and optionally emit
//!    one JSON line per span to a trace sink selected via the
//!    [`TRACE_ENV_VAR`] environment variable or [`set_trace_path`] (the CLI's
//!    `--trace-out`);
//! 3. an **exporter** ([`RegistrySnapshot::to_prometheus`]) — Prometheus
//!    text exposition format, served by `monityre-serve`'s `metrics` op and
//!    scraped by CI, with per-bucket **exemplar** trace ids on traced
//!    histograms so a tail bucket points at a concrete request;
//! 4. a **trace context** ([`TraceContext`]) — a wire-propagated
//!    (trace id, span id) pair installed per thread; every span started
//!    while a context is current links itself into one causal tree per
//!    request, emitted to the trace sink and the flight recorder;
//! 5. a **flight recorder** ([`recorder`]) — always-on fixed-size
//!    per-thread rings of recent span/event records, dumped as JSON lines
//!    (to [`FLIGHT_RECORDER_ENV_VAR`]) on worker panic, injected fault,
//!    deadline miss, or explicit `obs dump` — post-mortem visibility
//!    without steady-state trace-sink overhead;
//! 6. a **time-series store** ([`SeriesStore`]) — fixed-memory ring
//!    buffers with tiered downsampling (1s×600 → 10s×360 → 60s×360)
//!    fed by a background self-scrape of the registry, so the process
//!    remembers the last hour of every counter/gauge/quantile;
//! 7. an **SLO engine** ([`SloEngine`]) — declarative objectives
//!    evaluated against the rings with fast/slow-window burn-rate
//!    alerting; transitions land in the flight recorder and roll up
//!    into a [`HealthReport`] readiness answer;
//! 8. a **sampling profiler** ([`Profiler`]) — wall-clock samples of
//!    every thread's open-span stack, accumulated into a phase
//!    attribution [`FlameTable`].
//!
//! Instrumentation is on by default and costs one relaxed atomic load when
//! disabled via [`set_enabled`]; the spans sit at *batch* boundaries
//! (per sweep, per Monte Carlo run, per cache build, per served request),
//! never inside per-point loops, so the measured overhead on a full sweep
//! stays well under the 2 % budget pinned by `BENCH_obs.json`.
//!
//! ```
//! use monityre_obs as obs;
//!
//! {
//!     let _guard = obs::span!("doc.example");
//!     // ... timed work ...
//! }
//! let snapshot = obs::Registry::global().snapshot();
//! assert!(snapshot.histograms.iter().any(|h| h.name == "doc.example"));
//! let text = snapshot.to_prometheus();
//! assert!(text.contains("monityre_doc_example_seconds_count"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod export;
mod metrics;
pub mod names;
pub mod profiler;
pub mod recorder;
mod registry;
mod sink;
pub mod slo;
mod span;
pub mod timeseries;

pub use context::{
    current_context, install_context, splitmix64, ContextGuard, SpanIds, TraceContext,
};
pub use metrics::{
    BucketCount, Counter, CounterSnapshot, ExemplarSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, Reservoir, BUCKET_BOUNDS_US,
};
pub use profiler::{FlameRow, FlameTable, Profiler};
pub use recorder::{FlightRecord, RecordKind, FLIGHT_RECORDER_ENV_VAR};
pub use registry::{Registry, RegistrySnapshot};
pub use sink::{
    set_trace_path, set_trace_writer, trace_event, trace_event_with, trace_sink_active,
    TRACE_ENV_VAR,
};
pub use slo::{
    HealthReport, ObjectiveHealth, SloEngine, SloKind, SloSpec, SloState, DEFAULT_FAST_US,
    DEFAULT_SLOW_US,
};
pub use span::{enabled, now_us, record_phase, set_enabled, span, SpanGuard};
pub use timeseries::{
    parse_duration_us, GaugePoint, SampleValue, SeriesKind, SeriesPoint, SeriesSlice, SeriesStore,
    TierSpec, DEFAULT_TIERS,
};

/// Starts a named timer scope recording into the global registry — see
/// [`span`]. The guard records on drop:
///
/// ```
/// let _guard = monityre_obs::span!("sweep.batch");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
