//! The lock-sharded metrics registry.
//!
//! Names map to metric handles through a small fixed set of shards, each
//! its own mutex — lookups for different names rarely contend, and the
//! returned handles are `Arc`s whose hot-path operations (`inc`,
//! `record`) touch no lock at all. Callers that update a metric
//! repeatedly should resolve the handle once and keep the `Arc`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
};

/// How many shards a registry spreads its names over.
const SHARDS: usize = 8;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named-metric registry: get-or-create semantics, lock-sharded by
/// name hash.
///
/// The process-wide instance ([`Registry::global`]) collects the core
/// evaluation spans; private instances give subsystems (one server, one
/// test) exact counters unpolluted by their neighbours.
#[derive(Debug)]
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a — stable, allocation-free shard selection.
fn shard_of(name: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % SHARDS as u64) as usize
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// The process-wide registry the span API records into.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert<T, F, G>(&self, name: &str, wrap: F, unwrap: G) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: Fn(&Metric) -> Option<Arc<T>>,
    {
        // Shard maps stay structurally valid across a holder's panic (the
        // critical sections only insert), so recover poisoned locks: a
        // crashing worker must never wedge metrics for the whole process,
        // least of all while the flight recorder dumps mid-panic.
        let mut shard = self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(existing) = shard.get(name) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` is already registered as a {}",
                    existing.kind()
                )
            });
        }
        let metric = wrap();
        let handle = unwrap(&metric).expect("freshly wrapped metric matches");
        shard.insert(name.to_owned(), metric);
        handle
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |metric| match metric {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |metric| match metric {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |metric| match metric {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// (deterministic output for diffs, tests and the wire).
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snapshot = RegistrySnapshot::default();
        for shard in &self.shards {
            for (name, metric) in shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                match metric {
                    Metric::Counter(c) => snapshot.counters.push(CounterSnapshot {
                        name: name.clone(),
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => snapshot.gauges.push(GaugeSnapshot {
                        name: name.clone(),
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => snapshot.histograms.push(h.snapshot(name)),
                }
            }
        }
        snapshot.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot
    }
}

/// Every metric of one [`Registry`] at one instant, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Merges `other`'s metrics into this snapshot (used to combine a
    /// private registry with the global span registry for one exposition).
    /// Duplicate names keep both rows; callers namespace to avoid that.
    #[must_use]
    pub fn merged(mut self, other: RegistrySnapshot) -> RegistrySnapshot {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let registry = Registry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        let _ = registry.counter("x");
        let _ = registry.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = Registry::new();
        registry.counter("b.count").add(2);
        registry.counter("a.count").add(1);
        registry.gauge("depth").set(5);
        registry.histogram("lat").record(Duration::from_millis(3));
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.count", "b.count"]);
        assert_eq!(snap.gauges[0].value, 5);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn shards_spread_names() {
        // Not a correctness requirement, but the sharding function should
        // not collapse everything onto one shard.
        let shards: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("metric.{i}"))).collect();
        assert!(shards.len() > 1);
    }

    #[test]
    fn concurrent_updates_are_all_counted() {
        let registry = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let counter = registry.counter("hammer");
                    for _ in 0..1000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("hammer thread");
        }
        assert_eq!(registry.counter("hammer").get(), 4000);
    }

    #[test]
    fn merged_combines_and_sorts() {
        let a = Registry::new();
        a.counter("z").inc();
        let b = Registry::new();
        b.counter("a").inc();
        let merged = a.snapshot().merged(b.snapshot());
        let names: Vec<&str> = merged.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let registry = Arc::new(Registry::new());
        registry.counter("survivor").inc();
        let poisoner = Arc::clone(&registry);
        let _ = std::thread::spawn(move || {
            let shard = shard_of("survivor");
            let _guard = poisoner.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("poison the shard (intentional)");
        })
        .join();
        // Both lookup and snapshot must keep working on the poisoned shard.
        registry.counter("survivor").inc();
        let snap = registry.snapshot();
        let survivor = snap
            .counters
            .iter()
            .find(|c| c.name == "survivor")
            .expect("still visible");
        assert_eq!(survivor.value, 2);
    }

    #[test]
    fn registry_snapshot_round_trips_through_json() {
        let registry = Registry::new();
        registry.counter("c").add(7);
        registry.histogram("h").record(Duration::from_micros(42));
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
