//! Request-scoped trace context.
//!
//! A [`TraceContext`] names one causal tree (`trace_id`) and one position
//! inside it (`span_id`). The client mints a root context per logical
//! call, derives one child per attempt, and stamps it on the wire; the
//! server installs the received context on the worker thread via
//! [`install_context`], after which every span recorded through the
//! existing [`crate::span!`] machinery links itself into the tree: the
//! span's parent is whatever context is current when it starts, and the
//! span becomes the current context for its own dynamic extent.
//!
//! Ids are derived with `splitmix64`, so a pinned seed yields a fully
//! deterministic id sequence — the chaos harness relies on this to assert
//! complete trace trees for replayed fault schedules.

use std::cell::Cell;
use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

/// One position in one causal tree: the trace id shared by every span of
/// a logical request, plus the id of the span that is current here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The id shared by every record of one logical request.
    pub trace_id: u64,
    /// The id of the current (parent-to-be) span within the trace.
    pub span_id: u64,
}

/// The identity of one finished span within a trace, as recorded by the
/// sink and the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanIds {
    /// The trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// The id of the enclosing span (0 for a root).
    pub parent_id: u64,
}

/// Sebastiano Vigna's `splitmix64` — the same mixer the fault plan and
/// retrying client use, so seeded runs stay reproducible end to end.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain separator so trace ids never collide with idempotency keys
/// derived from the same seed material.
const TRACE_SALT: u64 = 0x7472_6163_6520_6964; // "trace id"

impl TraceContext {
    /// Mints a deterministic root context from `seed`. The root span id
    /// is derived from the trace id, so one seed fixes the whole tree.
    #[must_use]
    pub fn root(seed: u64) -> Self {
        let trace_id = splitmix64(seed ^ TRACE_SALT) | 1; // never zero
        Self {
            trace_id,
            span_id: splitmix64(trace_id),
        }
    }

    /// Derives the `index`-th child context: same trace, a new span id
    /// deterministic in (parent span, index). The retrying client uses
    /// one child per attempt so retries appear as siblings.
    #[must_use]
    pub fn child(&self, index: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ splitmix64(index.wrapping_add(1))),
        }
    }

    /// The wire form: two fixed-width lowercase hex ids joined by `:`.
    #[must_use]
    pub fn wire(&self) -> String {
        format!("{:016x}:{:016x}", self.trace_id, self.span_id)
    }

    /// Parses the [`Self::wire`] form. Returns `None` on anything else —
    /// the protocol decoder maps that to a malformed-request error, never
    /// a panic.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let (trace, span) = text.split_once(':')?;
        if trace.len() != 16 || span.len() != 16 {
            return None;
        }
        let trace_id = u64::from_str_radix(trace, 16).ok()?;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        Some(Self { trace_id, span_id })
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.wire())
    }
}

impl Serialize for TraceContext {
    fn to_value(&self) -> Value {
        Value::Str(self.wire())
    }
}

impl Deserialize for TraceContext {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(text) => Self::parse(text).ok_or_else(|| {
                Error::custom(format!(
                    "malformed trace context `{text}` (want 16-hex:16-hex)"
                ))
            }),
            other => Err(Error::invalid("string trace context", other)),
        }
    }
}

thread_local! {
    /// The context spans on this thread link under. `None` outside any
    /// request — spans then record without trace ids, exactly as before.
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
    /// Monotonic per-thread counter salting derived span ids so two
    /// same-named spans under one parent get distinct ids.
    static SPAN_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// The trace context current on this thread, if any.
#[must_use]
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as this thread's current context, returning a guard
/// that restores the previous context (possibly none) on drop. Workers
/// install the wire-received context around each job; `SweepExecutor`
/// re-installs the caller's context inside its scoped worker threads.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn install_context(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|current| current.replace(Some(ctx)));
    ContextGuard { prev }
}

/// Restores the previously current context when dropped; see
/// [`install_context`].
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|current| current.set(self.prev));
    }
}

/// Allocates ids for a span starting now under the current context:
/// `None` when no context is installed (untraced span), otherwise the
/// span's own ids with its parent filled in. The new span becomes the
/// current context so nested spans chain under it; the caller must pass
/// the returned previous value to [`exit_span`] on drop.
pub(crate) fn enter_span() -> (Option<SpanIds>, Option<Option<TraceContext>>) {
    let Some(parent) = current_context() else {
        return (None, None);
    };
    let seq = SPAN_SEQ.with(|seq| {
        let n = seq.get().wrapping_add(1);
        seq.set(n);
        n
    });
    let own = TraceContext {
        trace_id: parent.trace_id,
        span_id: splitmix64(parent.span_id ^ splitmix64(seq)),
    };
    let prev = CURRENT.with(|current| current.replace(Some(own)));
    (
        Some(SpanIds {
            trace_id: own.trace_id,
            span_id: own.span_id,
            parent_id: parent.span_id,
        }),
        Some(prev),
    )
}

/// Restores the context that was current before [`enter_span`].
pub(crate) fn exit_span(prev: Option<Option<TraceContext>>) {
    if let Some(prev) = prev {
        CURRENT.with(|current| current.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_form_round_trips() {
        let ctx = TraceContext::root(2011);
        let back = TraceContext::parse(&ctx.wire()).expect("parses");
        assert_eq!(back, ctx);
        assert_eq!(ctx.wire().len(), 33);
    }

    #[test]
    fn parse_rejects_damage() {
        assert!(TraceContext::parse("").is_none());
        assert!(TraceContext::parse("abc").is_none());
        assert!(TraceContext::parse("0123456789abcdef").is_none());
        assert!(TraceContext::parse("0123456789abcdef:0123").is_none());
        assert!(TraceContext::parse("0123456789abcdeg:0123456789abcdef").is_none());
        assert!(TraceContext::parse(&format!("{}:extra", "0".repeat(16))).is_none());
    }

    #[test]
    fn roots_and_children_are_deterministic() {
        let a = TraceContext::root(7);
        let b = TraceContext::root(7);
        assert_eq!(a, b);
        assert_ne!(a, TraceContext::root(8));
        assert_eq!(a.child(0), b.child(0));
        assert_ne!(a.child(0).span_id, a.child(1).span_id);
        assert_eq!(a.child(1).trace_id, a.trace_id);
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(current_context().is_none());
        let outer = TraceContext::root(1);
        {
            let _g = install_context(outer);
            assert_eq!(current_context(), Some(outer));
            let inner = outer.child(0);
            {
                let _g2 = install_context(inner);
                assert_eq!(current_context(), Some(inner));
            }
            assert_eq!(current_context(), Some(outer));
        }
        assert!(current_context().is_none());
    }

    #[test]
    fn serde_value_is_a_string() {
        let ctx = TraceContext::root(42);
        let json = serde_json::to_string(&ctx).unwrap();
        assert!(json.starts_with('"') && json.ends_with('"'), "{json}");
        let back: TraceContext = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ctx);
        assert!(serde_json::from_str::<TraceContext>("\"nope\"").is_err());
        assert!(serde_json::from_str::<TraceContext>("17").is_err());
    }
}
