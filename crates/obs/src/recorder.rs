//! The always-on flight recorder.
//!
//! Every finished span (and every injected-fault event) is additionally
//! pushed into a fixed-size per-thread ring of recent records. In steady
//! state nothing else happens — the ring overwrites itself and costs one
//! uncontended lock plus one slot write per span, far below the trace
//! sink's per-event formatting and I/O. When something goes wrong — a
//! worker panic, an injected fault, a missed deadline, or an explicit
//! `obs dump` — the rings are dumped as JSON lines to the path named by
//! [`FLIGHT_RECORDER_ENV_VAR`] (or [`set_dump_path`]), giving post-mortem
//! visibility into the last moments of every thread.
//!
//! Spans still open at dump time (a worker mid-panic never reaches its
//! guard's drop) are flushed as `"truncated":true` records with the
//! duration elapsed so far, so no timing is lost to the crash itself.
//!
//! Each thread owns its ring behind a `Mutex` that only the owner touches
//! on the record path; the dump path is the sole cross-thread reader, and
//! it recovers poisoned locks with `into_inner` so a panicking worker can
//! never wedge the dump that is trying to explain the panic.

use std::borrow::Cow;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::context::SpanIds;

/// Environment variable naming the flight-recorder dump file. Setting it
/// arms automatic dumps on panic / fault / deadline-miss triggers; the
/// recorder itself records regardless.
pub const FLIGHT_RECORDER_ENV_VAR: &str = "MONITYRE_FLIGHT_RECORDER";

/// Records each thread keeps. Spans sit at batch/request boundaries, so
/// 256 records cover seconds of recent history per thread.
const RING_CAPACITY: usize = 256;

/// What one flight-recorder entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A finished span (has a real duration).
    Span,
    /// A point-in-time event (an injected fault, a dump trigger).
    Event,
    /// A span still open at dump time; `dur_us` is elapsed-so-far.
    Truncated,
}

/// One entry of the flight recorder.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Start time, microseconds since the process span epoch.
    pub ts_us: u64,
    /// Span or event name.
    pub name: Cow<'static, str>,
    /// Duration in microseconds (0 for events).
    pub dur_us: u64,
    /// Trace linkage; `None` for records outside any request.
    pub ids: Option<SpanIds>,
    /// Span, event, or truncated-span marker.
    pub kind: RecordKind,
}

impl FlightRecord {
    /// Renders the record as one JSON object line (no trailing newline),
    /// the same shape the trace sink emits so `obs trace` reads both.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"ts_us\":{},\"span\":{},\"dur_us\":{}",
            self.ts_us,
            serde_json::to_string(&self.name.to_string()).unwrap_or_else(|_| "\"?\"".to_owned()),
            self.dur_us
        );
        if let Some(ids) = self.ids {
            line.push_str(&format!(
                ",\"trace\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent\":\"{:016x}\"",
                ids.trace_id, ids.span_id, ids.parent_id
            ));
        }
        match self.kind {
            RecordKind::Span => {}
            RecordKind::Event => line.push_str(",\"event\":true"),
            RecordKind::Truncated => line.push_str(",\"truncated\":true"),
        }
        line.push('}');
        line
    }
}

/// A span in flight: registered at guard creation, removed at drop, and
/// flushed as a truncated record if a dump happens in between.
#[derive(Debug, Clone)]
struct OpenSpan {
    token: u64,
    name: &'static str,
    start_us: u64,
    ids: Option<SpanIds>,
}

/// One thread's recent history plus its currently open spans.
#[derive(Debug, Default)]
struct ThreadLog {
    ring: Vec<FlightRecord>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    open: Vec<OpenSpan>,
    next_token: u64,
}

impl ThreadLog {
    fn push(&mut self, record: FlightRecord) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(record);
        } else {
            self.ring[self.next] = record;
            self.next = (self.next + 1) % RING_CAPACITY;
        }
    }

    /// Records oldest-first (the ring stores them wrapped).
    fn ordered(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }
}

type SharedLog = Arc<Mutex<ThreadLog>>;

/// Every thread that ever recorded, for the dump path to walk.
fn all_logs() -> &'static Mutex<Vec<SharedLog>> {
    static LOGS: OnceLock<Mutex<Vec<SharedLog>>> = OnceLock::new();
    LOGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: OnceLock<SharedLog> = const { OnceLock::new() };
}

fn local_log() -> SharedLog {
    LOCAL.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let log = Arc::new(Mutex::new(ThreadLog::default()));
            all_logs()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&log));
            log
        }))
    })
}

/// Whether the rings record at all; on by default (the whole point is
/// being armed *before* anything goes wrong). The bench harness toggles
/// this to price the steady-state cost.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Whether the flight recorder is currently recording.
#[must_use]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns ring recording on or off process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Where dumps go: resolved once from [`FLIGHT_RECORDER_ENV_VAR`], then
/// overridable via [`set_dump_path`].
fn dump_path_slot() -> &'static Mutex<Option<PathBuf>> {
    static SLOT: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    SLOT.get_or_init(|| {
        Mutex::new(
            std::env::var(FLIGHT_RECORDER_ENV_VAR)
                .ok()
                .filter(|path| !path.trim().is_empty())
                .map(PathBuf::from),
        )
    })
}

/// Arms automatic dumps to `path` (the CLI's `--flight-recorder` flag).
pub fn set_dump_path(path: &Path) {
    *dump_path_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(path.to_path_buf());
}

/// The armed dump path, if any.
#[must_use]
pub fn dump_path() -> Option<PathBuf> {
    dump_path_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Pushes one finished-span record. Called from the span guard's drop.
pub(crate) fn record_span(name: &'static str, start_us: u64, dur_us: u64, ids: Option<SpanIds>) {
    if !recording() {
        return;
    }
    let log = local_log();
    let mut log = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    log.push(FlightRecord {
        ts_us: start_us,
        name: Cow::Borrowed(name),
        dur_us,
        ids,
        kind: RecordKind::Span,
    });
}

/// Records a point-in-time event (an injected fault, a trigger) linked
/// to the current trace context.
pub fn record_event(name: impl Into<Cow<'static, str>>) {
    if !recording() {
        return;
    }
    let ids = crate::context::current_context().map(|ctx| SpanIds {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: 0,
    });
    let log = local_log();
    let mut log = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    log.push(FlightRecord {
        ts_us: crate::span::now_us(),
        name: name.into(),
        dur_us: 0,
        ids,
        kind: RecordKind::Event,
    });
}

/// Registers an open span; returns a token for [`close_span`].
pub(crate) fn open_span(name: &'static str, start_us: u64, ids: Option<SpanIds>) -> Option<u64> {
    if !recording() {
        return None;
    }
    let log = local_log();
    let mut log = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    log.next_token = log.next_token.wrapping_add(1);
    let token = log.next_token;
    log.open.push(OpenSpan {
        token,
        name,
        start_us,
        ids,
    });
    Some(token)
}

/// Removes the open-span registration made by [`open_span`].
pub(crate) fn close_span(token: Option<u64>) {
    let Some(token) = token else {
        return;
    };
    let log = local_log();
    let mut log = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(pos) = log.open.iter().rposition(|span| span.token == token) {
        log.open.remove(pos);
    }
}

/// Visits every thread's currently-open span stack (root first), one
/// callback per thread that has at least one span open. Returns how many
/// threads were visited. This is the sampling profiler's read path: it
/// takes the same locks as the dump path in the same outer→inner order,
/// copies the `&'static str` names out, and releases the thread's lock
/// before invoking `visit`, so the sampled thread is blocked only for a
/// handful of pointer copies and no lock is ever held across user code.
pub fn visit_open_spans(mut visit: impl FnMut(&[&'static str])) -> usize {
    let logs: Vec<SharedLog> = all_logs()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut names: Vec<&'static str> = Vec::with_capacity(8);
    let mut seen = 0usize;
    for log in logs {
        let log = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if log.open.is_empty() {
            continue;
        }
        names.clear();
        names.extend(log.open.iter().map(|span| span.name));
        drop(log);
        seen += 1;
        visit(&names);
    }
    seen
}

/// Collects every thread's records (oldest-first per thread, threads
/// concatenated) plus truncated records for still-open spans, sorted by
/// start time. This is the dump payload; tests read it directly.
#[must_use]
pub fn snapshot() -> Vec<FlightRecord> {
    let now = crate::span::now_us();
    let logs: Vec<SharedLog> = all_logs()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut records = Vec::new();
    for log in logs {
        let log = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        records.extend(log.ordered());
        for open in &log.open {
            records.push(FlightRecord {
                ts_us: open.start_us,
                name: Cow::Borrowed(open.name),
                dur_us: now.saturating_sub(open.start_us),
                ids: open.ids,
                kind: RecordKind::Truncated,
            });
        }
    }
    records.sort_by_key(|record| record.ts_us);
    records
}

/// Writes the full snapshot as JSON lines to `writer`, preceded by one
/// `{"dump":"<reason>",…}` header line. Returns the record count.
///
/// # Errors
///
/// Propagates write errors from `writer`.
pub fn dump_to<W: Write>(writer: &mut W, reason: &str) -> std::io::Result<usize> {
    let records = snapshot();
    writeln!(
        writer,
        "{{\"dump\":{},\"ts_us\":{},\"records\":{}}}",
        serde_json::to_string(&reason.to_owned()).unwrap_or_else(|_| "\"?\"".to_owned()),
        crate::span::now_us(),
        records.len()
    )?;
    for record in &records {
        writeln!(writer, "{}", record.to_json_line())?;
    }
    writer.flush()?;
    Ok(records.len())
}

/// Dumps to the armed path (append mode — successive triggers accumulate
/// in one post-mortem file). Returns the path written and the record
/// count, `None` when the recorder is unarmed or the write failed
/// (reported to stderr, never a panic: dumps run inside panic handlers).
pub fn dump(reason: &str) -> Option<(PathBuf, usize)> {
    let path = dump_path()?;
    let file = OpenOptions::new().create(true).append(true).open(&path);
    match file {
        Ok(file) => {
            let mut writer = BufWriter::new(file);
            match dump_to(&mut writer, reason) {
                Ok(count) => Some((path, count)),
                Err(err) => {
                    eprintln!(
                        "monityre-obs: flight-recorder dump to {} failed: {err}",
                        path.display()
                    );
                    None
                }
            }
        }
        Err(err) => {
            eprintln!(
                "monityre-obs: cannot open flight-recorder dump {}: {err}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{install_context, TraceContext};

    #[test]
    fn spans_land_in_the_ring_with_trace_ids() {
        let ctx = TraceContext::root(99);
        {
            let _g = install_context(ctx);
            let _span = crate::span("recorder.unit");
        }
        let records = snapshot();
        let record = records
            .iter()
            .find(|r| r.name == "recorder.unit" && r.kind == RecordKind::Span)
            .expect("span recorded");
        let ids = record.ids.expect("linked to the trace");
        assert_eq!(ids.trace_id, ctx.trace_id);
        assert_eq!(ids.parent_id, ctx.span_id);
        let line = record.to_json_line();
        assert!(line.contains("\"span\":\"recorder.unit\""), "{line}");
        assert!(
            line.contains(&format!("\"trace\":\"{:016x}\"", ctx.trace_id)),
            "{line}"
        );
    }

    #[test]
    fn open_spans_dump_as_truncated_records() {
        let ctx = TraceContext::root(123);
        let _g = install_context(ctx);
        let _held = crate::span("recorder.open");
        // Dump while the span is still open: it must appear truncated.
        let mut out = Vec::new();
        let count = dump_to(&mut out, "unit-test").expect("dump writes");
        assert!(count >= 1);
        let text = String::from_utf8(out).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("recorder.open"))
            .expect("open span flushed");
        assert!(line.contains("\"truncated\":true"), "{line}");
        assert!(
            line.contains(&format!("\"trace\":\"{:016x}\"", ctx.trace_id)),
            "{line}"
        );
        assert!(text.starts_with("{\"dump\":\"unit-test\""), "{text}");
        // Once the guard drops it records normally and leaves the open set.
        drop(_held);
        let open_left = snapshot()
            .into_iter()
            .filter(|r| r.name == "recorder.open" && r.kind == RecordKind::Truncated)
            .count();
        assert_eq!(open_left, 0, "closed span must leave the open set");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut log = ThreadLog::default();
        for i in 0..(RING_CAPACITY + 10) {
            log.push(FlightRecord {
                ts_us: i as u64,
                name: Cow::Borrowed("ring.fill"),
                dur_us: 1,
                ids: None,
                kind: RecordKind::Span,
            });
        }
        let ordered = log.ordered();
        assert_eq!(ordered.len(), RING_CAPACITY);
        assert_eq!(ordered.first().unwrap().ts_us, 10);
        assert_eq!(
            ordered.last().unwrap().ts_us,
            (RING_CAPACITY + 10 - 1) as u64
        );
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        set_recording(false);
        let before = snapshot()
            .iter()
            .filter(|r| r.name == "recorder.off")
            .count();
        {
            let _span = crate::span("recorder.off");
            record_event("recorder.off");
        }
        set_recording(true);
        let after = snapshot()
            .iter()
            .filter(|r| r.name == "recorder.off")
            .count();
        assert_eq!(before, after, "recording off must be inert");
    }

    #[test]
    fn events_carry_the_current_context() {
        let ctx = TraceContext::root(555);
        {
            let _g = install_context(ctx);
            record_event("fault.conn_reset");
        }
        let records = snapshot();
        let event = records
            .iter()
            .rev()
            .find(|r| r.name == "fault.conn_reset" && r.kind == RecordKind::Event)
            .expect("event recorded");
        assert_eq!(event.ids.expect("linked").trace_id, ctx.trace_id);
        assert!(event.to_json_line().contains("\"event\":true"));
    }
}
