//! Named timer scopes.
//!
//! [`span`] (or the [`crate::span!`] macro) returns a [`SpanGuard`] that,
//! when dropped, records the elapsed wall time into the global registry
//! histogram of the same name and — if a trace sink is installed — emits
//! one JSON event line. Spans sit at batch boundaries (a whole sweep, a
//! whole Monte Carlo run), so the per-span cost (one `Instant::now` pair,
//! one histogram record) is amortized over thousands of evaluations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::Registry;
use crate::sink::trace_event;

/// Process-wide instrumentation switch, on by default. Disabling turns
/// [`span`] into a single relaxed load returning an inert guard.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether spans currently record.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. The bench harness uses
/// this to measure instrumented-vs-inert sweep throughput.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The instant the span clock first ticked; trace `ts_us` fields are
/// relative to this so events within one process are ordered and small.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Starts a named timer scope. The returned guard records into the
/// global registry histogram `name` when it drops:
///
/// ```
/// {
///     let _guard = monityre_obs::span("example.work");
///     // ... timed work ...
/// }
/// assert!(monityre_obs::Registry::global()
///     .snapshot()
///     .histograms
///     .iter()
///     .any(|h| h.name == "example.work" && h.count >= 1));
/// ```
#[must_use = "the span records when the guard drops; binding it to `_` drops immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None, name };
    }
    let start = Instant::now();
    SpanGuard {
        live: Some(start),
        name,
    }
}

/// An active timer scope; see [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when instrumentation was disabled at creation — drop is a no-op.
    live: Option<Instant>,
    name: &'static str,
}

impl SpanGuard {
    /// The span's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.live else {
            return;
        };
        let elapsed = start.elapsed();
        Registry::global().histogram(self.name).record(elapsed);
        if crate::sink::active() {
            let start_us =
                u64::try_from(start.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
            let dur_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
            trace_event(self.name, start_us, dur_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_the_global_registry() {
        {
            let guard = span("span.unit");
            assert_eq!(guard.name(), "span.unit");
        }
        let snap = Registry::global().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "span.unit")
            .expect("histogram registered");
        assert!(hist.count >= 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _guard = span("span.disabled");
        }
        set_enabled(true);
        let snap = Registry::global().snapshot();
        assert!(
            !snap.histograms.iter().any(|h| h.name == "span.disabled"),
            "disabled span must not touch the registry"
        );
    }
}
