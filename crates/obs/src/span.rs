//! Named timer scopes.
//!
//! [`span`] (or the [`crate::span!`] macro) returns a [`SpanGuard`] that,
//! when dropped, records the elapsed wall time into the global registry
//! histogram of the same name and — if a trace sink is installed — emits
//! one JSON event line. Spans sit at batch boundaries (a whole sweep, a
//! whole Monte Carlo run), so the per-span cost (one `Instant::now` pair,
//! one histogram record) is amortized over thousands of evaluations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::context::{SpanIds, TraceContext};
use crate::registry::Registry;
use crate::sink::trace_event_with;

/// Process-wide instrumentation switch, on by default. Disabling turns
/// [`span`] into a single relaxed load returning an inert guard.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether spans currently record.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. The bench harness uses
/// this to measure instrumented-vs-inert sweep throughput.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The instant the span clock first ticked; trace `ts_us` fields are
/// relative to this so events within one process are ordered and small.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the span epoch, for records and dump headers.
/// Public so embedders (the serve layer's self-scrape loop) can stamp
/// time-series samples on the same clock the recorder uses.
#[must_use]
pub fn now_us() -> u64 {
    instant_us(Instant::now())
}

/// `instant` as microseconds since the span epoch (0 if it predates it).
fn instant_us(instant: Instant) -> u64 {
    u64::try_from(instant.saturating_duration_since(epoch()).as_micros()).unwrap_or(u64::MAX)
}

/// Starts a named timer scope. The returned guard records into the
/// global registry histogram `name` when it drops:
///
/// ```
/// {
///     let _guard = monityre_obs::span("example.work");
///     // ... timed work ...
/// }
/// assert!(monityre_obs::Registry::global()
///     .snapshot()
///     .histograms
///     .iter()
///     .any(|h| h.name == "example.work" && h.count >= 1));
/// ```
#[must_use = "the span records when the guard drops; binding it to `_` drops immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            live: None,
            name,
            ids: None,
            restore: None,
            open_token: None,
        };
    }
    let start = Instant::now();
    // Link into the current trace (if any): the span gets its own id with
    // the current context as parent, and becomes current for its extent.
    let (ids, restore) = crate::context::enter_span();
    let open_token = crate::recorder::open_span(name, instant_us(start), ids);
    SpanGuard {
        live: Some(start),
        name,
        ids,
        restore,
        open_token,
    }
}

/// An active timer scope; see [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when instrumentation was disabled at creation — drop is a no-op.
    live: Option<Instant>,
    name: &'static str,
    /// Trace linkage when a [`TraceContext`] was current at creation.
    ids: Option<SpanIds>,
    /// Previous thread-current context to restore on drop.
    restore: Option<Option<TraceContext>>,
    /// Flight-recorder open-span registration, closed on drop.
    open_token: Option<u64>,
}

impl SpanGuard {
    /// The span's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The span's trace linkage, if it runs inside an installed context.
    #[must_use]
    pub fn ids(&self) -> Option<SpanIds> {
        self.ids
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        crate::context::exit_span(self.restore.take());
        let Some(start) = self.live else {
            return;
        };
        let elapsed = start.elapsed();
        Registry::global().histogram(self.name).record(elapsed);
        let start_us = instant_us(start);
        let dur_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        crate::recorder::close_span(self.open_token.take());
        crate::recorder::record_span(self.name, start_us, dur_us, self.ids);
        if crate::sink::active() {
            trace_event_with(self.name, start_us, dur_us, self.ids);
        }
    }
}

/// Records an externally timed phase (one the caller measured itself,
/// like queue wait between threads) as a finished span: into the flight
/// recorder and the trace sink, linked under this thread's current
/// context exactly like a [`span`] guard. Unlike [`span`], no histogram
/// is touched — callers that aggregate the phase (the serving layer's
/// private stats registry) keep doing so themselves, so the merged
/// Prometheus exposition never double-counts.
pub fn record_phase(name: &'static str, start: Instant, elapsed: Duration) {
    if !enabled() {
        return;
    }
    let (ids, restore) = crate::context::enter_span();
    crate::context::exit_span(restore);
    let start_us = instant_us(start);
    let dur_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    crate::recorder::record_span(name, start_us, dur_us, ids);
    if crate::sink::active() {
        trace_event_with(name, start_us, dur_us, ids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_the_global_registry() {
        {
            let guard = span("span.unit");
            assert_eq!(guard.name(), "span.unit");
        }
        let snap = Registry::global().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "span.unit")
            .expect("histogram registered");
        assert!(hist.count >= 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _guard = span("span.disabled");
        }
        set_enabled(true);
        let snap = Registry::global().snapshot();
        assert!(
            !snap.histograms.iter().any(|h| h.name == "span.disabled"),
            "disabled span must not touch the registry"
        );
    }
}
