//! Prometheus text exposition (version 0.0.4) for registry snapshots.
//!
//! Metric names are prefixed `monityre_` and sanitized (dots and any
//! other non-`[a-zA-Z0-9_]` become underscores). Histograms are rendered
//! in base seconds as `<name>_seconds_bucket{le="…"}` cumulative series
//! plus `_sum`/`_count`, which is what Prometheus' `histogram_quantile`
//! expects.

use std::fmt::Write as _;

use crate::registry::RegistrySnapshot;

/// Prefix applied to every exported metric name.
const PREFIX: &str = "monityre_";

/// `balance.sweep` → `monityre_balance_sweep`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a float the way Prometheus expects: plain decimal, no
/// exponent needed for our ranges.
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for counter in &self.counters {
            let name = sanitize(&counter.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.value);
        }
        for gauge in &self.gauges {
            let name = sanitize(&gauge.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.value);
        }
        for hist in &self.histograms {
            let name = format!("{}_seconds", sanitize(&hist.name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for bucket in &hist.buckets {
                cumulative += bucket.count;
                let le = fmt_f64(bucket.le_us as f64 / 1e6);
                let _ = write!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                // OpenMetrics exemplar suffix: the last trace id this
                // bucket saw, so a tail bucket points at a concrete trace.
                if let Some(exemplar) = hist
                    .exemplars
                    .as_deref()
                    .and_then(|ex| ex.iter().find(|e| e.le_us == bucket.le_us))
                {
                    let _ = write!(
                        out,
                        " # {{trace_id=\"{}\"}} {}",
                        exemplar.trace_id,
                        fmt_f64(exemplar.value_us as f64 / 1e6)
                    );
                }
                out.push('\n');
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", fmt_f64(hist.sum_us as f64 / 1e6));
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;
    use std::time::Duration;

    #[test]
    fn exposition_has_types_values_and_cumulative_buckets() {
        let registry = Registry::new();
        registry.counter("serve.served").add(12);
        registry.gauge("serve.queue_depth").set(3);
        let hist = registry.histogram("serve.execute");
        hist.record(Duration::from_micros(15)); // first finite bucket is 10 µs
        hist.record(Duration::from_micros(15));
        hist.record(Duration::from_secs(3600)); // overflow → +Inf only
        let text = registry.snapshot().to_prometheus();

        assert!(
            text.contains("# TYPE monityre_serve_served counter"),
            "{text}"
        );
        assert!(text.contains("monityre_serve_served 12"), "{text}");
        assert!(
            text.contains("# TYPE monityre_serve_queue_depth gauge"),
            "{text}"
        );
        assert!(text.contains("monityre_serve_queue_depth 3"), "{text}");
        assert!(
            text.contains("# TYPE monityre_serve_execute_seconds histogram"),
            "{text}"
        );
        // 15 µs lands in le=2e-05; both finite buckets from there on see 2.
        assert!(
            text.contains("monityre_serve_execute_seconds_bucket{le=\"0.00002\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("monityre_serve_execute_seconds_bucket{le=\"50.0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("monityre_serve_execute_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("monityre_serve_execute_seconds_count 3"),
            "{text}"
        );
        assert!(
            text.contains("monityre_serve_execute_seconds_sum 3600.00003"),
            "{text}"
        );
    }

    #[test]
    fn traced_buckets_carry_exemplar_suffixes() {
        let registry = Registry::new();
        let hist = registry.histogram("serve.execute");
        hist.record_us_traced(15, 0xabc);
        hist.record(Duration::from_micros(150)); // untraced bucket
        let text = registry.snapshot().to_prometheus();
        assert!(
            text.contains(
                "monityre_serve_execute_seconds_bucket{le=\"0.00002\"} 1 # {trace_id=\"0000000000000abc\"} 0.000015"
            ),
            "{text}"
        );
        // The untraced bucket renders without a suffix (cumulative 2).
        assert!(
            text.contains("monityre_serve_execute_seconds_bucket{le=\"0.0002\"} 2\n"),
            "{text}"
        );
    }

    #[test]
    fn every_line_is_well_formed() {
        let registry = Registry::new();
        registry.counter("a.b-c d").inc();
        registry.histogram("h").record(Duration::from_millis(1));
        for line in registry.snapshot().to_prometheus().lines() {
            assert!(
                line.starts_with("# TYPE monityre_") || line.starts_with("monityre_"),
                "unexpected line: {line}"
            );
        }
    }
}
