//! The metric primitives: counters, gauges, fixed-bucket latency
//! histograms, and an exact-percentile reservoir.
//!
//! Everything here is lock-free (relaxed atomics) except [`Reservoir`],
//! whose ring needs a mutex; all of it is safe to hammer from sweep
//! workers. Histograms use one fixed, log-spaced microsecond bucket
//! layout ([`BUCKET_BOUNDS_US`]) so every latency series in the process
//! is comparable and the Prometheus exposition needs no per-metric
//! configuration.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A monotone event tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current tally.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, warm entries).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The fixed log-spaced bucket upper bounds, in microseconds. The final
/// implicit bucket is `+Inf`. 10 µs resolution at the bottom (a cache
/// lookup), 50 s at the top (a pathological emulation) — wide enough for
/// every latency this workspace produces.
pub const BUCKET_BOUNDS_US: [u64; 19] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 50_000_000,
];

/// Bucket count including the `+Inf` overflow bucket.
const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_US`].
///
/// Recording is two relaxed `fetch_add`s plus one already-counted
/// `fetch_add` for the bucket — cheap enough for batch boundaries, too
/// coarse-grained to sit inside a per-point loop (by design).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    /// Last trace id observed per bucket (0 = none): the exemplar that
    /// lets a Prometheus p99 bucket point at a concrete offending trace.
    /// Best-effort last-write-wins; the paired value may be one write
    /// behind under contention, which exemplars tolerate by design.
    exemplar_trace: [AtomicU64; BUCKETS],
    /// The observed value (µs) paired with `exemplar_trace`.
    exemplar_us: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            exemplar_trace: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        self.record_us_traced(us, 0);
    }

    /// Records one observation and, when `trace_id` is nonzero, stamps it
    /// as the bucket's exemplar.
    pub fn record_us_traced(&self, us: u64, trace_id: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplar_trace[idx].store(trace_id, Ordering::Relaxed);
            self.exemplar_us[idx].store(us, Ordering::Relaxed);
        }
    }

    /// Records one observed duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one observed duration with an exemplar trace id.
    pub fn record_traced(&self, elapsed: Duration, trace_id: u64) {
        self.record_us_traced(
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            trace_id,
        );
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let exemplars: Vec<ExemplarSnapshot> = (0..BUCKETS)
            .filter_map(|idx| {
                let trace_id = self.exemplar_trace[idx].load(Ordering::Relaxed);
                (trace_id != 0).then(|| ExemplarSnapshot {
                    le_us: BUCKET_BOUNDS_US.get(idx).copied().unwrap_or(u64::MAX),
                    trace_id: format!("{trace_id:016x}"),
                    value_us: self.exemplar_us[idx].load(Ordering::Relaxed),
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum_us,
            p50_us: estimate_quantile(&buckets, count, 0.50),
            p90_us: estimate_quantile(&buckets, count, 0.90),
            p99_us: estimate_quantile(&buckets, count, 0.99),
            buckets: BUCKET_BOUNDS_US
                .iter()
                .zip(&buckets)
                .map(|(&le_us, &count)| BucketCount { le_us, count })
                .collect(),
            exemplars: (!exemplars.is_empty()).then_some(exemplars),
        }
    }
}

/// Estimates the `q`-quantile in microseconds by linear interpolation
/// inside the bucket holding the target rank. Returns 0 for an empty
/// histogram; observations in the overflow bucket report the largest
/// finite bound (a floor, clearly documented in DESIGN §8).
fn estimate_quantile(buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = (count as f64 * q).max(1.0);
    let mut seen = 0.0;
    for (idx, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = seen + n as f64;
        if next >= target {
            let hi = BUCKET_BOUNDS_US
                .get(idx)
                .copied()
                .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1])
                as f64;
            let lo = if idx == 0 {
                0.0
            } else {
                BUCKET_BOUNDS_US[(idx - 1).min(BUCKET_BOUNDS_US.len() - 1)] as f64
            };
            let within = (target - seen) / n as f64;
            return lo + (hi - lo) * within;
        }
        seen = next;
    }
    BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64
}

/// One cumulative-from-zero bucket of a [`HistogramSnapshot`] (the count
/// here is per-bucket; the Prometheus renderer accumulates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper bound of the bucket, microseconds (inclusive).
    pub le_us: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// Serializable point-in-time state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// The registered metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Estimated median, microseconds.
    pub p50_us: f64,
    /// Estimated 90th percentile, microseconds.
    pub p90_us: f64,
    /// Estimated 99th percentile, microseconds.
    pub p99_us: f64,
    /// Per-bucket observation counts (excluding the `+Inf` overflow, whose
    /// count is `count - sum(buckets)`).
    pub buckets: Vec<BucketCount>,
    /// Last trace id observed per bucket, for buckets that saw a traced
    /// observation. Absent (and omitted from the wire — PR 3-era
    /// snapshots stay byte-identical) when nothing was traced.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exemplars: Option<Vec<ExemplarSnapshot>>,
}

/// The last traced observation one histogram bucket saw.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExemplarSnapshot {
    /// Upper bound of the bucket, microseconds (`u64::MAX` for `+Inf`).
    pub le_us: u64,
    /// The trace id, 16 lowercase hex digits.
    pub trace_id: String,
    /// The observed value that stamped the exemplar, microseconds.
    pub value_us: u64,
}

/// Serializable point-in-time value of one [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// The registered metric name.
    pub name: String,
    /// The tally.
    pub value: u64,
}

/// Serializable point-in-time value of one [`Gauge`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// The registered metric name.
    pub name: String,
    /// The value.
    pub value: i64,
}

/// How many recent samples a [`Reservoir`] keeps.
pub const RESERVOIR_WINDOW: usize = 1024;

/// A fixed-size ring of recent microsecond samples with *exact*
/// nearest-rank percentiles over the window — the serving layer's
/// service-time view, where bucket quantization would move the pinned
/// `p50_ms`/`p99_ms` wire fields.
#[derive(Debug, Default)]
pub struct Reservoir {
    ring: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    samples_us: Vec<u64>,
    next: usize,
}

impl Reservoir {
    /// An empty reservoir.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        // A panicking recorder leaves the ring structurally intact (at
        // worst one stale slot), so recover rather than wedge stats.
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.samples_us.len() < RESERVOIR_WINDOW {
            ring.samples_us.push(us);
        } else {
            let slot = ring.next;
            ring.samples_us[slot] = us;
        }
        ring.next = (ring.next + 1) % RESERVOIR_WINDOW;
    }

    /// Nearest-rank percentiles over the current window, in milliseconds,
    /// for each requested quantile. An empty window reports zeros.
    #[must_use]
    pub fn percentiles_ms(&self, quantiles: &[f64]) -> Vec<f64> {
        let mut samples = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .samples_us
            .clone();
        samples.sort_unstable();
        quantiles
            .iter()
            .map(|&q| {
                if samples.is_empty() {
                    0.0
                } else {
                    let idx = ((samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                    samples[idx] as f64 / 1000.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_tally() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        let gauge = Gauge::new();
        gauge.set(7);
        gauge.add(-3);
        assert_eq!(gauge.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let hist = Histogram::new();
        for ms in 1..=100u64 {
            hist.record(Duration::from_millis(ms));
        }
        let snap = hist.snapshot("t");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_us, (1..=100u64).sum::<u64>() * 1000);
        // Bucketed estimates: right order of magnitude, ordered.
        assert!(
            snap.p50_us >= 20_000.0 && snap.p50_us <= 100_000.0,
            "{snap:?}"
        );
        assert!(snap.p50_us <= snap.p90_us && snap.p90_us <= snap.p99_us);
        let bucketed: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucketed, 100, "nothing in the overflow bucket");
    }

    #[test]
    fn histogram_overflow_lands_in_inf_bucket() {
        let hist = Histogram::new();
        hist.record(Duration::from_secs(3600));
        let snap = hist.snapshot("t");
        assert_eq!(snap.count, 1);
        let finite: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(finite, 0, "the observation exceeds every finite bound");
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let snap = Histogram::new().snapshot("t");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_us, 0.0);
        assert_eq!(snap.p99_us, 0.0);
    }

    #[test]
    fn reservoir_is_exact_over_the_window() {
        let reservoir = Reservoir::new();
        for ms in 1..=100u64 {
            reservoir.record(Duration::from_millis(ms));
        }
        let p = reservoir.percentiles_ms(&[0.50, 0.99]);
        assert!((p[0] - 50.0).abs() <= 1.5, "p50 {}", p[0]);
        assert!((p[1] - 99.0).abs() <= 1.5, "p99 {}", p[1]);
    }

    #[test]
    fn reservoir_overwrites_oldest() {
        let reservoir = Reservoir::new();
        for _ in 0..RESERVOIR_WINDOW {
            reservoir.record(Duration::from_millis(500));
        }
        for _ in 0..RESERVOIR_WINDOW {
            reservoir.record(Duration::from_millis(1));
        }
        let p = reservoir.percentiles_ms(&[0.99]);
        assert!(p[0] < 10.0, "p99 {}", p[0]);
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let hist = Histogram::new();
        hist.record(Duration::from_micros(1234));
        let snap = hist.snapshot("round.trip");
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn untraced_snapshots_omit_exemplars_from_the_wire() {
        let hist = Histogram::new();
        hist.record(Duration::from_micros(42));
        let snap = hist.snapshot("plain");
        assert!(snap.exemplars.is_none());
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            !json.contains("exemplar"),
            "PR 3-era snapshot bytes must be unchanged: {json}"
        );
        // And a PR 3-era snapshot (no field at all) still parses.
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn traced_observations_stamp_bucket_exemplars() {
        let hist = Histogram::new();
        hist.record_us_traced(15, 0xdead_beef);
        hist.record_us_traced(15, 0xfeed_face); // same bucket: last wins
        hist.record_us(120); // untraced: no exemplar for this bucket
        let snap = hist.snapshot("traced");
        let exemplars = snap.exemplars.clone().expect("exemplars present");
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].le_us, 20, "15 µs falls in the ≤20 µs bucket");
        assert_eq!(exemplars[0].trace_id, format!("{:016x}", 0xfeed_faceu64));
        assert_eq!(exemplars[0].value_us, 15);
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn poisoned_reservoir_recovers() {
        let reservoir = std::sync::Arc::new(Reservoir::new());
        let poisoner = std::sync::Arc::clone(&reservoir);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("poison the reservoir (intentional)");
        })
        .join();
        reservoir.record(Duration::from_millis(5));
        let p = reservoir.percentiles_ms(&[0.5]);
        assert!((p[0] - 5.0).abs() < 0.5, "p50 {}", p[0]);
    }
}
