//! Well-known metric names shared across crates.
//!
//! The registry is stringly keyed on purpose — subsystems mint names
//! freely — but a few names form cross-crate contracts: the fault layer
//! increments them, the serving layer exposes them, and the chaos suite
//! asserts on them. Those live here so a rename cannot silently split a
//! metric in two.

/// Total injected faults (process-global; per-kind counters append
/// `.<kind>`, e.g. `faults.injected.conn_reset`).
pub const FAULTS_INJECTED: &str = "faults.injected";

/// Retries performed by `RetryingClient` (process-global).
pub const CLIENT_RETRIES: &str = "client.retries";

/// Idempotent-replay hits served from the server's dedup map (per-server
/// private registry).
pub const SERVE_DEDUP_HITS: &str = "serve.dedup_hits";

/// The retrying client's logical-call root span: one per `call`, parent
/// of every attempt. The chaos suite asserts trace trees hang off it.
pub const CLIENT_CALL: &str = "client.call";

/// One client attempt span (per connect-send-receive try); retries show
/// up as siblings under [`CLIENT_CALL`].
pub const CLIENT_ATTEMPT: &str = "client.attempt";

/// Queue-wait phase of one served request (private stats histogram; also
/// the trace-tree span name for the same phase).
pub const SERVE_QUEUE_WAIT: &str = "serve.queue_wait";

/// Execution phase of one served request (private stats histogram; also
/// the trace-tree span name for the same phase).
pub const SERVE_EXECUTE: &str = "serve.execute";

/// Dedup-map lookup/claim span of one served request.
pub const SERVE_DEDUP: &str = "serve.dedup";

/// Write-back span: committing a finished response to the dedup map.
pub const SERVE_WRITEBACK: &str = "serve.writeback";

/// One spreadsheet recompute wave triggered by a served `sheet_edit`
/// (span name in the trace tree; histogram in the server's registry).
pub const SHEET_RECOMPUTE: &str = "sheet.recompute";

/// Cells whose recomputed value was bit-equal to the old one during
/// served sheet recomputes — propagation stopped there (value cutoff).
pub const SHEET_CELLS_CUT: &str = "sheet.cells_cut";

/// One served `ingest` batch: append + window fold, end to end
/// (histogram in the server's registry, exemplar-stamped).
pub const SERVE_INGEST: &str = "serve.ingest";

/// Telemetry points accepted by served `ingest` batches.
pub const SERVE_INGEST_POINTS: &str = "serve.ingest_points";

/// Deficit-alert edges emitted by the served ingest pipeline.
pub const SERVE_INGEST_ALERTS: &str = "serve.ingest_alerts";

/// Flight-recorder event prefix of a live deficit alert
/// (`ingest.deficit.vehicle.<id>`); the event links the trace context of
/// the batch that crossed the edge — the alert's exemplar.
pub const INGEST_DEFICIT_EVENT: &str = "ingest.deficit";

/// Flight-recorder event prefix of an SLO state transition
/// (`slo.transition.<objective>.<from>_to_<to>[.trace.<exemplar>]`);
/// CI greps dumps for it to prove alerting fired.
pub const SLO_TRANSITION_EVENT: &str = "slo.transition";

/// Append phase of one durable ingest batch (encode + write); a real
/// span so the sampling profiler can attribute wall time to it.
pub const INGEST_APPEND: &str = "ingest.append";

/// Fsync phase of one durable ingest batch; a real span so blocked-on-
/// disk time shows up in the profiler's flame-table.
pub const INGEST_FSYNC: &str = "ingest.fsync";

/// Telemetry points streamed at a server by the fleet workload generator
/// (process-global; the fleet-smoke CI job asserts it moves).
pub const FLEET_STREAMED: &str = "fleet.streamed";

/// One vehicle's end-to-end fleet run (stream + evaluate) — span name in
/// the trace tree, so per-vehicle wall time shows up in dumps.
pub const FLEET_VEHICLE: &str = "fleet.vehicle";

/// Energy-ledger builds whose float-layer replay was NOT bit-identical
/// to the aggregate `point()` figure (process-global). CI asserts this
/// stays zero across the chaos matrix and the golden fleet run.
pub const LEDGER_CONSERVATION_VIOLATIONS: &str = "ledger.conservation_violations";

/// Flight-recorder event dropped alongside each conservation violation;
/// carries the active trace id as its exemplar.
pub const LEDGER_VIOLATION_EVENT: &str = "ledger.conservation.violation";

/// Per-block attribution gauge prefix
/// (`energy.block.<name>.{dynamic,static}_nj`), refreshed from the most
/// recent ledger on every stats snapshot so the series store charts any
/// block's share over time.
pub const ENERGY_BLOCK_PREFIX: &str = "energy.block";

/// Deficit-alert attribution counter prefix
/// (`ingest.deficit.block.<name>`, process-global): which ledger block
/// dominated the implied operating point of an alerting vehicle.
pub const INGEST_DEFICIT_BLOCK_PREFIX: &str = "ingest.deficit.block";

/// Connect-send-receive attempts the retrying client made, including
/// first tries (process-global; `client.retries` counts only re-tries).
pub const CLIENT_ATTEMPTS: &str = "client.attempts";

/// Backoff the retrying client actually slept, milliseconds
/// (process-global histogram; one sample per retry).
pub const CLIENT_BACKOFF_MS: &str = "client.backoff_ms";

/// Failed client attempts by error class
/// (`client.errors.{transport,protocol,server}`, process-global).
pub const CLIENT_ERRORS_PREFIX: &str = "client.errors";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_prometheus_safe() {
        let all = [
            FAULTS_INJECTED,
            CLIENT_RETRIES,
            SERVE_DEDUP_HITS,
            CLIENT_CALL,
            CLIENT_ATTEMPT,
            SERVE_QUEUE_WAIT,
            SERVE_EXECUTE,
            SERVE_DEDUP,
            SERVE_WRITEBACK,
            SHEET_RECOMPUTE,
            SHEET_CELLS_CUT,
            SERVE_INGEST,
            SERVE_INGEST_POINTS,
            SERVE_INGEST_ALERTS,
            INGEST_DEFICIT_EVENT,
            SLO_TRANSITION_EVENT,
            INGEST_APPEND,
            INGEST_FSYNC,
            FLEET_STREAMED,
            FLEET_VEHICLE,
            LEDGER_CONSERVATION_VIOLATIONS,
            LEDGER_VIOLATION_EVENT,
            ENERGY_BLOCK_PREFIX,
            INGEST_DEFICIT_BLOCK_PREFIX,
            CLIENT_ATTEMPTS,
            CLIENT_BACKOFF_MS,
            CLIENT_ERRORS_PREFIX,
        ];
        for (i, name) in all.iter().enumerate() {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'));
            assert!(!all[..i].contains(name), "duplicate metric name {name}");
        }
    }
}
