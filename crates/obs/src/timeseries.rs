//! Fixed-memory time-series rings with tiered downsampling.
//!
//! The registry ([`crate::Registry`]) answers "what is the value *now*";
//! this module gives the process a memory: a background self-scrape loop
//! (owned by the serving layer) feeds every counter, gauge and
//! histogram-quantile snapshot into a [`SeriesStore`], which keeps each
//! metric in a small pyramid of ring buffers — by default 1 s × 600,
//! 10 s × 360, 60 s × 360 ([`DEFAULT_TIERS`]): ten minutes at full
//! resolution, an hour at 10 s, six hours at a minute — in a fixed
//! memory footprint per metric, forever.
//!
//! **Exactness is the design pillar.** A coarser tier's bucket is never
//! folded from raw samples directly; it is *recomputed from the finer
//! tier's buckets, in time order*, every time a sample lands. That makes
//! the downsampling invariant hold bit-for-bit by construction (and the
//! property tests pin it):
//!
//! * a **counter** bucket holds the last cumulative value sampled in its
//!   interval (`u64`, bit-identical across tiers);
//! * a **gauge** bucket holds `{count, sum, min, max, last}` of the raw
//!   samples in its interval; the coarse bucket's `sum` is the
//!   left-to-right `f64` fold of its fine constituents' sums — the exact
//!   grouping the fine tier committed to, not a re-association of raw
//!   samples.
//!
//! The sample path allocates nothing in steady state: series and rings
//! are allocated on first sight of a metric name, after which a sample is
//! a hash lookup plus O(sum of tier ratios) slot writes. (Building the
//! `RegistrySnapshot` that feeds [`SeriesStore::record_snapshot`] does
//! allocate — that cost sits in the scrape loop at scrape cadence, never
//! on a request path.)

use std::collections::HashMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::registry::RegistrySnapshot;

/// One downsampling tier: `slots` ring buckets of `step_us` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Bucket width, microseconds.
    pub step_us: u64,
    /// Ring capacity in buckets; the tier retains `step_us * slots` of
    /// history.
    pub slots: usize,
}

/// The default pyramid: 1 s × 600 → 10 s × 360 → 60 s × 360.
pub const DEFAULT_TIERS: [TierSpec; 3] = [
    TierSpec {
        step_us: 1_000_000,
        slots: 600,
    },
    TierSpec {
        step_us: 10_000_000,
        slots: 360,
    },
    TierSpec {
        step_us: 60_000_000,
        slots: 360,
    },
];

/// What a series measures, fixed at first sight of the metric name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone cumulative tally; buckets keep the last sampled value.
    Counter,
    /// An instantaneous value; buckets keep `{count, sum, min, max, last}`.
    Gauge,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One raw observation entering the store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// A cumulative counter reading.
    Counter(u64),
    /// An instantaneous gauge reading.
    Gauge(f64),
}

/// Sentinel for "this ring slot holds no bucket".
const EMPTY: u64 = u64::MAX;

/// One ring slot. `bucket` is the absolute bucket index (`ts / step`);
/// a slot whose stored index differs from the index a reader derived has
/// been overwritten by a newer wrap and reads as absent.
#[derive(Debug, Clone, Copy)]
struct Slot {
    bucket: u64,
    /// Counter series: last cumulative value sampled in the interval.
    counter: u64,
    /// Gauge series: raw samples folded into the interval.
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl Slot {
    const fn empty() -> Self {
        Self {
            bucket: EMPTY,
            counter: 0,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            last: 0.0,
        }
    }

    fn fresh(bucket: u64) -> Self {
        Self {
            bucket,
            ..Self::empty()
        }
    }
}

#[derive(Debug)]
struct TierRing {
    spec: TierSpec,
    slots: Box<[Slot]>,
}

impl TierRing {
    fn new(spec: TierSpec) -> Self {
        Self {
            spec,
            slots: vec![Slot::empty(); spec.slots].into_boxed_slice(),
        }
    }

    fn index(&self, bucket: u64) -> usize {
        (bucket % self.spec.slots as u64) as usize
    }

    /// The slot for `bucket`, reset if it still holds an older wrap.
    fn slot_for(&mut self, bucket: u64) -> &mut Slot {
        let idx = self.index(bucket);
        let slot = &mut self.slots[idx];
        if slot.bucket != bucket {
            *slot = Slot::fresh(bucket);
        }
        slot
    }

    /// The slot for `bucket` if the ring still holds it.
    fn get(&self, bucket: u64) -> Option<&Slot> {
        let slot = &self.slots[self.index(bucket)];
        (slot.bucket == bucket).then_some(slot)
    }
}

#[derive(Debug)]
struct MetricSeries {
    kind: SeriesKind,
    tiers: Vec<TierRing>,
}

impl MetricSeries {
    fn new(kind: SeriesKind, specs: &[TierSpec]) -> Self {
        Self {
            kind,
            tiers: specs.iter().map(|&spec| TierRing::new(spec)).collect(),
        }
    }

    fn record(&mut self, now_us: u64, value: SampleValue) {
        let kind = self.kind;
        // Tier 0 folds the raw sample.
        {
            let tier = &mut self.tiers[0];
            let bucket = now_us / tier.spec.step_us;
            let slot = tier.slot_for(bucket);
            match value {
                SampleValue::Counter(v) => slot.counter = v,
                SampleValue::Gauge(v) => {
                    if slot.count == 0 {
                        slot.sum = v;
                        slot.min = v;
                        slot.max = v;
                    } else {
                        slot.sum += v;
                        slot.min = slot.min.min(v);
                        slot.max = slot.max.max(v);
                    }
                    slot.count += 1;
                    slot.last = v;
                }
            }
        }
        // Every coarser tier recomputes its current bucket from the finer
        // tier's buckets, in ascending time order — the exact-aggregation
        // invariant the property tests pin.
        for k in 1..self.tiers.len() {
            let (fine_part, coarse_part) = self.tiers.split_at_mut(k);
            let fine = &fine_part[k - 1];
            let coarse = &mut coarse_part[0];
            let bucket = now_us / coarse.spec.step_us;
            let ratio = coarse.spec.step_us / fine.spec.step_us;
            let first = bucket * ratio;
            let mut agg = Slot::fresh(bucket);
            let mut any = false;
            for fb in first..first + ratio {
                let Some(f) = fine.get(fb) else { continue };
                match kind {
                    SeriesKind::Counter => agg.counter = f.counter,
                    SeriesKind::Gauge => {
                        if any {
                            agg.count += f.count;
                            agg.sum += f.sum;
                            agg.min = agg.min.min(f.min);
                            agg.max = agg.max.max(f.max);
                        } else {
                            agg.count = f.count;
                            agg.sum = f.sum;
                            agg.min = f.min;
                            agg.max = f.max;
                        }
                        agg.last = f.last;
                    }
                }
                any = true;
            }
            if any {
                *coarse.slot_for(bucket) = agg;
            }
        }
    }
}

/// The gauge aggregate of one returned bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Raw samples folded into the bucket.
    pub count: u64,
    /// Left-to-right `f64` sum of the samples (bit-stable across tiers).
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Most recent sample.
    pub last: f64,
}

/// One timestamped bucket of a queried series. Exactly one of `counter`
/// and `gauge` is present, matching the series kind.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Bucket start, microseconds since the process span epoch.
    pub ts_us: u64,
    /// Counter series: the exact cumulative value (bit-identical `u64`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub counter: Option<u64>,
    /// Gauge series: the bucket's aggregate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gauge: Option<GaugePoint>,
}

/// The answer to one series query: the chosen tier and its buckets in
/// ascending time order (absent buckets are skipped, not zero-filled).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesSlice {
    /// The queried metric name.
    pub metric: String,
    /// `"counter"` or `"gauge"`.
    pub kind: String,
    /// Bucket width of the tier that answered, microseconds.
    pub step_us: u64,
    /// The buckets, oldest first.
    pub points: Vec<SeriesPoint>,
}

#[derive(Debug, Default)]
struct Inner {
    series: HashMap<String, MetricSeries>,
    /// Reusable key buffer for derived histogram series names, so the
    /// steady-state sample path composes `<hist>.p99_us`-style lookups
    /// without allocating.
    scratch: String,
}

/// Fixed-memory multi-tier time-series storage for one process.
///
/// Thread-safe behind one mutex: the scrape loop writes at scrape
/// cadence, the `series` wire op reads on demand — neither sits on a
/// request hot path.
#[derive(Debug)]
pub struct SeriesStore {
    tiers: Vec<TierSpec>,
    inner: Mutex<Inner>,
}

impl Default for SeriesStore {
    fn default() -> Self {
        Self::new(&DEFAULT_TIERS)
    }
}

impl SeriesStore {
    /// A store over the given tier pyramid.
    ///
    /// # Panics
    ///
    /// Panics unless tiers are in ascending step order, each step is an
    /// integer multiple of the previous, and each fine ring is large
    /// enough to hold every constituent of one coarse bucket (ratio ≤
    /// fine slot count) — the structural preconditions of exact
    /// recomputation.
    #[must_use]
    pub fn new(tiers: &[TierSpec]) -> Self {
        assert!(!tiers.is_empty(), "a series store needs at least one tier");
        for tier in tiers {
            assert!(tier.step_us > 0 && tier.slots > 0, "degenerate tier");
        }
        for pair in tiers.windows(2) {
            let (fine, coarse) = (pair[0], pair[1]);
            assert!(
                coarse.step_us > fine.step_us && coarse.step_us % fine.step_us == 0,
                "tier steps must be ascending integer multiples"
            );
            let ratio = coarse.step_us / fine.step_us;
            assert!(
                ratio <= fine.slots as u64,
                "fine ring ({} slots) cannot hold one coarse bucket ({ratio} constituents)",
                fine.slots
            );
        }
        Self {
            tiers: tiers.to_vec(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured tier pyramid.
    #[must_use]
    pub fn tiers(&self) -> &[TierSpec] {
        &self.tiers
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one named observation at `now_us`. A name's kind is fixed
    /// on first sight; a later sample of the other kind is dropped
    /// (registry kind conflicts already panic upstream, so this guards
    /// only derived-name collisions).
    pub fn record(&self, now_us: u64, metric: &str, value: SampleValue) {
        let mut inner = self.lock();
        Self::record_locked(&mut inner, &self.tiers, now_us, metric, value);
    }

    fn record_locked(
        inner: &mut Inner,
        tiers: &[TierSpec],
        now_us: u64,
        metric: &str,
        value: SampleValue,
    ) {
        let kind = match value {
            SampleValue::Counter(_) => SeriesKind::Counter,
            SampleValue::Gauge(_) => SeriesKind::Gauge,
        };
        if let Some(series) = inner.series.get_mut(metric) {
            if series.kind == kind {
                series.record(now_us, value);
            }
            return;
        }
        let mut series = MetricSeries::new(kind, tiers);
        series.record(now_us, value);
        inner.series.insert(metric.to_owned(), series);
    }

    /// Records every metric of one registry snapshot: counters and gauges
    /// under their own names; each histogram as five derived series —
    /// `<name>.p50_us` / `.p90_us` / `.p99_us` quantile gauges plus
    /// `<name>.count` / `.sum_us` cumulative counters.
    pub fn record_snapshot(&self, now_us: u64, snapshot: &RegistrySnapshot) {
        let mut inner = self.lock();
        for c in &snapshot.counters {
            Self::record_locked(
                &mut inner,
                &self.tiers,
                now_us,
                &c.name,
                SampleValue::Counter(c.value),
            );
        }
        for g in &snapshot.gauges {
            #[allow(clippy::cast_precision_loss)]
            Self::record_locked(
                &mut inner,
                &self.tiers,
                now_us,
                &g.name,
                SampleValue::Gauge(g.value as f64),
            );
        }
        for h in &snapshot.histograms {
            let quantiles = [
                (".p50_us", h.p50_us),
                (".p90_us", h.p90_us),
                (".p99_us", h.p99_us),
            ];
            for (suffix, value) in quantiles {
                let mut scratch = std::mem::take(&mut inner.scratch);
                scratch.clear();
                scratch.push_str(&h.name);
                scratch.push_str(suffix);
                Self::record_locked(
                    &mut inner,
                    &self.tiers,
                    now_us,
                    &scratch,
                    SampleValue::Gauge(value),
                );
                inner.scratch = scratch;
            }
            let counters = [(".count", h.count), (".sum_us", h.sum_us)];
            for (suffix, value) in counters {
                let mut scratch = std::mem::take(&mut inner.scratch);
                scratch.clear();
                scratch.push_str(&h.name);
                scratch.push_str(suffix);
                Self::record_locked(
                    &mut inner,
                    &self.tiers,
                    now_us,
                    &scratch,
                    SampleValue::Counter(value),
                );
                inner.scratch = scratch;
            }
        }
    }

    /// Every stored series name, sorted (for CLI discoverability and
    /// error messages).
    #[must_use]
    pub fn metric_names(&self) -> Vec<String> {
        let inner = self.lock();
        let mut names: Vec<String> = inner.series.keys().cloned().collect();
        names.sort();
        names
    }

    /// Queries one metric: `step_us` picks the tier (the finest whose
    /// step is ≥ the request; `None` defers to `range_us`, which picks
    /// the finest tier that retains the whole range), `range_us` bounds
    /// how far back from `now_us` buckets are returned (`None` = the
    /// tier's full retention). Returns `None` for a name never sampled.
    #[must_use]
    pub fn query(
        &self,
        metric: &str,
        step_us: Option<u64>,
        range_us: Option<u64>,
        now_us: u64,
    ) -> Option<SeriesSlice> {
        let inner = self.lock();
        let series = inner.series.get(metric)?;
        let tier_idx = match (step_us, range_us) {
            (Some(step), _) => series
                .tiers
                .iter()
                .position(|t| t.spec.step_us >= step)
                .unwrap_or(series.tiers.len() - 1),
            (None, Some(range)) => series
                .tiers
                .iter()
                .position(|t| t.spec.step_us.saturating_mul(t.spec.slots as u64) >= range)
                .unwrap_or(series.tiers.len() - 1),
            (None, None) => 0,
        };
        let tier = &series.tiers[tier_idx];
        let step = tier.spec.step_us;
        let retention = step.saturating_mul(tier.spec.slots as u64);
        let range = range_us.unwrap_or(retention).min(retention);
        let end = now_us / step;
        let start = now_us.saturating_sub(range) / step;
        let mut points = Vec::new();
        for bucket in start..=end {
            let Some(slot) = tier.get(bucket) else {
                continue;
            };
            points.push(match series.kind {
                SeriesKind::Counter => SeriesPoint {
                    ts_us: bucket * step,
                    counter: Some(slot.counter),
                    gauge: None,
                },
                SeriesKind::Gauge => SeriesPoint {
                    ts_us: bucket * step,
                    counter: None,
                    gauge: Some(GaugePoint {
                        count: slot.count,
                        sum: slot.sum,
                        min: slot.min,
                        max: slot.max,
                        last: slot.last,
                    }),
                },
            });
        }
        Some(SeriesSlice {
            metric: metric.to_owned(),
            kind: series.kind.as_str().to_owned(),
            step_us: step,
            points,
        })
    }
}

/// Parses a human resolution/range spec into microseconds: `250ms`,
/// `10s`, `5m`, `1h`, or a bare number of seconds.
#[must_use]
pub fn parse_duration_us(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(s) = t.strip_suffix("ms") {
        return s
            .trim()
            .parse::<u64>()
            .ok()
            .map(|v| v.saturating_mul(1_000));
    }
    if let Some(s) = t.strip_suffix('h') {
        return s
            .trim()
            .parse::<u64>()
            .ok()
            .map(|v| v.saturating_mul(3_600_000_000));
    }
    if let Some(s) = t.strip_suffix('m') {
        return s
            .trim()
            .parse::<u64>()
            .ok()
            .map(|v| v.saturating_mul(60_000_000));
    }
    let s = t.strip_suffix('s').unwrap_or(t);
    s.trim()
        .parse::<u64>()
        .ok()
        .map(|v| v.saturating_mul(1_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small pyramid for fast tests: 10 µs × 20 → 100 µs × 12 → 600 µs × 8.
    fn tiny() -> SeriesStore {
        SeriesStore::new(&[
            TierSpec {
                step_us: 10,
                slots: 20,
            },
            TierSpec {
                step_us: 100,
                slots: 12,
            },
            TierSpec {
                step_us: 600,
                slots: 8,
            },
        ])
    }

    #[test]
    fn counter_buckets_keep_the_last_value_across_tiers() {
        let store = tiny();
        for (ts, v) in [(5, 1u64), (18, 3), (25, 4), (95, 9)] {
            store.record(ts, "c", SampleValue::Counter(v));
        }
        let fine = store.query("c", Some(10), None, 95).unwrap();
        assert_eq!(fine.kind, "counter");
        assert_eq!(fine.step_us, 10);
        let vals: Vec<(u64, u64)> = fine
            .points
            .iter()
            .map(|p| (p.ts_us, p.counter.unwrap()))
            .collect();
        assert_eq!(vals, vec![(0, 1), (10, 3), (20, 4), (90, 9)]);
        // The 100 µs bucket holds the last fine constituent, bit-identical.
        let mid = store.query("c", Some(100), None, 95).unwrap();
        assert_eq!(mid.points.len(), 1);
        assert_eq!(mid.points[0].counter, Some(9));
    }

    #[test]
    fn gauge_coarse_bucket_is_the_exact_fold_of_fine_buckets() {
        let store = tiny();
        let samples = [(2u64, 0.1f64), (7, 0.3), (15, -2.0), (34, 7.5), (91, 0.25)];
        for (ts, v) in samples {
            store.record(ts, "g", SampleValue::Gauge(v));
        }
        let fine = store.query("g", Some(10), None, 91).unwrap();
        let mid = store.query("g", Some(100), None, 91).unwrap();
        assert_eq!(mid.points.len(), 1);
        let coarse = mid.points[0].gauge.unwrap();
        // Fold the fine buckets the way the store must have.
        let mut expect: Option<GaugePoint> = None;
        for p in &fine.points {
            let g = p.gauge.unwrap();
            expect = Some(match expect {
                None => g,
                Some(e) => GaugePoint {
                    count: e.count + g.count,
                    sum: e.sum + g.sum,
                    min: e.min.min(g.min),
                    max: e.max.max(g.max),
                    last: g.last,
                },
            });
        }
        let expect = expect.unwrap();
        assert_eq!(coarse.count, 5);
        assert_eq!(coarse.sum.to_bits(), expect.sum.to_bits(), "bit-stable sum");
        assert_eq!(coarse.min, -2.0);
        assert_eq!(coarse.max, 7.5);
        assert_eq!(coarse.last, 0.25);
    }

    #[test]
    fn rings_wrap_and_old_buckets_vanish() {
        let store = tiny();
        // Fine tier: 20 slots of 10 µs → 200 µs retention.
        for i in 0..40u64 {
            store.record(i * 10, "w", SampleValue::Counter(i));
        }
        let fine = store.query("w", Some(10), None, 390).unwrap();
        assert_eq!(fine.points.len(), 20, "only the last wrap survives");
        assert_eq!(fine.points.first().unwrap().ts_us, 200);
        assert_eq!(fine.points.last().unwrap().counter, Some(39));
    }

    #[test]
    fn range_and_resolution_select_tiers() {
        let store = tiny();
        for i in 0..100u64 {
            store.record(i * 10, "t", SampleValue::Counter(i));
        }
        // A range beyond the fine tier's 200 µs retention climbs tiers.
        let q = store.query("t", None, Some(1_000), 990).unwrap();
        assert_eq!(q.step_us, 100);
        // An explicit step is honoured.
        let q = store.query("t", Some(600), None, 990).unwrap();
        assert_eq!(q.step_us, 600);
        // A bounded range trims the fine answer.
        let q = store.query("t", Some(10), Some(50), 990).unwrap();
        assert!(q.points.len() <= 6, "{}", q.points.len());
        assert!(q.points.iter().all(|p| p.ts_us >= 940));
    }

    #[test]
    fn snapshot_feed_derives_histogram_series() {
        let registry = crate::Registry::new();
        registry.counter("unit.count").add(3);
        registry.gauge("unit.depth").set(-4);
        registry
            .histogram("unit.lat")
            .record(std::time::Duration::from_micros(500));
        let store = SeriesStore::default();
        store.record_snapshot(1_000_000, &registry.snapshot());
        let names = store.metric_names();
        for expect in [
            "unit.count",
            "unit.depth",
            "unit.lat.p50_us",
            "unit.lat.p99_us",
            "unit.lat.count",
            "unit.lat.sum_us",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        let depth = store.query("unit.depth", None, None, 1_000_000).unwrap();
        assert_eq!(depth.points[0].gauge.unwrap().last, -4.0);
        let count = store
            .query("unit.lat.count", None, None, 1_000_000)
            .unwrap();
        assert_eq!(count.points[0].counter, Some(1));
    }

    #[test]
    fn unknown_metric_queries_return_none() {
        assert!(tiny().query("nope", None, None, 0).is_none());
    }

    #[test]
    fn kind_conflicts_drop_the_later_sample() {
        let store = tiny();
        store.record(5, "k", SampleValue::Counter(1));
        store.record(6, "k", SampleValue::Gauge(9.0));
        let q = store.query("k", None, None, 10).unwrap();
        assert_eq!(q.kind, "counter");
        assert_eq!(q.points[0].counter, Some(1));
    }

    #[test]
    fn slices_round_trip_through_json() {
        let store = tiny();
        store.record(5, "rt.c", SampleValue::Counter(7));
        store.record(5, "rt.g", SampleValue::Gauge(1.25));
        for name in ["rt.c", "rt.g"] {
            let slice = store.query(name, None, None, 10).unwrap();
            let json = serde_json::to_string(&slice).unwrap();
            let back: SeriesSlice = serde_json::from_str(&json).unwrap();
            assert_eq!(back, slice);
        }
    }

    #[test]
    fn duration_specs_parse() {
        assert_eq!(parse_duration_us("250ms"), Some(250_000));
        assert_eq!(parse_duration_us("10s"), Some(10_000_000));
        assert_eq!(parse_duration_us("5m"), Some(300_000_000));
        assert_eq!(parse_duration_us("1h"), Some(3_600_000_000));
        assert_eq!(parse_duration_us("42"), Some(42_000_000));
        assert_eq!(parse_duration_us("fast"), None);
    }

    #[test]
    #[should_panic(expected = "ascending integer multiples")]
    fn misordered_tiers_are_rejected() {
        let _ = SeriesStore::new(&[
            TierSpec {
                step_us: 100,
                slots: 10,
            },
            TierSpec {
                step_us: 150,
                slots: 10,
            },
        ]);
    }
}
