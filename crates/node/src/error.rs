//! Error type for architecture construction.

use std::error::Error;
use std::fmt;

use monityre_power::PowerError;

/// Errors raised while assembling a Sensor Node architecture.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeError {
    /// A round schedule was malformed.
    InvalidSchedule {
        /// What was wrong.
        reason: String,
    },
    /// A block plan referenced a name missing from the power database, or
    /// vice versa.
    UnknownBlock {
        /// The offending block name.
        name: String,
    },
    /// An underlying power-database operation failed.
    Power(PowerError),
}

impl NodeError {
    pub(crate) fn invalid_schedule(reason: &str) -> Self {
        Self::InvalidSchedule {
            reason: reason.to_owned(),
        }
    }

    pub(crate) fn unknown_block(name: &str) -> Self {
        Self::UnknownBlock {
            name: name.to_owned(),
        }
    }
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSchedule { reason } => write!(f, "invalid round schedule: {reason}"),
            Self::UnknownBlock { name } => write!(f, "block `{name}` has no matching entry"),
            Self::Power(e) => write!(f, "power database error: {e}"),
        }
    }
}

impl Error for NodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PowerError> for NodeError {
    fn from(e: PowerError) -> Self {
        Self::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_reason() {
        let err = NodeError::invalid_schedule("overlap");
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn wraps_power_error_with_source() {
        let err: NodeError = PowerError::UnknownBlock {
            name: "x".to_owned(),
        }
        .into();
        assert!(Error::source(&err).is_some());
    }
}
