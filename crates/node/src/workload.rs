//! Per-round event workloads.

use std::collections::BTreeMap;

use monityre_power::EventKind;
use serde::{Deserialize, Serialize};

/// The number of energy-charged events a block performs per wheel round.
///
/// Counts are `f64` so that work recurring every N rounds (a 32-byte
/// packet every 4th round) can be amortized as a fractional per-round
/// count (8 bytes/round) for the steady-state evaluation, while the
/// transient emulator uses the integral counts on the rounds where the
/// work actually happens.
///
/// ```
/// use monityre_node::Workload;
/// use monityre_power::EventKind;
///
/// let w = Workload::new()
///     .with(EventKind::Sample, 128.0)
///     .with(EventKind::WakeUp, 1.0);
/// assert_eq!(w.count(EventKind::Sample), 128.0);
/// assert_eq!(w.count(EventKind::ByteTransmitted), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    counts: BTreeMap<EventKind, f64>,
}

impl Workload {
    /// An empty workload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a per-round count.
    ///
    /// # Panics
    ///
    /// Panics if `count` is negative or non-finite.
    #[must_use]
    pub fn with(mut self, kind: EventKind, count: f64) -> Self {
        assert!(
            count.is_finite() && count >= 0.0,
            "event count must be finite and non-negative, got {count}"
        );
        self.counts.insert(kind, count);
        self
    }

    /// The per-round count for `kind` (zero when unset).
    #[must_use]
    pub fn count(&self, kind: EventKind) -> f64 {
        self.counts.get(&kind).copied().unwrap_or(0.0)
    }

    /// Iterates over the non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, f64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether no events are charged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Returns a copy with every count scaled by `factor` (configuration
    /// sweeps: double the samples, halve the payload…).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "workload scale factor must be finite and non-negative, got {factor}"
        );
        Self {
            counts: self.counts.iter().map(|(&k, &v)| (k, v * factor)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_kind_counts_zero() {
        let w = Workload::new();
        assert_eq!(w.count(EventKind::Sample), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn with_replaces() {
        let w = Workload::new()
            .with(EventKind::Sample, 64.0)
            .with(EventKind::Sample, 128.0);
        assert_eq!(w.count(EventKind::Sample), 128.0);
    }

    #[test]
    fn fractional_amortized_counts_allowed() {
        let w = Workload::new().with(EventKind::ByteTransmitted, 8.5);
        assert_eq!(w.count(EventKind::ByteTransmitted), 8.5);
    }

    #[test]
    fn scaled_multiplies_all() {
        let w = Workload::new()
            .with(EventKind::Sample, 100.0)
            .with(EventKind::MemoryWrite, 10.0)
            .scaled(0.5);
        assert_eq!(w.count(EventKind::Sample), 50.0);
        assert_eq!(w.count(EventKind::MemoryWrite), 5.0);
    }

    #[test]
    fn iter_yields_sorted_entries() {
        let w = Workload::new()
            .with(EventKind::WakeUp, 1.0)
            .with(EventKind::Sample, 2.0);
        let kinds: Vec<_> = w.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec![EventKind::Sample, EventKind::WakeUp]);
    }

    #[test]
    #[should_panic(expected = "event count must be finite")]
    fn rejects_negative_count() {
        let _ = Workload::new().with(EventKind::Sample, -1.0);
    }
}
