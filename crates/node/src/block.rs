//! Canonical functional blocks of the Sensor Node.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The functional blocks of the in-tyre Sensor Node.
///
/// The set follows §I of the paper (acquisition, computing, wireless
/// communication) plus the memory and always-on power-management blocks any
/// real implementation carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlockKind {
    /// Analog sensing front-end (accelerometer/pressure signal chain).
    AnalogFrontEnd,
    /// Analog-to-digital converter.
    Adc,
    /// Data computing system (DSP/MCU core).
    Dsp,
    /// Working memory (SRAM with retention).
    Sram,
    /// Wireless transmitter (the 2.4 GHz / UHF uplink to the junction box).
    Radio,
    /// Always-on power management: wake-up timer, POR, rail control.
    PowerManagement,
}

impl BlockKind {
    /// All blocks in canonical order.
    pub const ALL: [Self; 6] = [
        Self::AnalogFrontEnd,
        Self::Adc,
        Self::Dsp,
        Self::Sram,
        Self::Radio,
        Self::PowerManagement,
    ];

    /// The canonical database name of this block.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::AnalogFrontEnd => "afe",
            Self::Adc => "adc",
            Self::Dsp => "dsp",
            Self::Sram => "sram",
            Self::Radio => "radio",
            Self::PowerManagement => "pm",
        }
    }

    /// Parses the canonical name produced by [`BlockKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Whether this block belongs to the always-on power domain (it can
    /// never be power-gated, it is what wakes everything else up).
    #[must_use]
    pub fn is_always_on(self) -> bool {
        matches!(self, Self::PowerManagement)
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in BlockKind::ALL {
            assert_eq!(BlockKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BlockKind::from_name("gpu"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BlockKind::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BlockKind::ALL.len());
    }

    #[test]
    fn only_pm_is_always_on() {
        let always_on: Vec<_> = BlockKind::ALL
            .into_iter()
            .filter(|b| b.is_always_on())
            .collect();
        assert_eq!(always_on, vec![BlockKind::PowerManagement]);
    }

    #[test]
    fn covers_the_papers_minimum_architecture() {
        // §I: acquisition, computing, wireless communication.
        assert!(BlockKind::ALL.contains(&BlockKind::Adc));
        assert!(BlockKind::ALL.contains(&BlockKind::Dsp));
        assert!(BlockKind::ALL.contains(&BlockKind::Radio));
    }
}
