//! The assembled Sensor Node architecture.

use std::collections::BTreeMap;
use std::fmt;

use monityre_power::{
    BlockPowerModel, DynamicPowerModel, EventCost, EventKind, GridAxis, LeakageModel, ModePolicy,
    OperatingMode, PowerDatabase, PowerGrid, Provenance,
};
use monityre_units::{Capacitance, Energy, Frequency, Power};
use serde::{Deserialize, Serialize};

use crate::{NodeConfig, NodeError, PhaseSpec, RoundSchedule, Span, Workload};

/// A block's behavioural plan: its duty-cycle schedule within the wheel
/// round and the event workload it performs per round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPlan {
    schedule: RoundSchedule,
    workload: Workload,
}

impl BlockPlan {
    /// Creates a plan.
    #[must_use]
    pub fn new(schedule: RoundSchedule, workload: Workload) -> Self {
        Self { schedule, workload }
    }

    /// The schedule.
    #[must_use]
    pub fn schedule(&self) -> &RoundSchedule {
        &self.schedule
    }

    /// The workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }
}

/// The complete Sensor Node: a power database plus a plan per block.
///
/// The *entry point of the flow is the definition of the architecture*
/// (§II) — this type is that entry point. It owns a consistent pair of
/// (power models, behavioural plans) keyed by block name, and the
/// [`NodeConfig`] it was generated from.
///
/// ```
/// use monityre_node::Architecture;
///
/// let arch = Architecture::reference();
/// let names: Vec<_> = arch.block_names().collect();
/// assert!(names.contains(&"radio"));
/// assert!(names.contains(&"pm"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    database: PowerDatabase,
    plans: BTreeMap<String, BlockPlan>,
    config: NodeConfig,
}

impl Architecture {
    /// Starts building a custom architecture.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    #[must_use]
    pub fn builder(name: &str) -> ArchitectureBuilder {
        assert!(!name.is_empty(), "architecture name must not be empty");
        ArchitectureBuilder {
            name: name.to_owned(),
            database: PowerDatabase::new(),
            plans: BTreeMap::new(),
            config: NodeConfig::reference(),
        }
    }

    /// The calibrated reference Sensor Node (see [`NodeConfig::reference`]).
    #[must_use]
    pub fn reference() -> Self {
        Self::from_config(NodeConfig::reference())
    }

    /// Builds the Sensor Node for an arbitrary configuration.
    ///
    /// Block power figures are synthetic but calibrated to the 130 nm ULP
    /// automotive class reported for this application (µW-class blocks,
    /// mW-class radio bursts); see `DESIGN.md` for the substitution note.
    #[must_use]
    pub fn from_config(config: NodeConfig) -> Self {
        let mut builder = Self::builder("sensor-node");
        builder.config = config;

        // --- Always-on power management: wake-up timer, POR, rail control.
        builder = builder.block(
            BlockPowerModel::builder("pm")
                .analog(flat_grid(Power::from_microwatts(1.2)))
                .leakage(LeakageModel::with_reference(Power::from_nanowatts(300.0)))
                .build(),
            BlockPlan::new(
                RoundSchedule::always(OperatingMode::Active),
                Workload::new(),
            ),
        );

        // --- Analog front-end: awake for the contact-patch window.
        let afe_grid = PowerGrid::new(
            GridAxis::new(vec![1.0, 1.2]).expect("axis"),
            GridAxis::new(vec![-40.0, 27.0, 125.0]).expect("axis"),
            vec![
                vec![
                    Power::from_microwatts(60.0),
                    Power::from_microwatts(64.0),
                    Power::from_microwatts(70.0),
                ],
                vec![
                    Power::from_microwatts(75.0),
                    Power::from_microwatts(80.0),
                    Power::from_microwatts(88.0),
                ],
            ],
        )
        .expect("grid");
        builder = builder.block(
            BlockPowerModel::builder("afe")
                .analog(afe_grid)
                .leakage(LeakageModel::with_reference(Power::from_nanowatts(150.0)))
                .event_cost(EventCost::new(EventKind::WakeUp, Energy::from_nanos(30.0)))
                .build(),
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fraction(config.acquisition_fraction()),
                    )],
                    OperatingMode::Off,
                )
                .expect("afe schedule"),
                Workload::new().with(EventKind::WakeUp, 1.0),
            ),
        );

        // --- ADC: converts back-to-back inside the acquisition window.
        builder = builder.block(
            BlockPowerModel::builder("adc")
                .dynamic(DynamicPowerModel::new(
                    0.9,
                    Capacitance::from_picofarads(40.0),
                    Frequency::from_megahertz(4.0),
                ))
                .leakage(LeakageModel::with_reference(Power::from_nanowatts(800.0)))
                .event_cost(EventCost::new(EventKind::Sample, Energy::from_nanos(20.0)))
                .build(),
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fraction(config.acquisition_fraction()),
                    )],
                    OperatingMode::Off,
                )
                .expect("adc schedule"),
                Workload::new().with(EventKind::Sample, f64::from(config.samples_per_round())),
            ),
        );

        // --- DSP: one feature-extraction kernel per round. The unoptimized
        //     design merely stops the clock between kernels (full-leakage
        //     Sleep) — the advisor is what introduces gating/retention.
        builder = builder.block(
            BlockPowerModel::builder("dsp")
                .dynamic(DynamicPowerModel::new(
                    0.18,
                    Capacitance::from_picofarads(300.0),
                    config.dsp_clock(),
                ))
                .leakage(LeakageModel::with_reference(Power::from_microwatts(6.0)))
                .event_cost(EventCost::new(
                    EventKind::ComputeKernel,
                    Energy::from_nanos(200.0),
                ))
                .build(),
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fixed(config.compute_time()),
                    )],
                    OperatingMode::Sleep,
                )
                .expect("dsp schedule"),
                Workload::new().with(EventKind::ComputeKernel, 1.0),
            ),
        );

        // --- SRAM: written during acquisition, read by the kernel. The
        //     array dominates the chip's leakage; the unoptimized design
        //     keeps the full rail up between accesses.
        builder = builder.block(
            BlockPowerModel::builder("sram")
                .dynamic(DynamicPowerModel::new(
                    0.10,
                    Capacitance::from_picofarads(120.0),
                    config.dsp_clock(),
                ))
                .leakage(LeakageModel::with_reference(Power::from_microwatts(8.0)))
                .mode_policy(OperatingMode::DeepSleep, ModePolicy::new(0.0, 0.08))
                .event_cost(EventCost::new(
                    EventKind::MemoryWrite,
                    Energy::from_nanos(5.0),
                ))
                .event_cost(EventCost::new(
                    EventKind::MemoryRead,
                    Energy::from_nanos(3.0),
                ))
                .build(),
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_round(
                        OperatingMode::Active,
                        Span::Fraction(config.acquisition_fraction()),
                    )],
                    OperatingMode::Sleep,
                )
                .expect("sram schedule"),
                Workload::new()
                    .with(
                        EventKind::MemoryWrite,
                        f64::from(config.samples_per_round()),
                    )
                    .with(EventKind::MemoryRead, f64::from(config.samples_per_round())),
            ),
        );

        // --- Radio: one burst every TX period, off otherwise.
        let radio_grid = PowerGrid::new(
            GridAxis::new(vec![1.0, 1.2]).expect("axis"),
            GridAxis::new(vec![-40.0, 125.0]).expect("axis"),
            vec![
                vec![Power::from_milliwatts(18.0), Power::from_milliwatts(18.0)],
                vec![Power::from_milliwatts(21.0), Power::from_milliwatts(21.0)],
            ],
        )
        .expect("grid");
        let tx_period = config.tx_period_rounds();
        builder = builder.block(
            BlockPowerModel::builder("radio")
                .analog(radio_grid)
                .leakage(LeakageModel::with_reference(Power::from_nanowatts(200.0)))
                // The PA grid is already the burst power; don't apply the
                // generic 1.6× burst activity scale on top of it.
                .mode_policy(OperatingMode::Burst, ModePolicy::new(1.0, 1.0))
                .event_cost(EventCost::new(
                    EventKind::ByteTransmitted,
                    Energy::from_nanos(150.0),
                ))
                .event_cost(EventCost::new(EventKind::WakeUp, Energy::from_nanos(500.0)))
                .build(),
            BlockPlan::new(
                RoundSchedule::new(
                    vec![PhaseSpec::every_n_rounds(
                        OperatingMode::Burst,
                        Span::Fixed(config.tx_burst()),
                        tx_period,
                    )],
                    OperatingMode::Off,
                )
                .expect("radio schedule"),
                Workload::new()
                    .with(
                        EventKind::ByteTransmitted,
                        f64::from(config.payload_bytes()) / f64::from(tx_period),
                    )
                    .with(EventKind::WakeUp, 1.0 / f64::from(tx_period)),
            ),
        );

        builder
            .build()
            .expect("reference architecture is consistent")
    }

    /// The architecture's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The power database.
    #[must_use]
    pub fn database(&self) -> &PowerDatabase {
        &self.database
    }

    /// The configuration the architecture was generated from.
    #[must_use]
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Iterates over block names in sorted order.
    pub fn block_names(&self) -> impl Iterator<Item = &str> {
        self.plans.keys().map(String::as_str)
    }

    /// The plan for one block.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownBlock`] when absent.
    pub fn plan(&self, name: &str) -> Result<&BlockPlan, NodeError> {
        self.plans
            .get(name)
            .ok_or_else(|| NodeError::unknown_block(name))
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the architecture has no blocks (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Returns a copy with one block's power model replaced — how the
    /// optimization step's re-estimation writes back into the flow.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Power`] when the block does not exist.
    pub fn with_block_model(&self, model: BlockPowerModel) -> Result<Self, NodeError> {
        let mut copy = self.clone();
        copy.database.replace(model)?;
        Ok(copy)
    }

    /// Returns a copy with one block's plan replaced (e.g. a rescheduled
    /// TX period).
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownBlock`] when the block does not exist.
    pub fn with_plan(&self, name: &str, plan: BlockPlan) -> Result<Self, NodeError> {
        if !self.plans.contains_key(name) {
            return Err(NodeError::unknown_block(name));
        }
        let mut copy = self.clone();
        copy.plans.insert(name.to_owned(), plan);
        Ok(copy)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} blocks)", self.name, self.plans.len())
    }
}

/// Builder for custom [`Architecture`]s.
#[derive(Debug)]
pub struct ArchitectureBuilder {
    name: String,
    database: PowerDatabase,
    plans: BTreeMap<String, BlockPlan>,
    config: NodeConfig,
}

impl ArchitectureBuilder {
    /// Adds a block: its power model and behavioural plan together, so the
    /// two can never drift apart.
    ///
    /// # Panics
    ///
    /// Panics when a block with the same name was already added.
    #[must_use]
    pub fn block(mut self, model: BlockPowerModel, plan: BlockPlan) -> Self {
        let name = model.name().to_owned();
        self.database
            .insert_with_provenance(model, Provenance::Estimate)
            .unwrap_or_else(|e| panic!("duplicate block in architecture: {e}"));
        self.plans.insert(name, plan);
        self
    }

    /// Records the configuration the architecture represents.
    #[must_use]
    pub fn config(mut self, config: NodeConfig) -> Self {
        self.config = config;
        self
    }

    /// Finalizes the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::InvalidSchedule`] when no blocks were added.
    pub fn build(self) -> Result<Architecture, NodeError> {
        if self.plans.is_empty() {
            return Err(NodeError::invalid_schedule(
                "architecture needs at least one block",
            ));
        }
        Ok(Architecture {
            name: self.name,
            database: self.database,
            plans: self.plans,
            config: self.config,
        })
    }
}

/// A single-point grid: constant power across (V, T) — used for always-on
/// domains characterized by one figure.
fn flat_grid(power: Power) -> PowerGrid {
    PowerGrid::new(
        GridAxis::new(vec![1.2]).expect("axis"),
        GridAxis::new(vec![27.0]).expect("axis"),
        vec![vec![power]],
    )
    .expect("flat grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_power::WorkingConditions;
    use monityre_units::Duration;

    #[test]
    fn reference_has_all_six_blocks() {
        let arch = Architecture::reference();
        let names: Vec<_> = arch.block_names().collect();
        assert_eq!(names, vec!["adc", "afe", "dsp", "pm", "radio", "sram"]);
        assert_eq!(arch.len(), 6);
    }

    #[test]
    fn database_and_plans_are_consistent() {
        let arch = Architecture::reference();
        for name in arch.block_names() {
            assert!(arch.database().contains(name), "{name} missing from db");
        }
        assert_eq!(arch.database().len(), arch.len());
    }

    #[test]
    fn radio_burst_is_mw_class() {
        let arch = Architecture::reference();
        let p = arch
            .database()
            .block_power(
                "radio",
                OperatingMode::Burst,
                &WorkingConditions::reference(),
            )
            .unwrap();
        assert!(p.total().milliwatts() > 15.0, "got {}", p.total());
    }

    #[test]
    fn radio_off_is_nearly_free() {
        let arch = Architecture::reference();
        let p = arch
            .database()
            .block_power("radio", OperatingMode::Off, &WorkingConditions::reference())
            .unwrap();
        assert!(p.total().nanowatts() < 100.0, "got {}", p.total());
    }

    #[test]
    fn pm_is_always_active() {
        let arch = Architecture::reference();
        let plan = arch.plan("pm").unwrap();
        assert!(plan.schedule().phases().is_empty());
        assert_eq!(plan.schedule().rest_mode(), OperatingMode::Active);
    }

    #[test]
    fn adc_workload_follows_config() {
        let config = NodeConfig::reference().with_samples_per_round(256);
        let arch = Architecture::from_config(config);
        let plan = arch.plan("adc").unwrap();
        assert_eq!(plan.workload().count(EventKind::Sample), 256.0);
    }

    #[test]
    fn radio_workload_amortizes_payload() {
        let config = NodeConfig::reference()
            .with_payload_bytes(64)
            .with_tx_period_rounds(8);
        let arch = Architecture::from_config(config);
        let plan = arch.plan("radio").unwrap();
        assert!((plan.workload().count(EventKind::ByteTransmitted) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_plan_lookup_fails() {
        let arch = Architecture::reference();
        assert!(matches!(
            arch.plan("gpu"),
            Err(NodeError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn with_block_model_is_pure_and_bumps_revision() {
        let arch = Architecture::reference();
        let dsp = arch.database().block("dsp").unwrap().clone();
        let optimized = arch
            .with_block_model(dsp.with_leakage(dsp.leakage().scaled(0.2)))
            .unwrap();
        assert_eq!(arch.database().record("dsp").unwrap().revision(), 1);
        assert_eq!(optimized.database().record("dsp").unwrap().revision(), 2);
    }

    #[test]
    fn with_plan_rejects_unknown() {
        let arch = Architecture::reference();
        let plan = arch.plan("dsp").unwrap().clone();
        assert!(arch.with_plan("gpu", plan).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn builder_rejects_duplicates() {
        let model = BlockPowerModel::builder("x").build();
        let plan = BlockPlan::new(RoundSchedule::always(OperatingMode::Sleep), Workload::new());
        let _ = Architecture::builder("test")
            .block(model.clone(), plan.clone())
            .block(model, plan);
    }

    #[test]
    fn empty_builder_fails() {
        assert!(Architecture::builder("test").build().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let arch = Architecture::reference();
        let json = serde_json::to_string(&arch).unwrap();
        let back: Architecture = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arch);
    }

    #[test]
    fn dsp_compute_window_fixed_duration() {
        let arch = Architecture::reference();
        let plan = arch.plan("dsp").unwrap();
        let resolved = plan.schedule().resolve(Duration::from_millis(100.0));
        assert_eq!(resolved.len(), 1);
        assert!(resolved[0]
            .duration
            .approx_eq(Duration::from_millis(5.0), 1e-12));
    }
}
