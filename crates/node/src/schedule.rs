//! Wheel-round duty-cycle schedules.
//!
//! "For this particular monitoring system, the functioning of each block
//! (data acquisition, memories, etc.) should be considered during a single
//! wheel round, that is the basic timing unit. Hence, a duty cycle …
//! for each specific component should be defined" (§II). A
//! [`RoundSchedule`] is that definition: an ordered list of phases a block
//! goes through within a round, plus the rest mode it falls back to.

use monityre_power::OperatingMode;
use monityre_units::{Duration, DutyCycle};
use serde::{Deserialize, Serialize};

use crate::NodeError;

/// How long a phase lasts within a wheel round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Span {
    /// A fixed wall-clock duration (e.g. a 0.8 ms TX burst) — independent
    /// of speed.
    Fixed(Duration),
    /// A fraction of the wheel round (e.g. the 12 % contact-patch
    /// acquisition window) — scales with the round period.
    Fraction(f64),
}

impl Span {
    /// The concrete duration of this span in a round of length `period`,
    /// clamped to the period itself.
    #[must_use]
    pub fn resolve(&self, period: Duration) -> Duration {
        match *self {
            Self::Fixed(d) => d.min(period),
            Self::Fraction(f) => period * f,
        }
    }

    fn validate(&self) -> Result<(), NodeError> {
        match *self {
            Self::Fixed(d) => {
                if d.is_finite() && !d.is_negative() {
                    Ok(())
                } else {
                    Err(NodeError::invalid_schedule(
                        "fixed span must be a finite non-negative duration",
                    ))
                }
            }
            Self::Fraction(f) => {
                if f.is_finite() && (0.0..=1.0).contains(&f) {
                    Ok(())
                } else {
                    Err(NodeError::invalid_schedule(
                        "fractional span must lie in [0, 1]",
                    ))
                }
            }
        }
    }
}

/// One phase of a block's round: a mode held for a span, recurring once
/// every `period_rounds` rounds.
///
/// `period_rounds = 1` means every round; `4` means the phase runs in one
/// round out of four (e.g. a transmission every 4th round) and the block
/// stays in its rest mode during that span in the other three.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// The operating mode during the phase.
    pub mode: OperatingMode,
    /// How long the phase lasts.
    pub span: Span,
    /// Recurrence period in rounds (≥ 1).
    pub period_rounds: u32,
}

impl PhaseSpec {
    /// A phase recurring every round.
    #[must_use]
    pub fn every_round(mode: OperatingMode, span: Span) -> Self {
        Self {
            mode,
            span,
            period_rounds: 1,
        }
    }

    /// A phase recurring once every `period_rounds` rounds.
    #[must_use]
    pub fn every_n_rounds(mode: OperatingMode, span: Span, period_rounds: u32) -> Self {
        Self {
            mode,
            span,
            period_rounds,
        }
    }
}

/// A phase resolved against a concrete round period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedPhase {
    /// The operating mode during the phase.
    pub mode: OperatingMode,
    /// Concrete duration within the rounds where the phase runs.
    pub duration: Duration,
    /// Recurrence period in rounds.
    pub period_rounds: u32,
}

impl ResolvedPhase {
    /// The phase's amortized share of one round: `duration / period`.
    #[must_use]
    pub fn amortized_duration(&self) -> Duration {
        self.duration / f64::from(self.period_rounds)
    }
}

/// A block's duty-cycle schedule within the wheel round.
///
/// ```
/// use monityre_node::{PhaseSpec, RoundSchedule, Span};
/// use monityre_power::OperatingMode;
/// use monityre_units::Duration;
///
/// # fn main() -> Result<(), monityre_node::NodeError> {
/// // ADC: converts during the 12 % contact-patch window, sleeps otherwise.
/// let schedule = RoundSchedule::new(
///     vec![PhaseSpec::every_round(OperatingMode::Burst, Span::Fraction(0.12))],
///     OperatingMode::Sleep,
/// )?;
/// let duty = schedule.duty_cycle(Duration::from_millis(100.0));
/// assert!((duty.active_fraction() - 0.12).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSchedule {
    phases: Vec<PhaseSpec>,
    rest_mode: OperatingMode,
}

impl RoundSchedule {
    /// Builds a schedule from phases and the rest mode filling the rest of
    /// the round.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::InvalidSchedule`] when a span is malformed,
    /// a recurrence period is zero, or the per-round fractional spans
    /// alone already exceed the full round.
    pub fn new(phases: Vec<PhaseSpec>, rest_mode: OperatingMode) -> Result<Self, NodeError> {
        let mut fraction_total = 0.0;
        for phase in &phases {
            phase.span.validate()?;
            if phase.period_rounds == 0 {
                return Err(NodeError::invalid_schedule(
                    "phase recurrence period must be at least 1 round",
                ));
            }
            if let Span::Fraction(f) = phase.span {
                fraction_total += f;
            }
        }
        if fraction_total > 1.0 + 1e-9 {
            return Err(NodeError::invalid_schedule(
                "fractional spans exceed one full round",
            ));
        }
        Ok(Self { phases, rest_mode })
    }

    /// A schedule that keeps the block permanently in one mode.
    #[must_use]
    pub fn always(mode: OperatingMode) -> Self {
        Self {
            phases: Vec::new(),
            rest_mode: mode,
        }
    }

    /// The scheduled phases.
    #[must_use]
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The mode filling the unscheduled remainder of each round.
    #[must_use]
    pub fn rest_mode(&self) -> OperatingMode {
        self.rest_mode
    }

    /// Resolves the phases against a concrete round period.
    ///
    /// Fixed spans are truncated greedily, in order, when their cumulative
    /// duration would exceed the round (the high-speed regime where a
    /// round is shorter than the node's fixed work — real firmware skips
    /// work there, and truncation models that degradation).
    #[must_use]
    pub fn resolve(&self, period: Duration) -> Vec<ResolvedPhase> {
        let mut remaining = period;
        let mut fraction_budget = period;
        let mut resolved = Vec::with_capacity(self.phases.len());
        for phase in &self.phases {
            let want = match phase.span {
                Span::Fixed(_) => phase.span.resolve(period),
                Span::Fraction(_) => phase.span.resolve(fraction_budget.max(Duration::ZERO)),
            };
            let take = want.min(remaining.max(Duration::ZERO));
            resolved.push(ResolvedPhase {
                mode: phase.mode,
                duration: take,
                period_rounds: phase.period_rounds,
            });
            remaining -= take;
            if let Span::Fixed(_) = phase.span {
                fraction_budget -= take;
            }
        }
        resolved
    }

    /// The rest-of-round duration once every *amortized* phase share is
    /// accounted: `period − Σ duration/period_rounds`, floored at zero.
    #[must_use]
    pub fn rest_duration(&self, period: Duration) -> Duration {
        let scheduled: Duration = self
            .resolve(period)
            .iter()
            .map(ResolvedPhase::amortized_duration)
            .sum();
        (period - scheduled).max(Duration::ZERO)
    }

    /// The block's *duty cycle* in the paper's sense: the amortized share
    /// of the round spent in clocked (active-ish) modes.
    #[must_use]
    pub fn duty_cycle(&self, period: Duration) -> DutyCycle {
        if !period.is_finite() || period.secs() <= 0.0 {
            // Degenerate round (standstill): the block sits in its rest mode.
            return if self.rest_mode.is_clocked() {
                DutyCycle::ALWAYS_ACTIVE
            } else {
                DutyCycle::ALWAYS_IDLE
            };
        }
        let mut active = Duration::ZERO;
        for phase in self.resolve(period) {
            if phase.mode.is_clocked() {
                active += phase.amortized_duration();
            }
        }
        if self.rest_mode.is_clocked() {
            active += self.rest_duration(period);
        }
        DutyCycle::saturating(active / period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn fraction_scales_with_period() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_round(
                OperatingMode::Active,
                Span::Fraction(0.25),
            )],
            OperatingMode::Sleep,
        )
        .unwrap();
        let slow = s.resolve(ms(200.0));
        let fast = s.resolve(ms(40.0));
        assert!(slow[0].duration.approx_eq(ms(50.0), 1e-12));
        assert!(fast[0].duration.approx_eq(ms(10.0), 1e-12));
    }

    #[test]
    fn fixed_is_speed_independent_until_truncation() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_round(
                OperatingMode::Burst,
                Span::Fixed(ms(2.0)),
            )],
            OperatingMode::Off,
        )
        .unwrap();
        assert!(s.resolve(ms(100.0))[0].duration.approx_eq(ms(2.0), 1e-12));
        assert!(s.resolve(ms(10.0))[0].duration.approx_eq(ms(2.0), 1e-12));
        // Round shorter than the phase: truncated.
        assert!(s.resolve(ms(1.0))[0].duration.approx_eq(ms(1.0), 1e-12));
    }

    #[test]
    fn greedy_truncation_preserves_order() {
        let s = RoundSchedule::new(
            vec![
                PhaseSpec::every_round(OperatingMode::Active, Span::Fixed(ms(6.0))),
                PhaseSpec::every_round(OperatingMode::Burst, Span::Fixed(ms(6.0))),
            ],
            OperatingMode::Sleep,
        )
        .unwrap();
        let resolved = s.resolve(ms(8.0));
        assert!(resolved[0].duration.approx_eq(ms(6.0), 1e-12));
        assert!(resolved[1].duration.approx_eq(ms(2.0), 1e-12));
    }

    #[test]
    fn rest_duration_accounts_amortization() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_n_rounds(
                OperatingMode::Burst,
                Span::Fixed(ms(4.0)),
                4,
            )],
            OperatingMode::Off,
        )
        .unwrap();
        // Amortized burst time is 1 ms per round.
        assert!(s.rest_duration(ms(100.0)).approx_eq(ms(99.0), 1e-12));
    }

    #[test]
    fn duty_cycle_counts_only_clocked_modes() {
        let s = RoundSchedule::new(
            vec![
                PhaseSpec::every_round(OperatingMode::Active, Span::Fraction(0.10)),
                PhaseSpec::every_round(OperatingMode::Sleep, Span::Fraction(0.30)),
            ],
            OperatingMode::DeepSleep,
        )
        .unwrap();
        let duty = s.duty_cycle(ms(100.0));
        assert!((duty.active_fraction() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_with_amortized_phase() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_n_rounds(
                OperatingMode::Burst,
                Span::Fixed(ms(2.0)),
                8,
            )],
            OperatingMode::Off,
        )
        .unwrap();
        let duty = s.duty_cycle(ms(100.0));
        assert!((duty.active_fraction() - 0.0025).abs() < 1e-9);
        assert!(duty.is_short());
    }

    #[test]
    fn always_schedule_has_no_phases() {
        let s = RoundSchedule::always(OperatingMode::Active);
        assert!(s.phases().is_empty());
        assert_eq!(s.duty_cycle(ms(50.0)), DutyCycle::ALWAYS_ACTIVE);
        let idle = RoundSchedule::always(OperatingMode::Sleep);
        assert_eq!(idle.duty_cycle(ms(50.0)), DutyCycle::ALWAYS_IDLE);
    }

    #[test]
    fn standstill_duty_follows_rest_mode() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_round(
                OperatingMode::Active,
                Span::Fraction(0.5),
            )],
            OperatingMode::Sleep,
        )
        .unwrap();
        let duty = s.duty_cycle(Duration::from_secs(f64::INFINITY));
        assert_eq!(duty, DutyCycle::ALWAYS_IDLE);
    }

    #[test]
    fn rejects_fraction_overflow() {
        let r = RoundSchedule::new(
            vec![
                PhaseSpec::every_round(OperatingMode::Active, Span::Fraction(0.7)),
                PhaseSpec::every_round(OperatingMode::Burst, Span::Fraction(0.5)),
            ],
            OperatingMode::Sleep,
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_zero_recurrence() {
        let r = RoundSchedule::new(
            vec![PhaseSpec::every_n_rounds(
                OperatingMode::Burst,
                Span::Fixed(ms(1.0)),
                0,
            )],
            OperatingMode::Sleep,
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_negative_fraction() {
        let r = RoundSchedule::new(
            vec![PhaseSpec::every_round(
                OperatingMode::Active,
                Span::Fraction(-0.1),
            )],
            OperatingMode::Sleep,
        );
        assert!(r.is_err());
    }

    #[test]
    fn serde_round_trip() {
        let s = RoundSchedule::new(
            vec![PhaseSpec::every_n_rounds(
                OperatingMode::Burst,
                Span::Fixed(ms(0.8)),
                4,
            )],
            OperatingMode::Off,
        )
        .unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: RoundSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
