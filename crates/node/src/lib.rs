//! The Sensor Node architecture: blocks, wheel-round schedules, workloads.
//!
//! "The architecture of the Sensor Node requires, at least, a sensor data
//! acquisition block, a data computing system and a wireless communication
//! device" (§I). This crate models that architecture as the evaluation
//! tools need it:
//!
//! * [`BlockKind`] — the canonical functional blocks (analog front-end,
//!   ADC, computing DSP, SRAM, radio transmitter, always-on power
//!   management);
//! * [`RoundSchedule`] — each block's duty cycle *within one wheel round*,
//!   the paper's basic timing unit: a list of phases (mode + span), where a
//!   span is either a fixed duration (a 0.8 ms TX burst) or a fraction of
//!   the round (the contact-patch acquisition window), optionally recurring
//!   only every N rounds (a transmission every 4th round);
//! * [`Workload`] — per-round event counts (samples converted, bytes
//!   radiated, kernels run) charged against the blocks' event costs;
//! * [`NodeConfig`] — the user-tunable configuration knobs (samples per
//!   round, TX period and payload, clock) whose sweep is the paper's
//!   "custom architectures" evaluation;
//! * [`Architecture`] — the assembled node: a power database plus a plan
//!   (schedule + workload) per block, with [`Architecture::reference`]
//!   building the calibrated reference Sensor Node.
//!
//! # Example
//!
//! ```
//! use monityre_node::{Architecture, NodeConfig};
//! use monityre_units::Duration;
//!
//! let arch = Architecture::reference();
//! assert!(arch.block_names().count() >= 6);
//! let plan = arch.plan("radio").unwrap();
//! let phases = plan.schedule().resolve(Duration::from_millis(114.0));
//! assert!(!phases.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod architecture;
mod block;
mod config;
mod error;
mod schedule;
mod workload;

pub use architecture::{Architecture, ArchitectureBuilder, BlockPlan};
pub use block::BlockKind;
pub use config::{ConfigSpace, NodeConfig};
pub use error::NodeError;
pub use schedule::{PhaseSpec, ResolvedPhase, RoundSchedule, Span};
pub use workload::Workload;
