//! Node configuration: the user-tunable knobs of the architecture.
//!
//! §II-A: "The user can even evaluate custom architectures of the chip in
//! order to strike a balance between energy requirement and system
//! performance." [`NodeConfig`] captures those knobs; [`ConfigSpace`]
//! enumerates a grid of them for the architecture-exploration experiment.

use monityre_units::{Duration, Frequency};
use serde::{Deserialize, Serialize};

/// Configuration of the Sensor Node.
///
/// ```
/// use monityre_node::NodeConfig;
///
/// let config = NodeConfig::reference().with_samples_per_round(256);
/// assert_eq!(config.samples_per_round(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    samples_per_round: u32,
    tx_period_rounds: u32,
    payload_bytes: u32,
    dsp_clock: Frequency,
    acquisition_fraction: f64,
    compute_time: Duration,
    tx_burst: Duration,
}

impl NodeConfig {
    /// The reference configuration, calibrated so the reference
    /// architecture's break-even sits in the low tens of km/h:
    /// 128 samples in a 12 % contact-patch window, a 32-byte packet every
    /// 4th round, 8 MHz DSP running a 5 ms feature-extraction kernel,
    /// 0.8 ms TX burst.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            samples_per_round: 128,
            tx_period_rounds: 4,
            payload_bytes: 32,
            dsp_clock: Frequency::from_megahertz(8.0),
            acquisition_fraction: 0.12,
            compute_time: Duration::from_millis(5.0),
            tx_burst: Duration::from_micros(800.0),
        }
    }

    /// Samples acquired per wheel round.
    #[must_use]
    pub fn samples_per_round(&self) -> u32 {
        self.samples_per_round
    }

    /// Rounds between transmissions.
    #[must_use]
    pub fn tx_period_rounds(&self) -> u32 {
        self.tx_period_rounds
    }

    /// Packet payload in bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// DSP clock frequency.
    #[must_use]
    pub fn dsp_clock(&self) -> Frequency {
        self.dsp_clock
    }

    /// Fraction of the round the acquisition chain is awake.
    #[must_use]
    pub fn acquisition_fraction(&self) -> f64 {
        self.acquisition_fraction
    }

    /// Fixed DSP compute window per round at the reference clock; the
    /// effective window scales inversely with the configured clock.
    #[must_use]
    pub fn compute_time(&self) -> Duration {
        // Work is a fixed cycle count: halving the clock doubles the time.
        let ratio = Frequency::from_megahertz(8.0) / self.dsp_clock;
        self.compute_time * ratio
    }

    /// TX burst duration.
    #[must_use]
    pub fn tx_burst(&self) -> Duration {
        self.tx_burst
    }

    /// Returns a copy with a different sample count.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn with_samples_per_round(mut self, samples: u32) -> Self {
        assert!(samples > 0, "samples per round must be positive");
        self.samples_per_round = samples;
        self
    }

    /// Returns a copy with a different TX period.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    #[must_use]
    pub fn with_tx_period_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds > 0, "tx period must be at least one round");
        self.tx_period_rounds = rounds;
        self
    }

    /// Returns a copy with a different payload size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn with_payload_bytes(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "payload must be at least one byte");
        self.payload_bytes = bytes;
        self
    }

    /// Returns a copy with a different DSP clock.
    ///
    /// # Panics
    ///
    /// Panics if the clock is non-positive.
    #[must_use]
    pub fn with_dsp_clock(mut self, clock: Frequency) -> Self {
        assert!(
            clock.hertz() > 0.0 && clock.is_finite(),
            "dsp clock must be positive"
        );
        self.dsp_clock = clock;
        self
    }

    /// Returns a copy with a different acquisition window.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn with_acquisition_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "acquisition fraction must lie in (0, 1], got {fraction}"
        );
        self.acquisition_fraction = fraction;
        self
    }

    /// A throughput figure for the performance axis of the exploration:
    /// samples delivered per round (after decimation, everything acquired
    /// is processed).
    #[must_use]
    pub fn samples_throughput(&self) -> f64 {
        f64::from(self.samples_per_round)
    }

    /// Telemetry rate: payload bytes per round, amortized over the TX
    /// period.
    #[must_use]
    pub fn bytes_per_round(&self) -> f64 {
        f64::from(self.payload_bytes) / f64::from(self.tx_period_rounds)
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// A grid of configurations for architecture exploration.
///
/// ```
/// use monityre_node::ConfigSpace;
///
/// let space = ConfigSpace::reference_grid();
/// assert!(space.iter().count() > 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    samples: Vec<u32>,
    tx_periods: Vec<u32>,
    payloads: Vec<u32>,
}

impl ConfigSpace {
    /// Builds a grid over sample counts, TX periods and payload sizes.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or contains zero.
    #[must_use]
    pub fn new(samples: Vec<u32>, tx_periods: Vec<u32>, payloads: Vec<u32>) -> Self {
        assert!(
            !samples.is_empty() && !tx_periods.is_empty() && !payloads.is_empty(),
            "config space axes must be non-empty"
        );
        assert!(
            samples.iter().all(|&s| s > 0)
                && tx_periods.iter().all(|&t| t > 0)
                && payloads.iter().all(|&p| p > 0),
            "config space values must be positive"
        );
        Self {
            samples,
            tx_periods,
            payloads,
        }
    }

    /// The grid used by the EXP-ARCH experiment: samples 32–512, TX period
    /// 1–16 rounds, payloads 16/32/64 bytes.
    #[must_use]
    pub fn reference_grid() -> Self {
        Self::new(
            vec![32, 64, 128, 256, 512],
            vec![1, 2, 4, 8, 16],
            vec![16, 32, 64],
        )
    }

    /// Iterates over every configuration in the grid (reference values for
    /// the non-swept knobs).
    pub fn iter(&self) -> impl Iterator<Item = NodeConfig> + '_ {
        self.samples.iter().flat_map(move |&s| {
            self.tx_periods.iter().flat_map(move |&t| {
                self.payloads.iter().map(move |&p| {
                    NodeConfig::reference()
                        .with_samples_per_round(s)
                        .with_tx_period_rounds(t)
                        .with_payload_bytes(p)
                })
            })
        })
    }

    /// The number of configurations in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len() * self.tx_periods.len() * self.payloads.len()
    }

    /// Whether the grid is empty (never true for a constructed space).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        let c = NodeConfig::reference();
        assert_eq!(c.samples_per_round(), 128);
        assert_eq!(c.tx_period_rounds(), 4);
        assert_eq!(c.payload_bytes(), 32);
        assert!((c.bytes_per_round() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn with_methods_are_pure() {
        let base = NodeConfig::reference();
        let more = base.with_samples_per_round(512);
        assert_eq!(base.samples_per_round(), 128);
        assert_eq!(more.samples_per_round(), 512);
    }

    #[test]
    fn compute_time_scales_with_clock() {
        let base = NodeConfig::reference();
        let slow = base.with_dsp_clock(Frequency::from_megahertz(4.0));
        assert!(slow
            .compute_time()
            .approx_eq(base.compute_time() * 2.0, 1e-12));
    }

    #[test]
    fn grid_size_and_contents() {
        let space = ConfigSpace::reference_grid();
        assert_eq!(space.len(), 5 * 5 * 3);
        assert_eq!(space.iter().count(), space.len());
        // Every config preserves the non-swept reference knobs.
        assert!(space
            .iter()
            .all(|c| (c.acquisition_fraction() - 0.12).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "samples per round must be positive")]
    fn rejects_zero_samples() {
        let _ = NodeConfig::reference().with_samples_per_round(0);
    }

    #[test]
    #[should_panic(expected = "config space values must be positive")]
    fn space_rejects_zero_entries() {
        let _ = ConfigSpace::new(vec![0], vec![1], vec![1]);
    }

    #[test]
    fn serde_round_trip() {
        let c = NodeConfig::reference();
        let json = serde_json::to_string(&c).unwrap();
        let back: NodeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
