//! The cell engine: storage, dependency graph, incremental recompute.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::{parse, Expr, SheetError};

/// What a cell holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellContent {
    /// A literal number (an input cell).
    Number(f64),
    /// A formula (a derived cell). The source text is kept for
    /// serialization and display; the AST is re-parsed on load.
    Formula {
        /// The formula source text.
        source_text: String,
        /// The parsed expression (not serialized; rebuilt from the text).
        #[serde(skip, default)]
        expr: Option<Expr>,
    },
}

/// The dynamic spreadsheet: named cells, formulas, incremental recompute.
///
/// Editing a cell re-evaluates exactly its transitive dependents in
/// topological order; [`Sheet::evaluation_count`] exposes how many formula
/// evaluations have run, so the incrementality is testable (and is measured
/// by the EXP-SHEET experiment).
///
/// ```
/// use monityre_sheet::Sheet;
///
/// # fn main() -> Result<(), monityre_sheet::SheetError> {
/// let mut sheet = Sheet::new();
/// sheet.set_number("round_ms", 114.0)?;
/// sheet.set_number("dsp.active_uw", 620.0)?;
/// sheet.set_formula("dsp.energy_uj", "dsp.active_uw * 5.0 / 1000.0")?;
/// sheet.set_formula("budget_uj", "dsp.energy_uj + 2.0")?;
/// assert!((sheet.value("budget_uj")? - 5.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sheet {
    cells: BTreeMap<String, CellContent>,
    values: BTreeMap<String, f64>,
    /// Reverse dependency edges: cell → cells whose formulas reference it.
    dependents: BTreeMap<String, BTreeSet<String>>,
    evaluations: u64,
}

impl Sheet {
    /// Creates an empty sheet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sheet has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether a cell exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.cells.contains_key(name)
    }

    /// Iterates over cell names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// The content of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn content(&self, name: &str) -> Result<&CellContent, SheetError> {
        self.cells
            .get(name)
            .ok_or_else(|| SheetError::unknown_cell(name))
    }

    /// The current value of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn value(&self, name: &str) -> Result<f64, SheetError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| SheetError::unknown_cell(name))
    }

    /// Total formula evaluations performed so far (for incrementality
    /// measurements).
    #[must_use]
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations
    }

    /// Sets (or overwrites) a literal number cell and recomputes its
    /// dependents.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::InvalidName`] for malformed names or
    /// [`SheetError::NonFinite`] for non-finite inputs.
    pub fn set_number(&mut self, name: &str, value: f64) -> Result<(), SheetError> {
        validate_name(name)?;
        if !value.is_finite() {
            return Err(SheetError::non_finite(name));
        }
        self.unlink(name);
        self.cells
            .insert(name.to_owned(), CellContent::Number(value));
        self.values.insert(name.to_owned(), value);
        self.recompute_dependents(name)
    }

    /// Sets (or overwrites) a formula cell and recomputes it plus its
    /// dependents.
    ///
    /// # Errors
    ///
    /// * [`SheetError::Parse`] — the formula does not parse;
    /// * [`SheetError::UnknownCell`] — a referenced cell does not exist
    ///   yet (build sheets bottom-up);
    /// * [`SheetError::Cycle`] — the formula would (transitively) depend
    ///   on itself;
    /// * [`SheetError::NonFinite`] — the formula evaluates to NaN/∞.
    ///
    /// On error the sheet is left unchanged.
    pub fn set_formula(&mut self, name: &str, source_text: &str) -> Result<(), SheetError> {
        validate_name(name)?;
        let expr = parse(source_text)?;
        let deps = expr.dependencies();
        for dep in &deps {
            if !self.cells.contains_key(dep) {
                return Err(SheetError::unknown_cell(dep));
            }
        }
        // Cycle check: would `name` be reachable from any dep through the
        // *current* forward-dependency edges (plus the new edge set)?
        if deps.contains(name) || deps.iter().any(|d| self.reaches(d, name)) {
            return Err(SheetError::cycle(name));
        }
        // Trial evaluation before mutating anything.
        let value = self.evaluate(&expr, name)?;

        self.unlink(name);
        for dep in &deps {
            self.dependents
                .entry(dep.clone())
                .or_default()
                .insert(name.to_owned());
        }
        self.cells.insert(
            name.to_owned(),
            CellContent::Formula {
                source_text: source_text.to_owned(),
                expr: Some(expr),
            },
        );
        self.values.insert(name.to_owned(), value);
        self.recompute_dependents(name)
    }

    /// Removes a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::Cycle`] — reported as a dependency conflict —
    /// when other formulas still reference the cell, or
    /// [`SheetError::UnknownCell`] when absent.
    pub fn remove(&mut self, name: &str) -> Result<(), SheetError> {
        if !self.cells.contains_key(name) {
            return Err(SheetError::unknown_cell(name));
        }
        if self.dependents.get(name).is_some_and(|d| !d.is_empty()) {
            return Err(SheetError::cycle(name));
        }
        self.unlink(name);
        self.cells.remove(name);
        self.values.remove(name);
        self.dependents.remove(name);
        Ok(())
    }

    /// Forward dependencies of a cell (empty for literals).
    #[must_use]
    pub fn dependencies_of(&self, name: &str) -> BTreeSet<String> {
        match self.cells.get(name) {
            Some(CellContent::Formula { expr: Some(e), .. }) => e.dependencies(),
            _ => BTreeSet::new(),
        }
    }

    /// Cells whose formulas reference `name`, directly.
    #[must_use]
    pub fn dependents_of(&self, name: &str) -> BTreeSet<String> {
        self.dependents.get(name).cloned().unwrap_or_default()
    }

    /// Renders a cell's dependency tree with current values — the
    /// "where does this number come from?" view an engineer expects from
    /// the spreadsheet.
    ///
    /// ```text
    /// acq.total_uw = adc.active_uw + afe.active_uw  [290]
    /// ├─ adc.active_uw  [210]
    /// └─ afe.active_uw  [80]
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn explain(&self, name: &str) -> Result<String, SheetError> {
        if !self.cells.contains_key(name) {
            return Err(SheetError::unknown_cell(name));
        }
        let mut out = String::new();
        self.explain_into(name, "", true, true, &mut out);
        Ok(out)
    }

    fn explain_into(
        &self,
        name: &str,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
    ) {
        let value = self.values.get(name).copied().unwrap_or(f64::NAN);
        let header = match self.cells.get(name) {
            Some(CellContent::Formula { source_text, .. }) => {
                format!("{name} = {source_text}  [{value}]")
            }
            _ => format!("{name}  [{value}]"),
        };
        if is_root {
            out.push_str(&header);
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
            out.push_str(&header);
        }
        out.push('\n');
        let deps: Vec<String> = self.dependencies_of(name).into_iter().collect();
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        for (i, dep) in deps.iter().enumerate() {
            self.explain_into(dep, &child_prefix, i == deps.len() - 1, false, out);
        }
    }

    /// Re-evaluates every formula cell from scratch (used after
    /// deserialization, and by tests as the ground truth the incremental
    /// path must match).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn recompute_all(&mut self) -> Result<(), SheetError> {
        let order = self.topological_order(self.cells.keys().cloned().collect())?;
        for name in order {
            if let Some(CellContent::Formula { expr: Some(e), .. }) = self.cells.get(&name) {
                let e = e.clone();
                let value = self.evaluate(&e, &name)?;
                self.values.insert(name, value);
            }
        }
        Ok(())
    }

    /// Serializes the sheet (cell contents only; values are derived).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.cells)
    }

    /// Restores a sheet serialized with [`Sheet::to_json`], re-parsing
    /// formulas and recomputing all values.
    ///
    /// # Errors
    ///
    /// Returns a boxed error on malformed JSON, unparsable formulas, or
    /// inconsistent references.
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let cells: BTreeMap<String, CellContent> = serde_json::from_str(json)?;
        let mut sheet = Sheet::new();
        // Insert literals first, then formulas in dependency order by
        // retrying until fixpoint (sheets are small; O(n²) worst case).
        let mut pending: Vec<(String, String)> = Vec::new();
        for (name, content) in cells {
            match content {
                CellContent::Number(v) => sheet.set_number(&name, v)?,
                CellContent::Formula { source_text, .. } => pending.push((name, source_text)),
            }
        }
        let mut progress = true;
        while progress && !pending.is_empty() {
            progress = false;
            let mut still_pending = Vec::new();
            for (name, src) in pending {
                match sheet.set_formula(&name, &src) {
                    Ok(()) => progress = true,
                    Err(SheetError::UnknownCell { .. }) => still_pending.push((name, src)),
                    Err(e) => return Err(Box::new(e)),
                }
            }
            pending = still_pending;
        }
        if let Some((name, _)) = pending.first() {
            return Err(Box::new(SheetError::unknown_cell(name)));
        }
        Ok(sheet)
    }

    // -- internals --------------------------------------------------------

    /// Removes `name`'s outgoing dependency edges (before re-definition).
    fn unlink(&mut self, name: &str) {
        let old_deps = self.dependencies_of(name);
        for dep in old_deps {
            if let Some(set) = self.dependents.get_mut(&dep) {
                set.remove(name);
            }
        }
    }

    /// Whether `to` is reachable from `from` along forward dependency
    /// edges (i.e. `from`'s formula transitively references `to`).
    fn reaches(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let mut stack: Vec<String> = self.dependencies_of(from).into_iter().collect();
        let mut seen = BTreeSet::new();
        while let Some(current) = stack.pop() {
            if current == to {
                return true;
            }
            if seen.insert(current.clone()) {
                stack.extend(self.dependencies_of(&current));
            }
        }
        false
    }

    fn evaluate(&mut self, expr: &Expr, name: &str) -> Result<f64, SheetError> {
        self.evaluations += 1;
        let values = &self.values;
        let value = expr.eval(&|dep: &str| {
            values
                .get(dep)
                .copied()
                .ok_or_else(|| SheetError::unknown_cell(dep))
        })?;
        if !value.is_finite() {
            return Err(SheetError::non_finite(name));
        }
        Ok(value)
    }

    /// Recomputes the transitive dependents of `name` in topological order.
    fn recompute_dependents(&mut self, name: &str) -> Result<(), SheetError> {
        // Collect the affected set (dependents closure, excluding `name`).
        let mut affected = BTreeSet::new();
        let mut stack: Vec<String> = self.dependents_of(name).into_iter().collect();
        while let Some(current) = stack.pop() {
            if affected.insert(current.clone()) {
                stack.extend(self.dependents_of(&current));
            }
        }
        if affected.is_empty() {
            return Ok(());
        }
        let order = self.topological_order(affected)?;
        for cell in order {
            if let Some(CellContent::Formula { expr: Some(e), .. }) = self.cells.get(&cell) {
                let e = e.clone();
                let value = self.evaluate(&e, &cell)?;
                self.values.insert(cell, value);
            }
        }
        Ok(())
    }

    /// Topologically orders `set` by forward dependencies restricted to the
    /// set (dependencies outside the set are already up to date).
    fn topological_order(&self, set: BTreeSet<String>) -> Result<Vec<String>, SheetError> {
        let mut order = Vec::with_capacity(set.len());
        let mut state: BTreeMap<String, u8> = BTreeMap::new(); // 1=visiting, 2=done
        for root in &set {
            self.topo_visit(root, &set, &mut state, &mut order)?;
        }
        Ok(order)
    }

    fn topo_visit(
        &self,
        node: &str,
        set: &BTreeSet<String>,
        state: &mut BTreeMap<String, u8>,
        order: &mut Vec<String>,
    ) -> Result<(), SheetError> {
        match state.get(node) {
            Some(2) => return Ok(()),
            Some(1) => return Err(SheetError::cycle(node)),
            _ => {}
        }
        state.insert(node.to_owned(), 1);
        for dep in self.dependencies_of(node) {
            if set.contains(&dep) {
                self.topo_visit(&dep, set, state, order)?;
            }
        }
        state.insert(node.to_owned(), 2);
        order.push(node.to_owned());
        Ok(())
    }
}

fn validate_name(name: &str) -> Result<(), SheetError> {
    let mut chars = name.chars();
    let valid = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        }
        _ => false,
    };
    if valid {
        Ok(())
    } else {
        Err(SheetError::invalid_name(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_sheet() -> Sheet {
        let mut s = Sheet::new();
        s.set_number("a", 1.0).unwrap();
        s.set_formula("b", "a * 2").unwrap();
        s.set_formula("c", "b + 1").unwrap();
        s.set_formula("d", "c * c").unwrap();
        s
    }

    #[test]
    fn literal_and_formula_values() {
        let s = chain_sheet();
        assert_eq!(s.value("a").unwrap(), 1.0);
        assert_eq!(s.value("b").unwrap(), 2.0);
        assert_eq!(s.value("c").unwrap(), 3.0);
        assert_eq!(s.value("d").unwrap(), 9.0);
    }

    #[test]
    fn edit_propagates_through_chain() {
        let mut s = chain_sheet();
        s.set_number("a", 5.0).unwrap();
        assert_eq!(s.value("b").unwrap(), 10.0);
        assert_eq!(s.value("c").unwrap(), 11.0);
        assert_eq!(s.value("d").unwrap(), 121.0);
    }

    #[test]
    fn recompute_is_incremental() {
        let mut s = chain_sheet();
        s.set_number("x", 100.0).unwrap(); // unrelated cell
        let before = s.evaluation_count();
        s.set_number("x", 200.0).unwrap(); // no dependents
        assert_eq!(s.evaluation_count(), before);
        s.set_number("a", 2.0).unwrap(); // three dependents
        assert_eq!(s.evaluation_count(), before + 3);
    }

    #[test]
    fn diamond_dependencies_evaluate_once_in_order() {
        let mut s = Sheet::new();
        s.set_number("x", 1.0).unwrap();
        s.set_formula("left", "x + 1").unwrap();
        s.set_formula("right", "x * 10").unwrap();
        s.set_formula("join", "left + right").unwrap();
        let base = s.evaluation_count();
        s.set_number("x", 2.0).unwrap();
        // Exactly three re-evaluations: left, right, join — join once.
        assert_eq!(s.evaluation_count(), base + 3);
        assert_eq!(s.value("join").unwrap(), 23.0);
    }

    #[test]
    fn cycle_rejected_directly_and_transitively() {
        let mut s = chain_sheet();
        assert!(matches!(
            s.set_formula("a", "d + 1"),
            Err(SheetError::Cycle { .. })
        ));
        // Self reference.
        assert!(matches!(
            s.set_formula("e", "e + 1"),
            Err(SheetError::UnknownCell { .. }) | Err(SheetError::Cycle { .. })
        ));
        // Sheet unchanged after the rejected edit.
        assert_eq!(s.value("a").unwrap(), 1.0);
    }

    #[test]
    fn redefining_formula_updates_edges() {
        let mut s = chain_sheet();
        s.set_formula("d", "a + 100").unwrap(); // d no longer depends on c
        s.set_number("a", 2.0).unwrap();
        assert_eq!(s.value("d").unwrap(), 102.0);
        // c no longer feeds d.
        assert!(!s.dependents_of("c").contains("d"));
    }

    #[test]
    fn formula_referencing_missing_cell_fails_cleanly() {
        let mut s = Sheet::new();
        let err = s.set_formula("y", "ghost * 2").unwrap_err();
        assert!(matches!(err, SheetError::UnknownCell { .. }));
        assert!(!s.contains("y"));
    }

    #[test]
    fn overwriting_formula_with_literal_freezes_value() {
        let mut s = chain_sheet();
        s.set_number("c", 42.0).unwrap();
        assert_eq!(s.value("d").unwrap(), 42.0 * 42.0);
        s.set_number("a", 7.0).unwrap();
        // b still recomputes, c is frozen.
        assert_eq!(s.value("b").unwrap(), 14.0);
        assert_eq!(s.value("c").unwrap(), 42.0);
    }

    #[test]
    fn remove_protects_referenced_cells() {
        let mut s = chain_sheet();
        assert!(s.remove("a").is_err());
        s.remove("d").unwrap();
        assert!(!s.contains("d"));
        // Now c has no dependents and can go.
        s.remove("c").unwrap();
    }

    #[test]
    fn non_finite_results_rejected() {
        let mut s = Sheet::new();
        s.set_number("zero", 0.0).unwrap();
        let err = s.set_formula("boom", "1 / zero").unwrap_err();
        assert!(matches!(err, SheetError::NonFinite { .. }));
        assert!(!s.contains("boom"));
        assert!(s.set_number("nan_in", f64::NAN).is_err());
    }

    #[test]
    fn invalid_names_rejected() {
        let mut s = Sheet::new();
        assert!(s.set_number("9lives", 1.0).is_err());
        assert!(s.set_number("", 1.0).is_err());
        assert!(s.set_number("has space", 1.0).is_err());
        assert!(s.set_number("ok.name_2", 1.0).is_ok());
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut s = chain_sheet();
        s.set_number("a", 3.5).unwrap();
        let incremental: Vec<f64> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| s.value(n).unwrap())
            .collect();
        s.recompute_all().unwrap();
        let full: Vec<f64> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| s.value(n).unwrap())
            .collect();
        assert_eq!(incremental, full);
    }

    #[test]
    fn explain_renders_the_dependency_tree() {
        let s = chain_sheet();
        let text = s.explain("d").unwrap();
        // Root shows the formula and value; children are indented.
        assert!(text.starts_with("d = c * c  [9]"));
        assert!(text.contains("└─ c = b + 1  [3]"));
        assert!(text.contains("b = a * 2  [2]"));
        assert!(text.contains("a  [1]"));
        // Depth increases along the chain.
        let a_line = text.lines().find(|l| l.contains("a  [1]")).unwrap();
        let c_line = text.lines().find(|l| l.contains("c = ")).unwrap();
        assert!(a_line.find('─').unwrap() > c_line.find('─').unwrap());
    }

    #[test]
    fn explain_literal_and_missing() {
        let s = chain_sheet();
        assert!(s.explain("a").unwrap().starts_with("a  [1]"));
        assert!(s.explain("ghost").is_err());
    }

    #[test]
    fn json_round_trip_restores_values() {
        let s = chain_sheet();
        let json = s.to_json().unwrap();
        let restored = Sheet::from_json(&json).unwrap();
        for name in ["a", "b", "c", "d"] {
            assert_eq!(restored.value(name).unwrap(), s.value(name).unwrap());
        }
    }

    #[test]
    fn json_round_trip_preserves_formulas_dynamically() {
        let s = chain_sheet();
        let mut restored = Sheet::from_json(&s.to_json().unwrap()).unwrap();
        restored.set_number("a", 10.0).unwrap();
        assert_eq!(restored.value("d").unwrap(), 441.0); // (10*2+1)²
    }
}
