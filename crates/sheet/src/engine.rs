//! The cell engine: storage, dependency graph, compiled incremental
//! recompute.
//!
//! Recalculation is the compiled-recalc design: every formula is lowered
//! once to a stack-bytecode [`Program`] (cached per cell, invalidated on
//! formula edits), and the dependency graph is leveled into a
//! [`CalcGraph`] — topological *levels* rebuilt only on structural edits.
//! An edit marks the edited cell's dependents dirty and walks the levels
//! in order; cells inside one level are independent by construction, so a
//! [`LevelMap`] may fan them out across worker threads. A recomputed cell
//! whose value is bit-equal to its previous value stops propagation to
//! its dependents (**value cutoff**).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize, Value};

use crate::compile::{compile, Program, Vm};
use crate::{parse, Expr, SheetError};

/// What a cell holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellContent {
    /// A literal number (an input cell).
    Number(f64),
    /// A formula (a derived cell). The source text is kept for
    /// serialization and display; the AST is re-parsed on load.
    Formula {
        /// The formula source text.
        source_text: String,
        /// The parsed expression (not serialized; rebuilt from the text).
        #[serde(skip, default)]
        expr: Option<Expr>,
    },
}

/// Counters from the most recent recompute wave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Formula cells whose compiled programs ran.
    pub evaluated: u64,
    /// Cells whose new value was bit-equal to the old one, so propagation
    /// to their dependents stopped there (value cutoff). A literal edit
    /// that doesn't change the stored bits counts as one cut.
    pub cut: u64,
    /// Topological levels the wave touched.
    pub levels: usize,
}

/// Strategy for evaluating the independent cells of one topological level.
///
/// The serial default runs inline. `monityre-core` provides a
/// `SweepExecutor`-backed implementation that chunks wide levels across
/// worker threads (respecting `MONITYRE_THREADS`); install it with
/// [`Sheet::set_level_map`]. Implementations must return exactly `count`
/// results, with `out[i] == eval(i)` — they may only reorder *when* each
/// task runs, never what it computes, so parallel recompute stays
/// bit-identical to serial.
pub trait LevelMap: fmt::Debug + Send + Sync {
    /// Evaluates tasks `0..count`; `eval(i)` is pure and thread-safe.
    fn map_level(&self, count: usize, eval: &(dyn Fn(usize) -> f64 + Sync)) -> Vec<f64>;
}

/// The inline (single-threaded) level evaluator.
#[derive(Debug, Clone, Copy, Default)]
struct SerialLevelMap;

impl LevelMap for SerialLevelMap {
    fn map_level(&self, count: usize, eval: &(dyn Fn(usize) -> f64 + Sync)) -> Vec<f64> {
        (0..count).map(eval).collect()
    }
}

/// A compiled formula node: its program plus the slot→cell-id mapping.
#[derive(Debug, Clone)]
struct Node {
    program: Arc<Program>,
    /// Cell ids aligned with [`Program::cells`] slots.
    deps: Vec<usize>,
}

/// The leveled calculation graph: cells interned to dense ids, formulas
/// compiled, and the DAG stratified into topological levels (a cell's
/// level is one more than the highest level among its formula
/// dependencies; literal-only formulas are level 0). Rebuilt only on
/// structural edits; value edits reuse it unchanged.
#[derive(Debug, Clone)]
struct CalcGraph {
    /// id → name, in sorted-name order (deterministic ids).
    names: Vec<String>,
    ids: BTreeMap<String, usize>,
    /// id → current value (mirror of the sheet's value map).
    values: Vec<f64>,
    /// id → compiled node (`None` for literals).
    nodes: Vec<Option<Node>>,
    /// id → dependent formula ids, ascending.
    dependents: Vec<Vec<usize>>,
    /// id → topological level (`usize::MAX` for literals).
    level_of: Vec<usize>,
    /// Formula ids per level, ascending within each level.
    levels: Vec<Vec<usize>>,
}

impl CalcGraph {
    /// Builds the graph from the sheet's maps. `programs` must contain a
    /// compiled program for every formula cell.
    fn build(
        cells: &BTreeMap<String, CellContent>,
        values: &BTreeMap<String, f64>,
        programs: &BTreeMap<String, Arc<Program>>,
    ) -> Result<Self, SheetError> {
        let names: Vec<String> = cells.keys().cloned().collect();
        let ids: BTreeMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let n = names.len();
        let mut graph_values = Vec::with_capacity(n);
        let mut nodes: Vec<Option<Node>> = Vec::with_capacity(n);
        for name in &names {
            graph_values.push(values.get(name).copied().unwrap_or(f64::NAN));
            match cells.get(name) {
                Some(CellContent::Formula { .. }) => {
                    let program = Arc::clone(
                        programs
                            .get(name)
                            .expect("every formula cell has a compiled program"),
                    );
                    let deps: Vec<usize> = program
                        .cells()
                        .iter()
                        .map(|dep| {
                            ids.get(dep)
                                .copied()
                                .ok_or_else(|| SheetError::unknown_cell(dep))
                        })
                        .collect::<Result<_, _>>()?;
                    nodes.push(Some(Node { program, deps }));
                }
                _ => nodes.push(None),
            }
        }

        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, node) in nodes.iter().enumerate() {
            if let Some(node) = node {
                for &dep in &node.deps {
                    dependents[dep].push(id);
                }
            }
        }
        for list in &mut dependents {
            list.sort_unstable();
        }

        // Kahn leveling over formula cells: a formula's indegree counts
        // only formula dependencies (literals are always ready).
        let mut indegree = vec![0usize; n];
        let mut formula_count = 0usize;
        for node in nodes.iter().flatten() {
            formula_count += 1;
            let _ = node;
        }
        for (id, node) in nodes.iter().enumerate() {
            if let Some(node) = node {
                indegree[id] = node
                    .deps
                    .iter()
                    .filter(|&&dep| nodes[dep].is_some())
                    .count();
            }
        }
        let mut level_of = vec![usize::MAX; n];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let mut frontier: Vec<usize> = (0..n)
            .filter(|&id| nodes[id].is_some() && indegree[id] == 0)
            .collect();
        let mut leveled = 0usize;
        while !frontier.is_empty() {
            frontier.sort_unstable();
            let level = levels.len();
            let mut next = Vec::new();
            for &id in &frontier {
                level_of[id] = level;
                leveled += 1;
                for &dependent in &dependents[id] {
                    indegree[dependent] -= 1;
                    if indegree[dependent] == 0 {
                        next.push(dependent);
                    }
                }
            }
            levels.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        if leveled != formula_count {
            // Unreachable through the public API (edits reject cycles);
            // kept as a defensive check rather than a panic.
            let stuck = (0..n)
                .find(|&id| nodes[id].is_some() && level_of[id] == usize::MAX)
                .expect("an unleveled formula cell exists");
            return Err(SheetError::cycle(&names[stuck]));
        }
        Ok(Self {
            names,
            ids,
            values: graph_values,
            nodes,
            dependents,
            level_of,
            levels,
        })
    }
}

/// The dynamic spreadsheet: named cells, formulas, compiled incremental
/// recompute.
///
/// Editing a cell re-evaluates at most its transitive dependents, level by
/// level, and stops early wherever a recomputed value is bit-equal to the
/// old one (value cutoff); [`Sheet::evaluation_count`] exposes how many
/// formula evaluations have run, so the incrementality is testable (and is
/// measured by the EXP-SHEET experiment).
///
/// ```
/// use monityre_sheet::Sheet;
///
/// # fn main() -> Result<(), monityre_sheet::SheetError> {
/// let mut sheet = Sheet::new();
/// sheet.set_number("round_ms", 114.0)?;
/// sheet.set_number("dsp.active_uw", 620.0)?;
/// sheet.set_formula("dsp.energy_uj", "dsp.active_uw * 5.0 / 1000.0")?;
/// sheet.set_formula("budget_uj", "dsp.energy_uj + 2.0")?;
/// assert!((sheet.value("budget_uj")? - 5.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sheet {
    cells: BTreeMap<String, CellContent>,
    values: BTreeMap<String, f64>,
    /// Reverse dependency edges: cell → cells whose formulas reference it.
    dependents: BTreeMap<String, BTreeSet<String>>,
    /// Compiled-program cache, keyed by cell; an entry is dropped when its
    /// cell's formula is edited or removed and survives graph rebuilds.
    programs: BTreeMap<String, Arc<Program>>,
    /// The leveled graph; `None` after a structural edit until the next
    /// recompute needs it.
    graph: Option<CalcGraph>,
    level_map: Arc<dyn LevelMap>,
    evaluations: u64,
    cuts: u64,
    last: RecomputeStats,
}

impl Default for Sheet {
    fn default() -> Self {
        Self {
            cells: BTreeMap::new(),
            values: BTreeMap::new(),
            dependents: BTreeMap::new(),
            programs: BTreeMap::new(),
            graph: None,
            level_map: Arc::new(SerialLevelMap),
            evaluations: 0,
            cuts: 0,
            last: RecomputeStats::default(),
        }
    }
}

impl Sheet {
    /// Creates an empty sheet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sheet has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether a cell exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.cells.contains_key(name)
    }

    /// Iterates over cell names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// The content of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn content(&self, name: &str) -> Result<&CellContent, SheetError> {
        self.cells
            .get(name)
            .ok_or_else(|| SheetError::unknown_cell(name))
    }

    /// The current value of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn value(&self, name: &str) -> Result<f64, SheetError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| SheetError::unknown_cell(name))
    }

    /// Total formula evaluations performed so far (for incrementality
    /// measurements).
    #[must_use]
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations
    }

    /// Total cells cut so far: recomputes (or literal edits) whose result
    /// was bit-equal to the stored value, stopping propagation.
    #[must_use]
    pub fn cutoff_count(&self) -> u64 {
        self.cuts
    }

    /// Counters from the most recent edit's recompute wave.
    #[must_use]
    pub fn last_recompute(&self) -> RecomputeStats {
        self.last
    }

    /// Installs the level evaluation strategy (see [`LevelMap`]). The
    /// default runs levels inline on the calling thread.
    pub fn set_level_map(&mut self, level_map: Arc<dyn LevelMap>) {
        self.level_map = level_map;
    }

    /// Forces compilation: lowers any uncompiled formulas to bytecode and
    /// rebuilds the leveled graph if a structural edit invalidated it.
    /// Recompute paths do this lazily; benchmarks call it to take graph
    /// construction out of the timed region.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from formulas whose ASTs must be rebuilt
    /// (only possible for cells deserialized from tampered input).
    pub fn compile(&mut self) -> Result<(), SheetError> {
        self.ensure_graph()
    }

    /// The width of each topological level of the compiled graph (compiling
    /// it first if needed). Level `i + 1` cells depend on level `≤ i`
    /// results; cells within one level are independent.
    ///
    /// # Errors
    ///
    /// Propagates [`Sheet::compile`] errors.
    pub fn level_widths(&mut self) -> Result<Vec<usize>, SheetError> {
        self.ensure_graph()?;
        Ok(self
            .graph
            .as_ref()
            .map(|g| g.levels.iter().map(Vec::len).collect())
            .unwrap_or_default())
    }

    /// Sets (or overwrites) a literal number cell and recomputes its
    /// dependents. Writing a bit-identical value is a no-op: the cutoff
    /// applies at the source, and no dependent is re-evaluated.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::InvalidName`] for malformed names or
    /// [`SheetError::NonFinite`] for non-finite inputs.
    pub fn set_number(&mut self, name: &str, value: f64) -> Result<(), SheetError> {
        validate_name(name)?;
        if !value.is_finite() {
            return Err(SheetError::non_finite(name));
        }
        if let Some(CellContent::Number(old)) = self.cells.get(name) {
            // Value-only edit: the graph structure is untouched.
            if old.to_bits() == value.to_bits() {
                self.cuts += 1;
                self.last = RecomputeStats {
                    evaluated: 0,
                    cut: 1,
                    levels: 0,
                };
                return Ok(());
            }
            self.cells
                .insert(name.to_owned(), CellContent::Number(value));
            self.values.insert(name.to_owned(), value);
            if let Some(graph) = self.graph.as_mut() {
                let id = graph.ids[name];
                graph.values[id] = value;
            }
            return self.recompute_from(name);
        }
        // New cell, or a formula overwritten by a literal: structural.
        self.unlink(name);
        self.programs.remove(name);
        self.graph = None;
        self.cells
            .insert(name.to_owned(), CellContent::Number(value));
        self.values.insert(name.to_owned(), value);
        self.recompute_from(name)
    }

    /// Sets (or overwrites) a formula cell and recomputes it plus its
    /// dependents. The formula is compiled to bytecode; the cell's cached
    /// program is invalidated and the graph's levels are rebuilt (lazily)
    /// because the edit is structural.
    ///
    /// # Errors
    ///
    /// * [`SheetError::Parse`] — the formula does not parse;
    /// * [`SheetError::UnknownCell`] — a referenced cell does not exist
    ///   yet (build sheets bottom-up);
    /// * [`SheetError::Cycle`] — the formula would (transitively) depend
    ///   on itself;
    /// * [`SheetError::NonFinite`] — the formula evaluates to NaN/∞.
    ///
    /// On error the sheet is left unchanged.
    pub fn set_formula(&mut self, name: &str, source_text: &str) -> Result<(), SheetError> {
        validate_name(name)?;
        let expr = parse(source_text)?;
        let deps = expr.dependencies();
        for dep in &deps {
            if !self.cells.contains_key(dep) {
                return Err(SheetError::unknown_cell(dep));
            }
        }
        // Cycle check: would `name` be reachable from any dep through the
        // *current* forward-dependency edges (plus the new edge set)? A
        // brand-new cell cannot be referenced by any existing formula, so
        // only redefinitions pay for the traversal (keeps bottom-up bulk
        // builds linear).
        if deps.contains(name)
            || (self.cells.contains_key(name) && deps.iter().any(|d| self.reaches(d, name)))
        {
            return Err(SheetError::cycle(name));
        }
        // Trial evaluation (through the retained AST interpreter) before
        // mutating anything.
        let value = self.evaluate(&expr, name)?;

        self.unlink(name);
        for dep in &deps {
            self.dependents
                .entry(dep.clone())
                .or_default()
                .insert(name.to_owned());
        }
        self.programs
            .insert(name.to_owned(), Arc::new(compile(&expr)));
        self.graph = None;
        self.cells.insert(
            name.to_owned(),
            CellContent::Formula {
                source_text: source_text.to_owned(),
                expr: Some(expr),
            },
        );
        self.values.insert(name.to_owned(), value);
        self.recompute_from(name)
    }

    /// Removes a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::Cycle`] — reported as a dependency conflict —
    /// when other formulas still reference the cell, or
    /// [`SheetError::UnknownCell`] when absent.
    pub fn remove(&mut self, name: &str) -> Result<(), SheetError> {
        if !self.cells.contains_key(name) {
            return Err(SheetError::unknown_cell(name));
        }
        if self.dependents.get(name).is_some_and(|d| !d.is_empty()) {
            return Err(SheetError::cycle(name));
        }
        self.unlink(name);
        self.cells.remove(name);
        self.values.remove(name);
        self.dependents.remove(name);
        self.programs.remove(name);
        self.graph = None;
        Ok(())
    }

    /// Forward dependencies of a cell (empty for literals).
    #[must_use]
    pub fn dependencies_of(&self, name: &str) -> BTreeSet<String> {
        match self.cells.get(name) {
            Some(CellContent::Formula { expr: Some(e), .. }) => e.dependencies(),
            _ => BTreeSet::new(),
        }
    }

    /// Cells whose formulas reference `name`, directly.
    #[must_use]
    pub fn dependents_of(&self, name: &str) -> BTreeSet<String> {
        self.dependents.get(name).cloned().unwrap_or_default()
    }

    /// Renders a cell's dependency tree with current values — the
    /// "where does this number come from?" view an engineer expects from
    /// the spreadsheet.
    ///
    /// ```text
    /// acq.total_uw = adc.active_uw + afe.active_uw  [290]
    /// ├─ adc.active_uw  [210]
    /// └─ afe.active_uw  [80]
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn explain(&self, name: &str) -> Result<String, SheetError> {
        if !self.cells.contains_key(name) {
            return Err(SheetError::unknown_cell(name));
        }
        // Iterative pre-order walk (an explicit stack instead of
        // recursion, so arbitrarily deep chains cannot overflow the call
        // stack).
        let mut out = String::new();
        let mut stack: Vec<(String, String, bool, bool)> =
            vec![(name.to_owned(), String::new(), true, true)];
        while let Some((name, prefix, is_last, is_root)) = stack.pop() {
            let value = self.values.get(&name).copied().unwrap_or(f64::NAN);
            let header = match self.cells.get(&name) {
                Some(CellContent::Formula { source_text, .. }) => {
                    format!("{name} = {source_text}  [{value}]")
                }
                _ => format!("{name}  [{value}]"),
            };
            if is_root {
                out.push_str(&header);
            } else {
                out.push_str(&prefix);
                out.push_str(if is_last { "└─ " } else { "├─ " });
                out.push_str(&header);
            }
            out.push('\n');
            let deps: Vec<String> = self.dependencies_of(&name).into_iter().collect();
            let child_prefix = if is_root {
                String::new()
            } else {
                format!("{prefix}{}", if is_last { "   " } else { "│  " })
            };
            for (i, dep) in deps.iter().enumerate().rev() {
                stack.push((
                    dep.clone(),
                    child_prefix.clone(),
                    i == deps.len() - 1,
                    false,
                ));
            }
        }
        Ok(out)
    }

    /// Re-evaluates every formula cell from scratch, level by level (used
    /// after deserialization, by the EXP-SHEET full-rebuild benchmark, and
    /// by tests as the ground truth the incremental path must match). No
    /// cutoff applies: every formula runs exactly once.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn recompute_all(&mut self) -> Result<(), SheetError> {
        self.ensure_graph()?;
        let Some(mut graph) = self.graph.take() else {
            return Ok(());
        };
        let result = self.wave(&mut graph, None);
        self.graph = Some(graph);
        let stats = result?;
        self.last = stats;
        Ok(())
    }

    /// Serializes the sheet (cell contents only; values are derived).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a sheet serialized with [`Sheet::to_json`], re-parsing and
    /// recompiling formulas and recomputing all values bottom-up.
    ///
    /// # Errors
    ///
    /// Returns a boxed error on malformed JSON, unparsable formulas, or
    /// inconsistent references.
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_str(json)?)
    }

    // -- internals --------------------------------------------------------

    /// Rebuilds a sheet from bare cell contents: literals first, then
    /// formulas in dependency order (a single Kahn pass over the parsed
    /// dependency sets — no quadratic retry). Every formula's AST is
    /// re-parsed, recompiled, and re-evaluated, so loaded values are
    /// always fresh.
    fn from_cells(cells: BTreeMap<String, CellContent>) -> Result<Self, SheetError> {
        let mut sheet = Sheet::new();
        let mut formulas: BTreeMap<String, (String, BTreeSet<String>)> = BTreeMap::new();
        for (name, content) in cells {
            match content {
                CellContent::Number(v) => sheet.set_number(&name, v)?,
                CellContent::Formula { source_text, .. } => {
                    let deps = parse(&source_text)?.dependencies();
                    formulas.insert(name, (source_text, deps));
                }
            }
        }
        // Kahn over the pending formulas: a formula is ready when all its
        // formula-dependencies are inserted (literal deps already are).
        let mut pending_deps: BTreeMap<String, usize> = BTreeMap::new();
        let mut waiters: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, (_, deps)) in &formulas {
            let mut count = 0usize;
            for dep in deps {
                if formulas.contains_key(dep) {
                    count += 1;
                    waiters.entry(dep.clone()).or_default().push(name.clone());
                } else if !sheet.contains(dep) {
                    return Err(SheetError::unknown_cell(dep));
                }
            }
            pending_deps.insert(name.clone(), count);
        }
        let mut ready: Vec<String> = pending_deps
            .iter()
            .filter(|(_, &count)| count == 0)
            .map(|(name, _)| name.clone())
            .collect();
        let mut inserted = 0usize;
        while let Some(name) = ready.pop() {
            let (source_text, _) = &formulas[&name];
            sheet.set_formula(&name, source_text)?;
            inserted += 1;
            if let Some(dependents) = waiters.get(&name) {
                for dependent in dependents {
                    let count = pending_deps
                        .get_mut(dependent)
                        .expect("waiter is a pending formula");
                    *count -= 1;
                    if *count == 0 {
                        ready.push(dependent.clone());
                    }
                }
            }
        }
        if inserted != formulas.len() {
            let stuck = pending_deps
                .iter()
                .find(|(_, &count)| count > 0)
                .map(|(name, _)| name.clone())
                .expect("a stalled formula exists");
            return Err(SheetError::cycle(&stuck));
        }
        Ok(sheet)
    }

    /// Removes `name`'s outgoing dependency edges (before re-definition).
    fn unlink(&mut self, name: &str) {
        let old_deps = self.dependencies_of(name);
        for dep in old_deps {
            if let Some(set) = self.dependents.get_mut(&dep) {
                set.remove(name);
            }
        }
    }

    /// Whether `to` is reachable from `from` along forward dependency
    /// edges (i.e. `from`'s formula transitively references `to`).
    fn reaches(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let mut stack: Vec<String> = self.dependencies_of(from).into_iter().collect();
        let mut seen = BTreeSet::new();
        while let Some(current) = stack.pop() {
            if current == to {
                return true;
            }
            if seen.insert(current.clone()) {
                stack.extend(self.dependencies_of(&current));
            }
        }
        false
    }

    /// The AST interpreter, retained as the trial evaluator for new
    /// formulas and as the reference the compiled engine is property-tested
    /// against.
    fn evaluate(&mut self, expr: &Expr, name: &str) -> Result<f64, SheetError> {
        self.evaluations += 1;
        let values = &self.values;
        let value = expr.eval(&|dep: &str| {
            values
                .get(dep)
                .copied()
                .ok_or_else(|| SheetError::unknown_cell(dep))
        })?;
        if !value.is_finite() {
            return Err(SheetError::non_finite(name));
        }
        Ok(value)
    }

    /// Compiles missing programs and rebuilds the leveled graph if a
    /// structural edit invalidated it.
    fn ensure_graph(&mut self) -> Result<(), SheetError> {
        if self.graph.is_some() {
            return Ok(());
        }
        for (name, content) in &self.cells {
            if let CellContent::Formula { source_text, expr } = content {
                if !self.programs.contains_key(name) {
                    let program = match expr {
                        Some(e) => compile(e),
                        None => compile(&parse(source_text)?),
                    };
                    self.programs.insert(name.clone(), Arc::new(program));
                }
            }
        }
        self.graph = Some(CalcGraph::build(&self.cells, &self.values, &self.programs)?);
        Ok(())
    }

    /// Recomputes the transitive dependents of `name` level by level with
    /// value cutoff.
    fn recompute_from(&mut self, name: &str) -> Result<(), SheetError> {
        if self.dependents.get(name).is_none_or(BTreeSet::is_empty) {
            self.last = RecomputeStats::default();
            return Ok(());
        }
        self.ensure_graph()?;
        let Some(mut graph) = self.graph.take() else {
            return Ok(());
        };
        let seed = graph.ids[name];
        let result = self.wave(&mut graph, Some(seed));
        self.graph = Some(graph);
        let stats = result?;
        self.last = stats;
        Ok(())
    }

    /// One recompute wave over the leveled graph. With a seed, only the
    /// seed's transitive dependents are dirty and value cutoff prunes the
    /// frontier; with `None` every formula cell recomputes (full rebuild,
    /// no cutoff). Wide levels fan out through the installed [`LevelMap`];
    /// evaluation counts are merged centrally so
    /// [`Sheet::evaluation_count`] is thread-count independent.
    fn wave(
        &mut self,
        graph: &mut CalcGraph,
        seed: Option<usize>,
    ) -> Result<RecomputeStats, SheetError> {
        let full = seed.is_none();
        let n = graph.names.len();
        let mut stats = RecomputeStats::default();
        let mut dirty = vec![false; n];
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); graph.levels.len()];
        match seed {
            Some(seed) => {
                for &dependent in &graph.dependents[seed] {
                    dirty[dependent] = true;
                    buckets[graph.level_of[dependent]].push(dependent);
                }
            }
            None => {
                for (level, cells) in graph.levels.iter().enumerate() {
                    buckets[level] = cells.clone();
                }
            }
        }
        let level_map = Arc::clone(&self.level_map);
        for level in 0..buckets.len() {
            let mut tasks = std::mem::take(&mut buckets[level]);
            if tasks.is_empty() {
                continue;
            }
            tasks.sort_unstable();
            stats.levels += 1;
            let results = {
                let graph = &*graph;
                let tasks = &tasks;
                let eval = |i: usize| {
                    let node = graph.nodes[tasks[i]]
                        .as_ref()
                        .expect("level cells are formula cells");
                    Vm::new().run(&node.program, |slot| graph.values[node.deps[slot]])
                };
                if tasks.len() == 1 {
                    vec![eval(0)]
                } else {
                    level_map.map_level(tasks.len(), &eval)
                }
            };
            debug_assert_eq!(results.len(), tasks.len());
            self.evaluations += tasks.len() as u64;
            stats.evaluated += tasks.len() as u64;
            for (i, &cell) in tasks.iter().enumerate() {
                let value = results[i];
                if !value.is_finite() {
                    return Err(SheetError::non_finite(&graph.names[cell]));
                }
                let changed = value.to_bits() != graph.values[cell].to_bits();
                if changed {
                    graph.values[cell] = value;
                    self.values.insert(graph.names[cell].clone(), value);
                }
                if full {
                    continue;
                }
                if changed {
                    for &dependent in &graph.dependents[cell] {
                        if !dirty[dependent] {
                            dirty[dependent] = true;
                            buckets[graph.level_of[dependent]].push(dependent);
                        }
                    }
                } else {
                    stats.cut += 1;
                    self.cuts += 1;
                }
            }
        }
        Ok(stats)
    }
}

impl Serialize for Sheet {
    fn to_value(&self) -> Value {
        self.cells.to_value()
    }
}

impl Deserialize for Sheet {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let cells = BTreeMap::<String, CellContent>::from_value(value)?;
        Sheet::from_cells(cells).map_err(serde::Error::custom)
    }
}

fn validate_name(name: &str) -> Result<(), SheetError> {
    let mut chars = name.chars();
    let valid = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        }
        _ => false,
    };
    if valid {
        Ok(())
    } else {
        Err(SheetError::invalid_name(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_sheet() -> Sheet {
        let mut s = Sheet::new();
        s.set_number("a", 1.0).unwrap();
        s.set_formula("b", "a * 2").unwrap();
        s.set_formula("c", "b + 1").unwrap();
        s.set_formula("d", "c * c").unwrap();
        s
    }

    #[test]
    fn literal_and_formula_values() {
        let s = chain_sheet();
        assert_eq!(s.value("a").unwrap(), 1.0);
        assert_eq!(s.value("b").unwrap(), 2.0);
        assert_eq!(s.value("c").unwrap(), 3.0);
        assert_eq!(s.value("d").unwrap(), 9.0);
    }

    #[test]
    fn edit_propagates_through_chain() {
        let mut s = chain_sheet();
        s.set_number("a", 5.0).unwrap();
        assert_eq!(s.value("b").unwrap(), 10.0);
        assert_eq!(s.value("c").unwrap(), 11.0);
        assert_eq!(s.value("d").unwrap(), 121.0);
    }

    #[test]
    fn recompute_is_incremental() {
        let mut s = chain_sheet();
        s.set_number("x", 100.0).unwrap(); // unrelated cell
        let before = s.evaluation_count();
        s.set_number("x", 200.0).unwrap(); // no dependents
        assert_eq!(s.evaluation_count(), before);
        s.set_number("a", 2.0).unwrap(); // three dependents
        assert_eq!(s.evaluation_count(), before + 3);
    }

    #[test]
    fn diamond_dependencies_evaluate_once_in_order() {
        let mut s = Sheet::new();
        s.set_number("x", 1.0).unwrap();
        s.set_formula("left", "x + 1").unwrap();
        s.set_formula("right", "x * 10").unwrap();
        s.set_formula("join", "left + right").unwrap();
        let base = s.evaluation_count();
        s.set_number("x", 2.0).unwrap();
        // Exactly three re-evaluations: left, right, join — join once.
        assert_eq!(s.evaluation_count(), base + 3);
        assert_eq!(s.value("join").unwrap(), 23.0);
    }

    #[test]
    fn noop_edit_cuts_at_the_source() {
        let mut s = chain_sheet();
        let evals = s.evaluation_count();
        let cuts = s.cutoff_count();
        s.set_number("a", 1.0).unwrap(); // bit-identical rewrite
        assert_eq!(s.evaluation_count(), evals, "no dependent re-evaluated");
        assert_eq!(s.cutoff_count(), cuts + 1);
        assert_eq!(
            s.last_recompute(),
            RecomputeStats {
                evaluated: 0,
                cut: 1,
                levels: 0
            }
        );
        assert_eq!(s.value("d").unwrap(), 9.0);
    }

    #[test]
    fn value_cutoff_stops_propagation_mid_graph() {
        let mut s = Sheet::new();
        s.set_number("x", 5.0).unwrap();
        s.set_formula("sat", "clamp(x, 0, 1)").unwrap(); // saturates at 1
        s.set_formula("down", "sat * 100").unwrap();
        s.set_formula("deeper", "down + 1").unwrap();
        let evals = s.evaluation_count();
        s.set_number("x", 7.0).unwrap(); // sat recomputes to 1 again
                                         // Only `sat` ran; `down` and `deeper` were cut off.
        assert_eq!(s.evaluation_count(), evals + 1);
        assert_eq!(s.last_recompute().cut, 1);
        assert_eq!(s.value("deeper").unwrap(), 101.0);
    }

    #[test]
    fn cycle_rejected_directly_and_transitively() {
        let mut s = chain_sheet();
        assert!(matches!(
            s.set_formula("a", "d + 1"),
            Err(SheetError::Cycle { .. })
        ));
        // Self reference.
        assert!(matches!(
            s.set_formula("e", "e + 1"),
            Err(SheetError::UnknownCell { .. }) | Err(SheetError::Cycle { .. })
        ));
        // Sheet unchanged after the rejected edit.
        assert_eq!(s.value("a").unwrap(), 1.0);
    }

    #[test]
    fn redefining_formula_updates_edges() {
        let mut s = chain_sheet();
        s.set_formula("d", "a + 100").unwrap(); // d no longer depends on c
        s.set_number("a", 2.0).unwrap();
        assert_eq!(s.value("d").unwrap(), 102.0);
        // c no longer feeds d.
        assert!(!s.dependents_of("c").contains("d"));
    }

    #[test]
    fn formula_referencing_missing_cell_fails_cleanly() {
        let mut s = Sheet::new();
        let err = s.set_formula("y", "ghost * 2").unwrap_err();
        assert!(matches!(err, SheetError::UnknownCell { .. }));
        assert!(!s.contains("y"));
    }

    #[test]
    fn overwriting_formula_with_literal_freezes_value() {
        let mut s = chain_sheet();
        s.set_number("c", 42.0).unwrap();
        assert_eq!(s.value("d").unwrap(), 42.0 * 42.0);
        s.set_number("a", 7.0).unwrap();
        // b still recomputes, c is frozen.
        assert_eq!(s.value("b").unwrap(), 14.0);
        assert_eq!(s.value("c").unwrap(), 42.0);
    }

    #[test]
    fn remove_protects_referenced_cells() {
        let mut s = chain_sheet();
        assert!(s.remove("a").is_err());
        s.remove("d").unwrap();
        assert!(!s.contains("d"));
        // Now c has no dependents and can go.
        s.remove("c").unwrap();
    }

    #[test]
    fn non_finite_results_rejected() {
        let mut s = Sheet::new();
        s.set_number("zero", 0.0).unwrap();
        let err = s.set_formula("boom", "1 / zero").unwrap_err();
        assert!(matches!(err, SheetError::NonFinite { .. }));
        assert!(!s.contains("boom"));
        assert!(s.set_number("nan_in", f64::NAN).is_err());
    }

    #[test]
    fn non_finite_mid_wave_is_reported() {
        let mut s = Sheet::new();
        s.set_number("x", 1.0).unwrap();
        s.set_formula("inv", "1 / x").unwrap();
        let err = s.set_number("x", 0.0).unwrap_err();
        assert!(matches!(err, SheetError::NonFinite { .. }));
        // Later edits still work: the engine state stays consistent.
        s.set_number("x", 4.0).unwrap();
        assert_eq!(s.value("inv").unwrap(), 0.25);
    }

    #[test]
    fn invalid_names_rejected() {
        let mut s = Sheet::new();
        assert!(s.set_number("9lives", 1.0).is_err());
        assert!(s.set_number("", 1.0).is_err());
        assert!(s.set_number("has space", 1.0).is_err());
        assert!(s.set_number("ok.name_2", 1.0).is_ok());
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut s = chain_sheet();
        s.set_number("a", 3.5).unwrap();
        let incremental: Vec<f64> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| s.value(n).unwrap())
            .collect();
        s.recompute_all().unwrap();
        let full: Vec<f64> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| s.value(n).unwrap())
            .collect();
        assert_eq!(incremental, full);
    }

    #[test]
    fn levels_stratify_the_graph() {
        let mut s = Sheet::new();
        s.set_number("x", 1.0).unwrap();
        s.set_formula("left", "x + 1").unwrap();
        s.set_formula("right", "x * 10").unwrap();
        s.set_formula("join", "left + right").unwrap();
        assert_eq!(s.level_widths().unwrap(), vec![2, 1]);
    }

    #[test]
    fn explain_renders_the_dependency_tree() {
        let s = chain_sheet();
        let text = s.explain("d").unwrap();
        // Root shows the formula and value; children are indented.
        assert!(text.starts_with("d = c * c  [9]"));
        assert!(text.contains("└─ c = b + 1  [3]"));
        assert!(text.contains("b = a * 2  [2]"));
        assert!(text.contains("a  [1]"));
        // Depth increases along the chain.
        let a_line = text.lines().find(|l| l.contains("a  [1]")).unwrap();
        let c_line = text.lines().find(|l| l.contains("c = ")).unwrap();
        assert!(a_line.find('─').unwrap() > c_line.find('─').unwrap());
    }

    #[test]
    fn explain_branches_use_tee_connectors() {
        let mut s = Sheet::new();
        s.set_number("x", 1.0).unwrap();
        s.set_number("y", 2.0).unwrap();
        s.set_formula("sum2", "x + y").unwrap();
        s.set_formula("top", "sum2 * 2").unwrap();
        let text = s.explain("top").unwrap();
        assert!(text.contains("├─ x  [1]"));
        assert!(text.contains("└─ y  [2]"));
    }

    #[test]
    fn explain_literal_and_missing() {
        let s = chain_sheet();
        assert!(s.explain("a").unwrap().starts_with("a  [1]"));
        assert!(s.explain("ghost").is_err());
    }

    #[test]
    fn json_round_trip_restores_values() {
        let s = chain_sheet();
        let json = s.to_json().unwrap();
        let restored = Sheet::from_json(&json).unwrap();
        for name in ["a", "b", "c", "d"] {
            assert_eq!(restored.value(name).unwrap(), s.value(name).unwrap());
        }
    }

    #[test]
    fn json_round_trip_preserves_formulas_dynamically() {
        let s = chain_sheet();
        let mut restored = Sheet::from_json(&s.to_json().unwrap()).unwrap();
        restored.set_number("a", 10.0).unwrap();
        assert_eq!(restored.value("d").unwrap(), 441.0); // (10*2+1)²
    }

    #[test]
    fn serde_round_trip_rebuilds_asts_and_values() {
        // Through serde directly (not `to_json`/`from_json`): deserialized
        // sheets must hold re-parsed ASTs and freshly recomputed values.
        let mut s = chain_sheet();
        s.set_formula("e", "min(d, 100) + sqrt(c)").unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let mut restored: Sheet = serde_json::from_str(&json).unwrap();
        for name in ["a", "b", "c", "d", "e"] {
            assert_eq!(
                restored.value(name).unwrap().to_bits(),
                s.value(name).unwrap().to_bits(),
                "cell {name}"
            );
            // ASTs are live, not just stored text.
            if matches!(
                restored.content(name).unwrap(),
                CellContent::Formula { expr: None, .. }
            ) {
                panic!("cell {name} deserialized without a rebuilt AST");
            }
        }
        // And they stay live: edits ripple.
        restored.set_number("a", 3.0).unwrap();
        assert_eq!(restored.value("d").unwrap(), 49.0);
    }

    #[test]
    fn deserializing_garbage_references_fails() {
        let json = r#"{"y": {"Formula": {"source_text": "ghost + 1"}}}"#;
        assert!(serde_json::from_str::<Sheet>(json).is_err());
    }

    #[test]
    fn deep_chain_recompute_and_explain_are_iterative() {
        // Regression test for the recursive `topo_visit`/`explain_into`
        // stack-overflow risk: a 10 000-cell chain must recompute (and a
        // deep sub-chain must render) without recursing per edge.
        const DEPTH: usize = 10_000;
        let mut s = Sheet::new();
        s.set_number("base", 1.0).unwrap();
        let mut prev = "base".to_owned();
        for i in 0..DEPTH {
            let name = format!("link{i}");
            s.set_formula(&name, &format!("{prev} + 1")).unwrap();
            prev = name;
        }
        let before = s.evaluation_count();
        s.set_number("base", 2.0).unwrap();
        assert_eq!(s.evaluation_count(), before + DEPTH as u64);
        assert_eq!(s.value(&prev).unwrap(), 2.0 + DEPTH as f64);
        assert_eq!(s.level_widths().unwrap().len(), DEPTH);
        // Explain a deep suffix of the chain (the full 10k render is
        // quadratic in output size; 2 000 levels is far past any call
        // stack while keeping the string small).
        let text = s.explain("link1999").unwrap();
        assert_eq!(text.lines().count(), 2001);
        assert!(text.ends_with("└─ base  [2]\n"));
    }

    #[test]
    fn program_cache_invalidated_on_formula_edit() {
        let mut s = Sheet::new();
        s.set_number("a", 2.0).unwrap();
        s.set_formula("f", "a * 3").unwrap();
        assert_eq!(s.value("f").unwrap(), 6.0);
        s.set_formula("f", "a + 3").unwrap();
        assert_eq!(s.value("f").unwrap(), 5.0);
        s.set_number("a", 10.0).unwrap();
        // The recompute must run the *new* program, not a stale cached one.
        assert_eq!(s.value("f").unwrap(), 13.0);
    }

    #[test]
    fn clone_preserves_engine_state() {
        let mut s = chain_sheet();
        let mut t = s.clone();
        s.set_number("a", 2.0).unwrap();
        t.set_number("a", 3.0).unwrap();
        assert_eq!(s.value("d").unwrap(), 25.0);
        assert_eq!(t.value("d").unwrap(), 49.0);
    }
}
