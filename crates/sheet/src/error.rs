//! Error type for the spreadsheet engine.

use std::error::Error;
use std::fmt;

/// Errors raised by the spreadsheet engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SheetError {
    /// A formula failed to parse.
    Parse {
        /// The formula source text.
        source_text: String,
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A referenced cell does not exist.
    UnknownCell {
        /// The missing cell's name.
        name: String,
    },
    /// Setting the cell would create a dependency cycle.
    Cycle {
        /// The cell whose edit was rejected.
        name: String,
    },
    /// A cell name is not a valid identifier.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// A formula evaluated to a non-finite number.
    NonFinite {
        /// The cell whose evaluation failed.
        name: String,
    },
}

impl SheetError {
    pub(crate) fn parse(source_text: &str, reason: impl Into<String>) -> Self {
        Self::Parse {
            source_text: source_text.to_owned(),
            reason: reason.into(),
        }
    }

    pub(crate) fn unknown_cell(name: &str) -> Self {
        Self::UnknownCell {
            name: name.to_owned(),
        }
    }

    pub(crate) fn cycle(name: &str) -> Self {
        Self::Cycle {
            name: name.to_owned(),
        }
    }

    pub(crate) fn invalid_name(name: &str) -> Self {
        Self::InvalidName {
            name: name.to_owned(),
        }
    }

    pub(crate) fn non_finite(name: &str) -> Self {
        Self::NonFinite {
            name: name.to_owned(),
        }
    }
}

impl fmt::Display for SheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse {
                source_text,
                reason,
            } => {
                write!(f, "cannot parse formula `{source_text}`: {reason}")
            }
            Self::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            Self::Cycle { name } => {
                write!(f, "setting `{name}` would create a dependency cycle")
            }
            Self::InvalidName { name } => write!(
                f,
                "invalid cell name `{name}`: use identifiers like `dsp.active_uw`"
            ),
            Self::NonFinite { name } => {
                write!(f, "formula for `{name}` evaluated to a non-finite value")
            }
        }
    }
}

impl Error for SheetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        assert!(SheetError::parse("1 +", "unexpected end")
            .to_string()
            .contains("1 +"));
        assert!(SheetError::unknown_cell("a.b").to_string().contains("a.b"));
        assert!(SheetError::cycle("x").to_string().contains("cycle"));
        assert!(SheetError::invalid_name("9bad")
            .to_string()
            .contains("9bad"));
        assert!(SheetError::non_finite("div").to_string().contains("div"));
    }
}
