//! The formula language: lexer, recursive-descent parser, evaluator.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    := cmp
//! cmp     := add (("<" | "<=" | ">" | ">=" | "==" | "!=") add)?
//! add     := mul (("+" | "-") mul)*
//! mul     := unary (("*" | "/") unary)*
//! unary   := "-" unary | power
//! power   := atom ("^" unary)?            (right-associative)
//! atom    := number | ident ("(" args ")")? | "(" expr ")"
//! ident   := [A-Za-z_][A-Za-z0-9_.]*      (dots allow namespacing)
//! ```
//!
//! Comparisons yield `1.0` / `0.0`, so `if(cond, a, b)` composes naturally.

use std::collections::BTreeSet;
use std::fmt;

use crate::SheetError;

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number(f64),
    /// A reference to another cell.
    Cell(String),
    /// A unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A function call.
    Call {
        /// The function.
        func: Func,
        /// Arguments in order.
        args: Vec<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation.
    Pow,
    /// Less-than comparison (yields 0/1).
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Minimum of ≥ 1 arguments.
    Min,
    /// Maximum of ≥ 1 arguments.
    Max,
    /// Sum of ≥ 1 arguments.
    Sum,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Base-2 exponential (`exp2(x) = 2^x`, the leakage doubling form).
    Exp2,
    /// Conditional: `if(cond, then, else)`.
    If,
    /// Clamp: `clamp(x, lo, hi)`.
    Clamp,
}

impl Func {
    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "min" => Self::Min,
            "max" => Self::Max,
            "sum" => Self::Sum,
            "abs" => Self::Abs,
            "sqrt" => Self::Sqrt,
            "exp" => Self::Exp,
            "ln" => Self::Ln,
            "exp2" => Self::Exp2,
            "if" => Self::If,
            "clamp" => Self::Clamp,
            _ => return None,
        })
    }

    fn arity_ok(self, n: usize) -> bool {
        match self {
            Self::Min | Self::Max | Self::Sum => n >= 1,
            Self::Abs | Self::Sqrt | Self::Exp | Self::Ln | Self::Exp2 => n == 1,
            Self::If | Self::Clamp => n == 3,
        }
    }
}

impl Expr {
    /// Collects every cell name referenced by the expression.
    #[must_use]
    pub fn dependencies(&self) -> BTreeSet<String> {
        let mut deps = BTreeSet::new();
        self.collect_deps(&mut deps);
        deps
    }

    fn collect_deps(&self, deps: &mut BTreeSet<String>) {
        match self {
            Self::Number(_) => {}
            Self::Cell(name) => {
                deps.insert(name.clone());
            }
            Self::Neg(inner) => inner.collect_deps(deps),
            Self::Binary { lhs, rhs, .. } => {
                lhs.collect_deps(deps);
                rhs.collect_deps(deps);
            }
            Self::Call { args, .. } => {
                for arg in args {
                    arg.collect_deps(deps);
                }
            }
        }
    }

    /// Evaluates the expression with `lookup` resolving cell references.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures (unknown cells).
    pub fn eval<F>(&self, lookup: &F) -> Result<f64, SheetError>
    where
        F: Fn(&str) -> Result<f64, SheetError>,
    {
        Ok(match self {
            Self::Number(n) => *n,
            Self::Cell(name) => lookup(name)?,
            Self::Neg(inner) => -inner.eval(lookup)?,
            Self::Binary { op, lhs, rhs } => {
                let a = lhs.eval(lookup)?;
                let b = rhs.eval(lookup)?;
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                    BinOp::Lt => f64::from(a < b),
                    BinOp::Le => f64::from(a <= b),
                    BinOp::Gt => f64::from(a > b),
                    BinOp::Ge => f64::from(a >= b),
                    BinOp::Eq => f64::from(a == b),
                    BinOp::Ne => f64::from(a != b),
                }
            }
            Self::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                // `if` is lazy in its branches to allow guarded division.
                if *func == Func::If {
                    let cond = args[0].eval(lookup)?;
                    return if cond != 0.0 {
                        args[1].eval(lookup)
                    } else {
                        args[2].eval(lookup)
                    };
                }
                for arg in args {
                    values.push(arg.eval(lookup)?);
                }
                match func {
                    Func::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
                    Func::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    Func::Sum => values.iter().sum(),
                    Func::Abs => values[0].abs(),
                    Func::Sqrt => values[0].sqrt(),
                    Func::Exp => values[0].exp(),
                    Func::Ln => values[0].ln(),
                    Func::Exp2 => values[0].exp2(),
                    Func::Clamp => {
                        values[0].clamp(values[1].min(values[2]), values[2].max(values[1]))
                    }
                    Func::If => unreachable!("handled above"),
                }
            }
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Number(n) => write!(f, "{n}"),
            Self::Cell(name) => f.write_str(name),
            Self::Neg(inner) => write!(f, "-({inner})"),
            Self::Binary { op, lhs, rhs } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Pow => "^",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            Self::Call { func, args } => {
                let name = match func {
                    Func::Min => "min",
                    Func::Max => "max",
                    Func::Sum => "sum",
                    Func::Abs => "abs",
                    Func::Sqrt => "sqrt",
                    Func::Exp => "exp",
                    Func::Ln => "ln",
                    Func::Exp2 => "exp2",
                    Func::If => "if",
                    Func::Clamp => "clamp",
                };
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
}

fn lex(src: &str) -> Result<Vec<Token>, SheetError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '^' => {
                tokens.push(Token::Caret);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    return Err(SheetError::parse(src, "single `=` (use `==`)"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SheetError::parse(src, "stray `!`"));
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '+' | '-')
                {
                    // Only consume +/- directly after an exponent marker.
                    if matches!(bytes[i] as char, '+' | '-')
                        && !matches!(bytes[i - 1] as char, 'e' | 'E')
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| SheetError::parse(src, format!("bad number `{text}`")))?;
                tokens.push(Token::Number(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_owned()));
            }
            other => {
                return Err(SheetError::parse(src, format!("unexpected `{other}`")));
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), SheetError> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            _ => Err(SheetError::parse(self.src, format!("expected {what}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SheetError> {
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, SheetError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.parse_add()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn parse_add(&mut self) -> Result<Expr, SheetError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, SheetError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, SheetError> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, SheetError> {
        let base = self.parse_atom()?;
        if matches!(self.peek(), Some(Token::Caret)) {
            self.next();
            let exp = self.parse_unary()?; // right-associative
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr, SheetError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen, "closing `)`")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let func = Func::from_name(&name).ok_or_else(|| {
                        SheetError::parse(self.src, format!("unknown function `{name}`"))
                    })?;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.peek() {
                                Some(Token::Comma) => {
                                    self.next();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&Token::RParen, "closing `)` after arguments")?;
                    if !func.arity_ok(args.len()) {
                        return Err(SheetError::parse(
                            self.src,
                            format!("wrong argument count for `{name}`"),
                        ));
                    }
                    Ok(Expr::Call { func, args })
                } else {
                    Ok(Expr::Cell(name))
                }
            }
            _ => Err(SheetError::parse(self.src, "expected a value")),
        }
    }
}

/// Parses a formula into an expression AST.
///
/// # Errors
///
/// Returns [`SheetError::Parse`] on any lexical or syntactic error.
///
/// ```
/// let expr = monityre_sheet::parse("2 * (a.b + 1)").unwrap();
/// assert_eq!(expr.dependencies().len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Expr, SheetError> {
    let tokens = lex(src)?;
    if tokens.is_empty() {
        return Err(SheetError::parse(src, "empty formula"));
    }
    let mut parser = Parser {
        src,
        tokens,
        pos: 0,
    };
    let expr = parser.parse_expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(SheetError::parse(src, "trailing input"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_closed(src: &str) -> f64 {
        parse(src)
            .unwrap()
            .eval(&|name: &str| Err(SheetError::unknown_cell(name)))
            .unwrap()
    }

    fn eval_with(src: &str, bind: &[(&str, f64)]) -> f64 {
        parse(src)
            .unwrap()
            .eval(&|name: &str| {
                bind.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| SheetError::unknown_cell(name))
            })
            .unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(eval_closed("2 + 3 * 4"), 14.0);
        assert_eq!(eval_closed("(2 + 3) * 4"), 20.0);
        assert_eq!(eval_closed("2 ^ 3 ^ 2"), 512.0); // right-associative
        assert_eq!(eval_closed("-2 ^ 2"), -4.0); // `^` binds tighter than unary minus
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval_closed("-5 + 3"), -2.0);
        assert_eq!(eval_closed("--5"), 5.0);
        assert_eq!(eval_closed("2 * -3"), -6.0);
    }

    #[test]
    fn scientific_numbers() {
        assert_eq!(eval_closed("1.5e-3 * 1000"), 1.5);
        assert_eq!(eval_closed("2E2"), 200.0);
    }

    #[test]
    fn cell_references() {
        let v = eval_with(
            "dsp.active_uw * duty",
            &[("dsp.active_uw", 600.0), ("duty", 0.05)],
        );
        assert_eq!(v, 30.0);
    }

    #[test]
    fn functions() {
        assert_eq!(eval_closed("min(3, 1, 2)"), 1.0);
        assert_eq!(eval_closed("max(3, 1, 2)"), 3.0);
        assert_eq!(eval_closed("sum(1, 2, 3, 4)"), 10.0);
        assert_eq!(eval_closed("abs(-7)"), 7.0);
        assert_eq!(eval_closed("sqrt(16)"), 4.0);
        assert!((eval_closed("exp(1)") - std::f64::consts::E).abs() < 1e-12);
        assert!((eval_closed("ln(exp(2))") - 2.0).abs() < 1e-12);
        assert_eq!(eval_closed("exp2(3)"), 8.0);
        assert_eq!(eval_closed("clamp(5, 0, 2)"), 2.0);
    }

    #[test]
    fn comparisons_and_if() {
        assert_eq!(eval_closed("3 > 2"), 1.0);
        assert_eq!(eval_closed("3 <= 2"), 0.0);
        assert_eq!(eval_closed("if(2 > 1, 10, 20)"), 10.0);
        assert_eq!(eval_closed("if(2 < 1, 10, 20)"), 20.0);
        assert_eq!(eval_closed("1 == 1"), 1.0);
        assert_eq!(eval_closed("1 != 1"), 0.0);
    }

    #[test]
    fn if_is_lazy() {
        // The false branch divides by zero but must not be evaluated…
        // (division yields inf, not an error, but laziness matters for
        // unknown-cell guards).
        let v = eval_with("if(flag, a, b)", &[("flag", 1.0), ("a", 5.0)]);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn dependencies_collected() {
        let expr = parse("min(a.x, b.y) + a.x * 2").unwrap();
        let deps: Vec<_> = expr.dependencies().into_iter().collect();
        assert_eq!(deps, vec!["a.x".to_owned(), "b.y".to_owned()]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("foo(1)").is_err()); // unknown function
        assert!(parse("min()").is_err()); // arity
        assert!(parse("if(1, 2)").is_err()); // arity
        assert!(parse("(1").is_err());
        assert!(parse("1 2").is_err()); // trailing input
        assert!(parse("a = b").is_err()); // single '='
        assert!(parse("#").is_err());
    }

    #[test]
    fn unknown_cell_propagates() {
        let expr = parse("ghost + 1").unwrap();
        let err = expr
            .eval(&|name: &str| Err(SheetError::unknown_cell(name)))
            .unwrap_err();
        assert!(matches!(err, SheetError::UnknownCell { .. }));
    }

    #[test]
    fn display_round_trips_semantics() {
        let expr = parse("2 + 3 * max(a, 4)").unwrap();
        let printed = expr.to_string();
        let reparsed = parse(&printed).unwrap();
        let v1 = expr.eval(&|_: &str| Ok(10.0)).unwrap();
        let v2 = reparsed.eval(&|_: &str| Ok(10.0)).unwrap();
        assert_eq!(v1, v2);
    }
}
