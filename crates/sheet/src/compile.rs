//! Compiling formulas to stack bytecode.
//!
//! The engine's recalc loop used to walk the [`Expr`] tree for every
//! evaluation. This module lowers each formula once into a flat
//! [`Program`] — a stack-machine bytecode — that a register-free [`Vm`]
//! replays per recompute. The lowering is *semantics-preserving to the
//! bit*: every arithmetic step is the same `f64` operation, in the same
//! order, as the interpreter in [`Expr::eval`], including the lazy `if`
//! (compiled to conditional jumps so the untaken branch never executes).
//!
//! Cell references are resolved through a slot table: `Load(i)` reads the
//! value of the `i`-th entry of [`Program::cells`]. The engine maps those
//! slots to cell ids once per graph rebuild, so the hot loop never touches
//! a string.

use std::fmt;

use crate::formula::{BinOp, Expr, Func};

/// One stack-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Inst {
    /// Push a constant.
    Const(f64),
    /// Push the value of referenced-cell slot `i` (see [`Program::cells`]).
    Load(u32),
    /// Negate the top of stack.
    Neg,
    /// Pop two values, push the binary result.
    Bin(BinOp),
    /// Pop one value, push the unary function result.
    Unary(Unary),
    /// Fold the top `argc` values with a variadic reduction.
    Fold(Fold, u32),
    /// Pop `hi`, `lo`, `x`; push `x.clamp(lo.min(hi), hi.max(lo))`.
    Clamp,
    /// Pop the condition; jump to the absolute target when it equals zero
    /// (the `else` edge of a lazy `if`).
    JumpIfZero(u32),
    /// Unconditional jump (the `end` edge after a taken `then` branch).
    Jump(u32),
}

/// Unary scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unary {
    Abs,
    Sqrt,
    Exp,
    Ln,
    Exp2,
}

/// Variadic reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fold {
    Min,
    Max,
    Sum,
}

/// A compiled formula: flat bytecode plus the referenced-cell slot table.
///
/// Programs are immutable once compiled; the engine caches one per formula
/// cell (keyed by the cell, invalidated when the formula is edited) and
/// shares it across graph rebuilds via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code: Vec<Inst>,
    cells: Vec<String>,
    max_stack: usize,
}

impl Program {
    /// The referenced cells, in `Load`-slot order (deduplicated).
    #[must_use]
    pub fn cells(&self) -> &[String] {
        &self.cells
    }

    /// Instruction count (for diagnostics and size accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions (never true for a program
    /// produced by [`compile`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The operand-stack high-water mark, so a [`Vm`] can pre-size its
    /// stack and never reallocate mid-run.
    #[must_use]
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Convenience one-shot evaluation: runs the program on a fresh [`Vm`]
    /// with `resolve` mapping referenced-cell slots to values.
    #[must_use]
    pub fn run(&self, resolve: impl Fn(usize) -> f64) -> f64 {
        Vm::new().run(self, resolve)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.code.iter().enumerate() {
            match inst {
                Inst::Const(v) => writeln!(f, "{pc:4}  const {v}")?,
                Inst::Load(slot) => {
                    writeln!(f, "{pc:4}  load  {} ; {}", slot, self.cells[*slot as usize])?;
                }
                Inst::Neg => writeln!(f, "{pc:4}  neg")?,
                Inst::Bin(op) => writeln!(f, "{pc:4}  bin   {op:?}")?,
                Inst::Unary(u) => writeln!(f, "{pc:4}  un    {u:?}")?,
                Inst::Fold(fold, n) => writeln!(f, "{pc:4}  fold  {fold:?} x{n}")?,
                Inst::Clamp => writeln!(f, "{pc:4}  clamp")?,
                Inst::JumpIfZero(t) => writeln!(f, "{pc:4}  jz    {t}")?,
                Inst::Jump(t) => writeln!(f, "{pc:4}  jmp   {t}")?,
            }
        }
        Ok(())
    }
}

/// Lowers an expression to a [`Program`].
///
/// The pass is a straightforward post-order walk: operands first, operator
/// after, `if` via a `JumpIfZero`/`Jump` diamond so the untaken branch is
/// skipped exactly like the interpreter's lazy evaluation.
#[must_use]
pub fn compile(expr: &Expr) -> Program {
    let mut builder = Builder {
        code: Vec::new(),
        cells: Vec::new(),
    };
    builder.emit(expr);
    let max_stack = stack_high_water(expr);
    Program {
        code: builder.code,
        cells: builder.cells,
        max_stack,
    }
}

struct Builder {
    code: Vec<Inst>,
    cells: Vec<String>,
}

impl Builder {
    fn slot(&mut self, name: &str) -> u32 {
        if let Some(i) = self.cells.iter().position(|c| c == name) {
            return u32::try_from(i).expect("slot table fits in u32");
        }
        self.cells.push(name.to_owned());
        u32::try_from(self.cells.len() - 1).expect("slot table fits in u32")
    }

    fn emit(&mut self, expr: &Expr) {
        match expr {
            Expr::Number(n) => self.code.push(Inst::Const(*n)),
            Expr::Cell(name) => {
                let slot = self.slot(name);
                self.code.push(Inst::Load(slot));
            }
            Expr::Neg(inner) => {
                self.emit(inner);
                self.code.push(Inst::Neg);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.emit(lhs);
                self.emit(rhs);
                self.code.push(Inst::Bin(*op));
            }
            Expr::Call { func, args } => self.emit_call(*func, args),
        }
    }

    fn emit_call(&mut self, func: Func, args: &[Expr]) {
        match func {
            Func::If => {
                // cond; jz ELSE; then; jmp END; ELSE: else; END:
                self.emit(&args[0]);
                let jz_at = self.code.len();
                self.code.push(Inst::JumpIfZero(0));
                self.emit(&args[1]);
                let jmp_at = self.code.len();
                self.code.push(Inst::Jump(0));
                let else_at = u32::try_from(self.code.len()).expect("program fits in u32");
                self.emit(&args[2]);
                let end_at = u32::try_from(self.code.len()).expect("program fits in u32");
                self.code[jz_at] = Inst::JumpIfZero(else_at);
                self.code[jmp_at] = Inst::Jump(end_at);
            }
            Func::Min | Func::Max | Func::Sum => {
                for arg in args {
                    self.emit(arg);
                }
                let fold = match func {
                    Func::Min => Fold::Min,
                    Func::Max => Fold::Max,
                    _ => Fold::Sum,
                };
                let n = u32::try_from(args.len()).expect("argument count fits in u32");
                self.code.push(Inst::Fold(fold, n));
            }
            Func::Abs | Func::Sqrt | Func::Exp | Func::Ln | Func::Exp2 => {
                self.emit(&args[0]);
                let unary = match func {
                    Func::Abs => Unary::Abs,
                    Func::Sqrt => Unary::Sqrt,
                    Func::Exp => Unary::Exp,
                    Func::Ln => Unary::Ln,
                    _ => Unary::Exp2,
                };
                self.code.push(Inst::Unary(unary));
            }
            Func::Clamp => {
                self.emit(&args[0]);
                self.emit(&args[1]);
                self.emit(&args[2]);
                self.code.push(Inst::Clamp);
            }
        }
    }
}

/// The exact operand-stack high-water mark of the compiled form of `expr`.
fn stack_high_water(expr: &Expr) -> usize {
    match expr {
        Expr::Number(_) | Expr::Cell(_) => 1,
        Expr::Neg(inner) => stack_high_water(inner),
        Expr::Binary { lhs, rhs, .. } => stack_high_water(lhs).max(1 + stack_high_water(rhs)),
        Expr::Call { func, args } => match func {
            // Branches never coexist on the stack.
            Func::If => args.iter().map(stack_high_water).max().unwrap_or(1),
            _ => args
                .iter()
                .enumerate()
                .map(|(i, arg)| i + stack_high_water(arg))
                .max()
                .unwrap_or(1)
                .max(1),
        },
    }
}

/// A register-free stack machine executing [`Program`]s.
///
/// The operand stack is reused across runs, so a `Vm` held per worker
/// amortizes the allocation over a whole level of cells.
#[derive(Debug, Clone, Default)]
pub struct Vm {
    stack: Vec<f64>,
}

impl Vm {
    /// Creates a `Vm` with an empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `program`, resolving `Load(i)` through `resolve(i)`.
    ///
    /// The caller guarantees `resolve` covers every slot in
    /// [`Program::cells`]; the engine upholds this by validating
    /// references at edit time.
    pub fn run(&mut self, program: &Program, resolve: impl Fn(usize) -> f64) -> f64 {
        let stack = &mut self.stack;
        stack.clear();
        stack.reserve(program.max_stack);
        let code = &program.code;
        let mut pc = 0usize;
        while pc < code.len() {
            match code[pc] {
                Inst::Const(v) => stack.push(v),
                Inst::Load(slot) => stack.push(resolve(slot as usize)),
                Inst::Neg => {
                    let v = stack.pop().expect("neg operand");
                    stack.push(-v);
                }
                Inst::Bin(op) => {
                    let b = stack.pop().expect("rhs operand");
                    let a = stack.pop().expect("lhs operand");
                    stack.push(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        BinOp::Pow => a.powf(b),
                        BinOp::Lt => f64::from(a < b),
                        BinOp::Le => f64::from(a <= b),
                        BinOp::Gt => f64::from(a > b),
                        BinOp::Ge => f64::from(a >= b),
                        BinOp::Eq => f64::from(a == b),
                        BinOp::Ne => f64::from(a != b),
                    });
                }
                Inst::Unary(u) => {
                    let v = stack.pop().expect("unary operand");
                    stack.push(match u {
                        Unary::Abs => v.abs(),
                        Unary::Sqrt => v.sqrt(),
                        Unary::Exp => v.exp(),
                        Unary::Ln => v.ln(),
                        Unary::Exp2 => v.exp2(),
                    });
                }
                Inst::Fold(fold, n) => {
                    let base = stack.len() - n as usize;
                    // Folded in argument order, from the same seed, with
                    // the same combining function as the interpreter —
                    // bit-identical including -0.0 and NaN behavior.
                    let value = match fold {
                        Fold::Min => stack[base..].iter().copied().fold(f64::INFINITY, f64::min),
                        Fold::Max => stack[base..]
                            .iter()
                            .copied()
                            .fold(f64::NEG_INFINITY, f64::max),
                        Fold::Sum => stack[base..].iter().sum(),
                    };
                    stack.truncate(base);
                    stack.push(value);
                }
                Inst::Clamp => {
                    let hi = stack.pop().expect("clamp hi");
                    let lo = stack.pop().expect("clamp lo");
                    let x = stack.pop().expect("clamp value");
                    stack.push(x.clamp(lo.min(hi), hi.max(lo)));
                }
                Inst::JumpIfZero(target) => {
                    let cond = stack.pop().expect("branch condition");
                    // `cond != 0.0` selects `then` in the interpreter; NaN
                    // compares unequal to zero, so NaN falls through to
                    // `then` here as well.
                    if cond == 0.0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Inst::Jump(target) => {
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        stack.pop().expect("program leaves its result on the stack")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, SheetError};

    /// Compiles `src` and runs it with `bind` resolving cell references;
    /// also evaluates the AST directly and asserts bit-identity.
    fn run_both(src: &str, bind: &[(&str, f64)]) -> f64 {
        let expr = parse(src).unwrap();
        let program = compile(&expr);
        let compiled = program.run(|slot| {
            let name = &program.cells()[slot];
            bind.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("unbound cell {name}"))
        });
        let interpreted = expr
            .eval(&|name: &str| {
                bind.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| SheetError::unknown_cell(name))
            })
            .unwrap();
        assert_eq!(
            compiled.to_bits(),
            interpreted.to_bits(),
            "`{src}`: compiled {compiled} vs interpreted {interpreted}"
        );
        compiled
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        assert_eq!(run_both("2 + 3 * 4", &[]), 14.0);
        assert_eq!(run_both("(2 + 3) * 4", &[]), 20.0);
        assert_eq!(run_both("2 ^ 3 ^ 2", &[]), 512.0);
        assert_eq!(run_both("-2 ^ 2", &[]), -4.0);
        assert_eq!(run_both("--5", &[]), 5.0);
        assert_eq!(run_both("7 / 2 - 1", &[]), 2.5);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(run_both("3 > 2", &[]), 1.0);
        assert_eq!(run_both("3 <= 2", &[]), 0.0);
        assert_eq!(run_both("1 == 1", &[]), 1.0);
        assert_eq!(run_both("1 != 1", &[]), 0.0);
        assert_eq!(run_both("2 >= 2", &[]), 1.0);
        assert_eq!(run_both("2 < 2", &[]), 0.0);
    }

    #[test]
    fn functions_match_interpreter() {
        assert_eq!(run_both("min(3, 1, 2)", &[]), 1.0);
        assert_eq!(run_both("max(3, 1, 2)", &[]), 3.0);
        assert_eq!(run_both("sum(1, 2, 3, 4)", &[]), 10.0);
        assert_eq!(run_both("abs(-7)", &[]), 7.0);
        assert_eq!(run_both("sqrt(16)", &[]), 4.0);
        assert_eq!(run_both("exp2(3)", &[]), 8.0);
        assert_eq!(run_both("clamp(5, 0, 2)", &[]), 2.0);
        assert_eq!(run_both("clamp(5, 2, 0)", &[]), 2.0); // swapped bounds
        run_both("exp(1) + ln(2)", &[]);
    }

    #[test]
    fn if_compiles_to_lazy_branches() {
        assert_eq!(run_both("if(2 > 1, 10, 20)", &[]), 10.0);
        assert_eq!(run_both("if(2 < 1, 10, 20)", &[]), 20.0);
        // The untaken branch must not execute: it loads a cell the
        // resolver would panic on.
        let expr = parse("if(flag, a, ghost)").unwrap();
        let program = compile(&expr);
        let value = program.run(|slot| match program.cells()[slot].as_str() {
            "flag" => 1.0,
            "a" => 5.0,
            other => panic!("lazy branch executed: loaded {other}"),
        });
        assert_eq!(value, 5.0);
    }

    #[test]
    fn nan_condition_takes_then_branch() {
        // `NaN != 0.0` is true, so the interpreter takes `then`.
        let v = run_both("if(n, 1, 2)", &[("n", f64::NAN)]);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn cell_slots_deduplicate() {
        let expr = parse("a + a * b + a").unwrap();
        let program = compile(&expr);
        assert_eq!(program.cells(), ["a".to_owned(), "b".to_owned()]);
        let v = program.run(|slot| [2.0, 10.0][slot]);
        assert_eq!(v, 24.0);
    }

    #[test]
    fn signed_zero_and_sum_seed_match() {
        // The interpreter folds sums from 0.0, which normalizes -0.0; the
        // VM must do exactly the same.
        run_both("sum(z)", &[("z", -0.0)]);
        run_both("min(z, 0)", &[("z", -0.0)]);
    }

    #[test]
    fn stack_high_water_is_respected() {
        let expr = parse("sum(1, 2, 3, 4, 5) + max(1, 2) * (3 - 4)").unwrap();
        let program = compile(&expr);
        assert!(program.max_stack() >= 5);
        assert!(!program.is_empty());
        assert!(program.len() >= 10);
        assert_eq!(program.run(|_| 0.0), 13.0);
    }

    #[test]
    fn display_lists_instructions() {
        let expr = parse("if(a > 0, a, -a)").unwrap();
        let program = compile(&expr);
        let listing = program.to_string();
        assert!(listing.contains("load"));
        assert!(listing.contains("jz"));
        assert!(listing.contains("jmp"));
    }

    #[test]
    fn vm_reuse_across_programs() {
        let mut vm = Vm::new();
        let p1 = compile(&parse("1 + 2").unwrap());
        let p2 = compile(&parse("sum(1, 2, 3) * 2").unwrap());
        assert_eq!(vm.run(&p1, |_| 0.0), 3.0);
        assert_eq!(vm.run(&p2, |_| 0.0), 12.0);
        assert_eq!(vm.run(&p1, |_| 0.0), 3.0);
    }
}
