//! Hosting a power database on the live sheet.
//!
//! This is the paper's workflow made concrete: the power figures of every
//! block live in spreadsheet cells; whole-node aggregates are formulas over
//! them; changing a working condition updates the figure cells and the
//! engine ripples the change through every derived cell.

use monityre_power::{OperatingMode, PowerDatabase, WorkingConditions};
use monityre_units::{Temperature, Voltage};

use crate::{Sheet, SheetError};

/// A [`Sheet`] populated from a [`PowerDatabase`].
///
/// Cell layout:
///
/// * `cond.supply_v`, `cond.temp_c` — the working-condition inputs;
/// * `<block>.active_uw`, `<block>.sleep_uw`, `<block>.leak_uw` — per-block
///   figures in µW, re-derived from the models whenever the conditions
///   change;
/// * `node.active_uw`, `node.sleep_uw`, `node.leak_uw` — whole-node
///   aggregate formulas.
///
/// ```
/// use monityre_power::{BlockPowerModel, LeakageModel, PowerDatabase};
/// use monityre_sheet::PowerSheet;
/// use monityre_units::{Power, Temperature};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut db = PowerDatabase::new();
/// db.insert(BlockPowerModel::builder("dsp")
///     .leakage(LeakageModel::with_reference(Power::from_microwatts(2.0)))
///     .build())?;
///
/// let mut sheet = PowerSheet::new(&db)?;
/// let cool = sheet.value("node.leak_uw")?;
/// sheet.set_temperature(Temperature::from_celsius(85.0), &db)?;
/// let hot = sheet.value("node.leak_uw")?;
/// assert!(hot > cool);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PowerSheet {
    sheet: Sheet,
    conditions: WorkingConditions,
}

impl PowerSheet {
    /// Builds a sheet from the database at reference conditions.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (practically unreachable for valid block
    /// names).
    pub fn new(database: &PowerDatabase) -> Result<Self, SheetError> {
        let conditions = WorkingConditions::reference();
        let mut this = Self {
            sheet: Sheet::new(),
            conditions,
        };
        this.sheet
            .set_number("cond.supply_v", conditions.supply().volts())?;
        this.sheet
            .set_number("cond.temp_c", conditions.temperature().celsius())?;
        this.refresh(database)?;

        // Aggregates: formulas over the per-block cells.
        let suffixes = MODE_CELLS
            .iter()
            .map(|(suffix, _)| *suffix)
            .chain(std::iter::once("leak_uw"));
        for suffix in suffixes {
            let terms: Vec<String> = database.names().map(|n| format!("{n}.{suffix}")).collect();
            if !terms.is_empty() {
                this.sheet.set_formula(
                    &format!("node.{suffix}"),
                    &format!("sum({})", terms.join(", ")),
                )?;
            }
        }
        Ok(this)
    }

    /// The current working conditions.
    #[must_use]
    pub fn conditions(&self) -> WorkingConditions {
        self.conditions
    }

    /// Read access to the underlying sheet.
    #[must_use]
    pub fn sheet(&self) -> &Sheet {
        &self.sheet
    }

    /// Mutable access for user-defined derived cells.
    pub fn sheet_mut(&mut self) -> &mut Sheet {
        &mut self.sheet
    }

    /// Convenience: reads a cell value.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::UnknownCell`] when absent.
    pub fn value(&self, name: &str) -> Result<f64, SheetError> {
        self.sheet.value(name)
    }

    /// Changes the working temperature and re-derives every block cell
    /// (and, through the engine, every dependent formula).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn set_temperature(
        &mut self,
        temperature: Temperature,
        database: &PowerDatabase,
    ) -> Result<(), SheetError> {
        self.conditions = self.conditions.with_temperature(temperature);
        self.sheet
            .set_number("cond.temp_c", temperature.celsius())?;
        self.refresh(database)
    }

    /// Changes the supply voltage and re-derives every block cell.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn set_supply(
        &mut self,
        supply: Voltage,
        database: &PowerDatabase,
    ) -> Result<(), SheetError> {
        self.conditions = self.conditions.with_supply(supply);
        self.sheet.set_number("cond.supply_v", supply.volts())?;
        self.refresh(database)
    }

    /// Re-derives the per-block figure cells from the models at the current
    /// conditions (called automatically by the setters; call directly after
    /// replacing models in the database, e.g. post-optimization).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn refresh(&mut self, database: &PowerDatabase) -> Result<(), SheetError> {
        for (name, record) in database.iter() {
            for (suffix, mode) in MODE_CELLS {
                let power = record.model().power(mode, &self.conditions);
                self.sheet
                    .set_number(&format!("{name}.{suffix}"), power.total().microwatts())?;
            }
            let leak = record
                .model()
                .power(OperatingMode::Sleep, &self.conditions)
                .leakage;
            self.sheet
                .set_number(&format!("{name}.leak_uw"), leak.microwatts())?;
        }
        Ok(())
    }
}

/// The per-mode figure cells the binding maintains for each block.
const MODE_CELLS: [(&str, OperatingMode); 2] = [
    ("active_uw", OperatingMode::Active),
    ("sleep_uw", OperatingMode::Sleep),
];

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_power::{BlockPowerModel, DynamicPowerModel, LeakageModel};
    use monityre_units::{Capacitance, Frequency, Power};

    fn sample_db() -> PowerDatabase {
        let mut db = PowerDatabase::new();
        db.insert(
            BlockPowerModel::builder("dsp")
                .dynamic(DynamicPowerModel::new(
                    0.2,
                    Capacitance::from_picofarads(200.0),
                    Frequency::from_megahertz(8.0),
                ))
                .leakage(LeakageModel::with_reference(Power::from_microwatts(2.0)))
                .build(),
        )
        .unwrap();
        db.insert(
            BlockPowerModel::builder("sram")
                .leakage(LeakageModel::with_reference(Power::from_microwatts(3.0)))
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn populates_block_and_aggregate_cells() {
        let db = sample_db();
        let sheet = PowerSheet::new(&db).unwrap();
        assert!(sheet.value("dsp.active_uw").unwrap() > 400.0);
        assert!((sheet.value("sram.leak_uw").unwrap() - 3.0).abs() < 1e-9);
        let total = sheet.value("node.active_uw").unwrap();
        let parts = sheet.value("dsp.active_uw").unwrap() + sheet.value("sram.active_uw").unwrap();
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn temperature_edit_ripples_to_aggregates() {
        let db = sample_db();
        let mut sheet = PowerSheet::new(&db).unwrap();
        let cool = sheet.value("node.sleep_uw").unwrap();
        sheet
            .set_temperature(Temperature::from_celsius(85.0), &db)
            .unwrap();
        let hot = sheet.value("node.sleep_uw").unwrap();
        // 58 K above reference with 10 K doubling ≈ 55× — comfortably >10×.
        assert!(hot > cool * 10.0, "cool={cool} hot={hot}");
        assert!((sheet.value("cond.temp_c").unwrap() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn supply_edit_scales_dynamic_cells() {
        let db = sample_db();
        let mut sheet = PowerSheet::new(&db).unwrap();
        let full = sheet.value("dsp.active_uw").unwrap();
        sheet.set_supply(Voltage::from_volts(0.6), &db).unwrap();
        let half = sheet.value("dsp.active_uw").unwrap();
        // Dynamic part scales by 0.25; leakage by (0.5)³.
        assert!(half < full * 0.3);
    }

    #[test]
    fn user_formulas_track_condition_edits() {
        let db = sample_db();
        let mut sheet = PowerSheet::new(&db).unwrap();
        sheet
            .sheet_mut()
            .set_formula("round.energy_uj", "node.active_uw * 0.005")
            .unwrap();
        let before = sheet.value("round.energy_uj").unwrap();
        sheet
            .set_temperature(Temperature::from_celsius(125.0), &db)
            .unwrap();
        let after = sheet.value("round.energy_uj").unwrap();
        assert!(after > before);
    }

    #[test]
    fn refresh_after_model_replacement() {
        let mut db = sample_db();
        let mut sheet = PowerSheet::new(&db).unwrap();
        let before = sheet.value("sram.leak_uw").unwrap();
        let sram = db.block("sram").unwrap().clone();
        db.replace(sram.with_leakage(sram.leakage().scaled(0.1)))
            .unwrap();
        sheet.refresh(&db).unwrap();
        let after = sheet.value("sram.leak_uw").unwrap();
        assert!((after - before * 0.1).abs() < 1e-9);
    }
}
