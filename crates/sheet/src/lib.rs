//! The "dynamic spreadsheet": a dependency-tracked cell engine.
//!
//! §II-A of the paper: "all data about power estimation of each functional
//! blocks are collected into a dynamic spreadsheet that has to be
//! considered as a complete database for the energy analysis. This
//! spreadsheet also estimates the power and energy consumption of the
//! Sensor Node under different working and operating conditions."
//!
//! The authors' Excel workbook was never released, so this crate implements
//! the thing itself: a small spreadsheet engine with
//!
//! * **named cells** (`dsp.active_uw`, `cond.temp_c`) holding numbers or
//!   formulas;
//! * a **formula language** (`=0.5 * (adc.active_uw + afe.active_uw)`)
//!   with arithmetic, comparisons, and the usual scalar functions,
//!   parsed by a recursive-descent parser into an AST;
//! * a **compiled recalc engine**: each formula is lowered once to
//!   stack bytecode ([`compile::Program`]), the dependency graph is
//!   stratified into topological levels, and editing a cell re-evaluates
//!   only its dirty dependents level by level — stopping early wherever a
//!   recomputed value is bit-equal to the old one (**value cutoff**);
//! * **parallel level recompute** through the pluggable [`LevelMap`]
//!   seam (monityre-core installs a `SweepExecutor`-backed one);
//! * **cycle rejection** at edit time;
//! * a **power-database binding** ([`PowerSheet`]) that hosts a
//!   [`monityre_power::PowerDatabase`] on the sheet: condition cells
//!   (supply, temperature, corner) drive model-evaluated block cells,
//!   and user formulas aggregate them — edit the temperature, watch the
//!   node totals move.
//!
//! # Example
//!
//! ```
//! use monityre_sheet::Sheet;
//!
//! # fn main() -> Result<(), monityre_sheet::SheetError> {
//! let mut sheet = Sheet::new();
//! sheet.set_number("adc.active_uw", 210.0)?;
//! sheet.set_number("afe.active_uw", 80.0)?;
//! sheet.set_formula("acq.total_uw", "adc.active_uw + afe.active_uw")?;
//! assert_eq!(sheet.value("acq.total_uw")?, 290.0);
//!
//! sheet.set_number("adc.active_uw", 100.0)?; // incremental recompute
//! assert_eq!(sheet.value("acq.total_uw")?, 180.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
pub mod compile;
mod engine;
mod error;
mod formula;

pub use binding::PowerSheet;
pub use engine::{CellContent, LevelMap, RecomputeStats, Sheet};
pub use error::SheetError;
pub use formula::{parse, Expr};
