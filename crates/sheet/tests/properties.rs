//! Property-based tests for the spreadsheet engine: the incremental
//! recompute path must agree with a full recompute for arbitrary DAGs and
//! edit sequences, and the compiled bytecode VM must agree bit-for-bit
//! with the retained AST interpreter.

use monityre_sheet::compile::{compile, Vm};
use monityre_sheet::{CellContent, Sheet};
use proptest::prelude::*;

/// A recipe for building a random formula DAG over `n_lit` literal cells:
/// each formula references up to three earlier cells with a mix of
/// operators chosen by `shape`.
#[derive(Debug, Clone)]
struct DagRecipe {
    literals: Vec<f64>,
    formulas: Vec<(usize, usize, usize, u8)>,
}

fn arb_recipe() -> impl Strategy<Value = DagRecipe> {
    (
        proptest::collection::vec(-100.0f64..100.0, 2..6),
        proptest::collection::vec((0usize..64, 0usize..64, 0usize..64, 0u8..8), 1..25),
    )
        .prop_map(|(literals, formulas)| DagRecipe { literals, formulas })
}

fn cell_name(i: usize) -> String {
    format!("c{i}")
}

/// Builds the sheet from a recipe; returns the total cell count.
fn build(recipe: &DagRecipe) -> (Sheet, usize) {
    let mut sheet = Sheet::new();
    let mut count = 0usize;
    for &value in &recipe.literals {
        sheet.set_number(&cell_name(count), value).unwrap();
        count += 1;
    }
    for &(a, b, c, shape) in &recipe.formulas {
        let (a, b, c) = (a % count, b % count, c % count);
        let (na, nb, nc) = (cell_name(a), cell_name(b), cell_name(c));
        let formula = match shape {
            0 => format!("{na} + {nb}"),
            1 => format!("{na} - {nb} * 0.5"),
            2 => format!("min({na}, {nb}, {nc})"),
            3 => format!("max({na}, {nb}) + abs({nc})"),
            4 => format!("if({na} > {nb}, {nc}, {na} + 1)"),
            5 => format!("clamp({na}, {nb}, {nc})"),
            6 => format!("sqrt(abs({na})) + exp({nb} / 200)"),
            _ => format!("sum({na}, {nb}, {nc}) * 0.25"),
        };
        // Formula cells may fail only on non-finite results; skip those.
        if sheet.set_formula(&cell_name(count), &formula).is_ok() {
            count += 1;
        }
    }
    (sheet, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After an arbitrary sequence of literal edits, every cell's
    /// incrementally-maintained value equals a from-scratch recompute.
    #[test]
    fn incremental_equals_full_recompute(
        recipe in arb_recipe(),
        edits in proptest::collection::vec((0usize..64, -50.0f64..50.0), 1..10),
    ) {
        let (mut sheet, count) = build(&recipe);
        let n_lit = recipe.literals.len();
        for (slot, value) in edits {
            let target = cell_name(slot % n_lit);
            sheet.set_number(&target, value).unwrap();
        }
        let incremental: Vec<f64> = (0..count)
            .map(|i| sheet.value(&cell_name(i)).unwrap())
            .collect();
        sheet.recompute_all().unwrap();
        let full: Vec<f64> = (0..count)
            .map(|i| sheet.value(&cell_name(i)).unwrap())
            .collect();
        prop_assert_eq!(incremental, full);
    }

    /// Serialization round-trips values exactly for arbitrary DAGs.
    #[test]
    fn json_round_trip(recipe in arb_recipe()) {
        let (sheet, count) = build(&recipe);
        let json = sheet.to_json().unwrap();
        let restored = Sheet::from_json(&json).unwrap();
        for i in 0..count {
            let name = cell_name(i);
            prop_assert_eq!(
                restored.value(&name).unwrap().to_bits(),
                sheet.value(&name).unwrap().to_bits(),
                "cell {}", name
            );
        }
    }

    /// Overwriting a formula with another never leaves stale dependents:
    /// values always match a full recompute afterwards.
    #[test]
    fn redefinition_consistency(
        recipe in arb_recipe(),
        redefine in (0usize..64, 0usize..64),
    ) {
        let (mut sheet, count) = build(&recipe);
        let n_lit = recipe.literals.len();
        prop_assume!(count > n_lit); // need at least one formula
        // Redefine the first formula cell to a fresh expression over a
        // random literal.
        let target = cell_name(n_lit);
        let src = cell_name(redefine.0 % n_lit);
        // Only allowed if it creates no cycle: the target is the earliest
        // formula, so referencing a literal is always acyclic.
        sheet
            .set_formula(&target, &format!("{src} * 2 + 1"))
            .unwrap();
        sheet.set_number(&cell_name(redefine.1 % n_lit), 7.25).unwrap();
        let incremental: Vec<f64> = (0..count)
            .map(|i| sheet.value(&cell_name(i)).unwrap())
            .collect();
        sheet.recompute_all().unwrap();
        let full: Vec<f64> = (0..count)
            .map(|i| sheet.value(&cell_name(i)).unwrap())
            .collect();
        prop_assert_eq!(incremental, full);
    }

    /// The engine never accepts a cycle, no matter the edit order: trying
    /// to point a literal-rooted chain back at its tail is rejected and
    /// leaves values untouched.
    #[test]
    fn cycles_always_rejected(depth in 2usize..12) {
        let mut sheet = Sheet::new();
        sheet.set_number("base", 1.0).unwrap();
        let mut prev = "base".to_owned();
        for i in 0..depth {
            let name = format!("link{i}");
            sheet.set_formula(&name, &format!("{prev} + 1")).unwrap();
            prev = name;
        }
        let before = sheet.value(&prev).unwrap();
        let result = sheet.set_formula("base", &format!("{prev} * 2"));
        prop_assert!(result.is_err());
        prop_assert_eq!(sheet.value(&prev).unwrap(), before);
    }

    /// The compiled bytecode VM is bit-identical to the retained AST
    /// interpreter on every formula of every randomized workbook, before
    /// and after a burst of edits.
    #[test]
    fn compiled_vm_bit_identical_to_interpreter(
        recipe in arb_recipe(),
        edits in proptest::collection::vec((0usize..64, -50.0f64..50.0), 0..8),
    ) {
        let (mut sheet, count) = build(&recipe);
        let n_lit = recipe.literals.len();
        for (slot, value) in edits {
            sheet.set_number(&cell_name(slot % n_lit), value).unwrap();
        }
        let mut vm = Vm::new();
        for i in 0..count {
            let name = cell_name(i);
            let CellContent::Formula { expr: Some(expr), .. } =
                sheet.content(&name).unwrap().clone()
            else {
                continue;
            };
            let interpreted = expr.eval(&|dep: &str| sheet.value(dep)).unwrap();
            let program = compile(&expr);
            let compiled = vm.run(&program, |slot| {
                sheet.value(&program.cells()[slot]).unwrap()
            });
            prop_assert_eq!(
                compiled.to_bits(),
                interpreted.to_bits(),
                "cell {}: vm {} vs ast {}", name, compiled, interpreted
            );
            // And the engine's stored value (produced by its own compiled
            // wave) carries the same bits.
            prop_assert_eq!(sheet.value(&name).unwrap().to_bits(), compiled.to_bits());
        }
    }

    /// A bit-identical rewrite of any literal is a pure cutoff: zero
    /// dependents recompute, by `evaluation_count`.
    #[test]
    fn noop_edits_recompute_zero_dependents(recipe in arb_recipe()) {
        let (mut sheet, _) = build(&recipe);
        for i in 0..recipe.literals.len() {
            let name = cell_name(i);
            let current = sheet.value(&name).unwrap();
            let evals = sheet.evaluation_count();
            let cuts = sheet.cutoff_count();
            sheet.set_number(&name, current).unwrap();
            prop_assert_eq!(sheet.evaluation_count(), evals, "cell {}", &name);
            prop_assert_eq!(sheet.cutoff_count(), cuts + 1);
            prop_assert_eq!(sheet.last_recompute().evaluated, 0);
        }
    }

    /// Mid-graph cutoff: a clamp that saturates to the same value stops
    /// propagation — deeper dependents never re-evaluate.
    #[test]
    fn saturated_clamp_cuts_downstream(x in 2.0f64..100.0, y in 2.0f64..100.0) {
        prop_assume!(x.to_bits() != y.to_bits());
        let mut sheet = Sheet::new();
        sheet.set_number("x", x).unwrap();
        sheet.set_formula("sat", "clamp(x, 0, 1)").unwrap();
        sheet.set_formula("down", "sat * 3 + 1").unwrap();
        sheet.set_formula("deeper", "down - 0.5").unwrap();
        let evals = sheet.evaluation_count();
        sheet.set_number("x", y).unwrap();
        // Only `sat` ran; the saturated value was bit-equal, cutting the
        // rest of the chain.
        prop_assert_eq!(sheet.evaluation_count(), evals + 1);
        prop_assert_eq!(sheet.last_recompute().cut, 1);
        prop_assert_eq!(sheet.value("deeper").unwrap(), 3.5);
    }
}
