//! Property-based tests for the energy ledger's conservation invariant:
//! across random scenarios × extended axes × speeds, the attributed
//! components sum bit-exactly (float layer) and integer-exactly
//! (nanojoule layer) to the aggregate `BalancePoint` figures, and a
//! ledger is byte-stable across memo states and repeated builds.

use monityre_core::{
    quantize_nj, EnergyBalance, RadioLink, Scenario, ScenarioExtras, StorageAgeing,
};
use monityre_node::{Architecture, NodeConfig};
use monityre_power::{ProcessCorner, WorkingConditions};
use monityre_units::{Speed, Temperature};
use proptest::prelude::*;

/// Builds a scenario from the full knob space the serving layer exposes.
#[allow(clippy::too_many_arguments)]
fn scenario_of(
    celsius: f64,
    corner: usize,
    samples: u32,
    tx_period: u32,
    loss: f64,
    retries: u32,
    age: f64,
    with_extras: bool,
) -> Scenario {
    let corner = [
        ProcessCorner::SlowSlow,
        ProcessCorner::Typical,
        ProcessCorner::FastFast,
    ][corner % 3];
    let mut builder = Scenario::builder()
        .conditions(
            WorkingConditions::reference()
                .with_temperature(Temperature::from_celsius(celsius))
                .with_corner(corner),
        )
        .architecture(Architecture::from_config(
            NodeConfig::reference()
                .with_samples_per_round(samples)
                .with_tx_period_rounds(tx_period),
        ));
    if with_extras {
        builder = builder.extras(
            ScenarioExtras::none()
                .with_radio(RadioLink::new(loss, retries).with_tx_period_rounds(tx_period))
                .with_ageing(StorageAgeing::new(age)),
        );
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two conservation layers hold for every scenario × speed the
    /// generator can produce, and the ledger's aggregates are the
    /// `point()` aggregates: harvested quantizes identically, consumed
    /// differs from the quantized aggregate only by per-component
    /// rounding slack, and the float-layer replay was bit-exact.
    #[test]
    fn ledger_conserves_across_scenarios_and_axes(
        celsius in -40.0f64..125.0,
        corner in 0usize..3,
        samples in 1u32..512,
        tx_period in 1u32..16,
        loss in 0.0f64..0.9,
        retries in 0u32..16,
        age in 0.0f64..=30.0,
        extras_coin in 0u32..2,
        kmh in 5.0f64..220.0,
    ) {
        let with_extras = extras_coin == 1;
        let scenario = scenario_of(celsius, corner, samples, tx_period, loss, retries, age, with_extras);
        let balance = EnergyBalance::new(&scenario).unwrap();
        let speed = Speed::from_kmh(kmh);
        let ledger = balance.explain(speed).unwrap();
        let point = balance.point(speed).unwrap();

        prop_assert!(ledger.conserved, "float-layer replay diverged at {kmh} km/h");
        prop_assert!(ledger.conservation_holds());
        prop_assert_eq!(ledger.harvested_nj, quantize_nj(point.generated));
        // Per-component quantization loses at most 0.5 nJ per line item
        // versus quantizing the aggregate once.
        let slack = ledger.blocks.len() as i64 + 2;
        let required_nj = quantize_nj(point.required);
        prop_assert!(
            (ledger.consumed_nj - required_nj).abs() <= slack,
            "consumed {} vs aggregate {} (slack {})",
            ledger.consumed_nj,
            required_nj,
            slack
        );
        prop_assert_eq!(ledger.storage_delta_nj, ledger.harvested_nj - ledger.consumed_nj);
        // Axis surcharges appear exactly when the axes are attached.
        if !with_extras {
            prop_assert_eq!(ledger.radio_retx_nj, 0);
            prop_assert_eq!(ledger.ageing_leak_nj, 0);
        }
        prop_assert!(ledger.radio_retx_nj >= 0 && ledger.ageing_leak_nj >= 0);
    }

    /// A ledger is byte-identical whether the cache carries a memo or
    /// not, whether the memo is cold or warm, and across repeated
    /// builds — the property the `explain` wire op extends to threads.
    #[test]
    fn ledger_bytes_are_memo_invariant(
        celsius in -20.0f64..90.0,
        extras_coin in 0u32..2,
        kmh in 5.0f64..220.0,
    ) {
        let scenario = scenario_of(celsius, 1, 64, 4, 0.25, 4, 6.0, extras_coin == 1);
        let speed = Speed::from_kmh(kmh);
        let fresh = EnergyBalance::new(&scenario).unwrap();
        let memoized = EnergyBalance::with_cache(
            &scenario,
            scenario.cache().unwrap().with_memo(32),
        );
        let baseline = serde_json::to_string(&fresh.explain(speed).unwrap()).unwrap();
        // Cold memo, then warm memo, then warm through the point() path.
        let cold = serde_json::to_string(&memoized.explain(speed).unwrap()).unwrap();
        let warm = serde_json::to_string(&memoized.explain(speed).unwrap()).unwrap();
        let _ = memoized.point(speed).unwrap();
        let after_point = serde_json::to_string(&memoized.explain(speed).unwrap()).unwrap();
        prop_assert_eq!(&cold, &baseline);
        prop_assert_eq!(&warm, &baseline);
        prop_assert_eq!(&after_point, &baseline);
    }
}

/// The global violation counter stays untouched by a healthy run — the
/// same metric CI asserts is zero after the chaos matrix.
#[test]
fn healthy_ledgers_do_not_bump_the_violation_counter() {
    let before = monityre_obs::Registry::global()
        .counter(monityre_obs::names::LEDGER_CONSERVATION_VIOLATIONS)
        .get();
    let balance = EnergyBalance::new(&Scenario::reference()).unwrap();
    for kmh in [7.0, 34.5, 90.0, 180.0] {
        let ledger = balance.explain(Speed::from_kmh(kmh)).unwrap();
        assert!(ledger.conserved);
    }
    let after = monityre_obs::Registry::global()
        .counter(monityre_obs::names::LEDGER_CONSERVATION_VIOLATIONS)
        .get();
    assert_eq!(before, after);
}
