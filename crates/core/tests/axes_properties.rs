//! Property-based tests for the extended physics axes and the break-even
//! optimizer: retransmission energy monotone in retry count, delay never
//! negative, ageing never below fresh leakage, and `optimize` never worse
//! than the unoptimized break-even.

use monityre_core::{
    BreakEvenOptimizer, EnergyBalance, RadioLink, Scenario, ScenarioExtras, StorageAgeing,
    SweepExecutor,
};
use monityre_power::WorkingConditions;
use monityre_units::{Energy, Speed, Temperature};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expected retransmission energy is monotone non-decreasing in the
    /// retry budget: allowing one more retry can only add (expected)
    /// transmissions.
    #[test]
    fn retransmission_energy_monotone_in_retries(
        loss in 0.0f64..0.95,
        retries in 0u32..32,
    ) {
        let fewer = RadioLink::new(loss, retries);
        let more = RadioLink::new(loss, retries + 1);
        prop_assert!(more.expected_attempts() >= fewer.expected_attempts());
        prop_assert!(
            more.retransmission_energy_per_round() >= fewer.retransmission_energy_per_round(),
            "retries {retries}: {:?} -> {:?}",
            fewer.retransmission_energy_per_round(),
            more.retransmission_energy_per_round()
        );
    }

    /// Expected delivery delay is never negative, and never below a single
    /// airtime slot (the lossless floor).
    #[test]
    fn radio_delay_never_negative(loss in 0.0f64..0.95, retries in 0u32..32) {
        let link = RadioLink::new(loss, retries);
        let delay = link.expected_delay();
        prop_assert!(delay.secs() >= 0.0);
        let lossless = RadioLink::new(0.0, retries);
        prop_assert!(delay >= lossless.expected_delay(), "{delay:?}");
    }

    /// Aged leakage never drops below fresh leakage at the same
    /// temperature, across the full automotive range and the whole
    /// supported age span.
    #[test]
    fn aged_leakage_at_least_fresh(age in 0.0f64..=30.0, celsius in -40.0f64..125.0) {
        let ageing = StorageAgeing::new(age);
        let t = Temperature::from_celsius(celsius);
        prop_assert!(
            ageing.aged_leakage(t) >= ageing.fresh_leakage(),
            "age {age} at {celsius} °C: {:?} vs {:?}",
            ageing.aged_leakage(t),
            ageing.fresh_leakage()
        );
    }

    /// A scenario with extras attached never demands less energy per round
    /// than the same scenario without them.
    #[test]
    fn extras_only_add_demand(
        loss in 0.0f64..0.9,
        retries in 0u32..16,
        age in 0.0f64..=30.0,
        kmh in 10.0f64..180.0,
    ) {
        let base = Scenario::reference();
        let extended = Scenario::builder()
            .extras(
                ScenarioExtras::none()
                    .with_radio(RadioLink::new(loss, retries))
                    .with_ageing(StorageAgeing::new(age)),
            )
            .build();
        let speed = Speed::from_kmh(kmh);
        let plain = EnergyBalance::new(&base).unwrap().point(speed).unwrap();
        let extra = EnergyBalance::new(&extended).unwrap().point(speed).unwrap();
        prop_assert!(extra.required >= plain.required);
        prop_assert_eq!(extra.generated, plain.generated);
    }
}

proptest! {
    // The optimizer sweeps ~226 candidates per case; keep the case count
    // low and the grid coarse so the property stays cheap.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `optimize` is never worse than the unoptimized break-even for the
    /// same scenario — the baseline is always candidate zero.
    #[test]
    fn optimize_never_worse_than_baseline(
        celsius in -10.0f64..60.0,
        loss in 0.0f64..0.4,
        age in 0.0f64..10.0,
    ) {
        let scenario = Scenario::builder()
            .conditions(
                WorkingConditions::reference()
                    .with_temperature(Temperature::from_celsius(celsius)),
            )
            .extras(
                ScenarioExtras::none()
                    .with_radio(RadioLink::new(loss, 3))
                    .with_ageing(StorageAgeing::new(age)),
            )
            .build();
        let lo = Speed::from_kmh(5.0);
        let hi = Speed::from_kmh(200.0);
        let baseline = EnergyBalance::new(&scenario)
            .unwrap()
            .sweep(lo, hi, 24)
            .break_even()
            .map(|s| s.kmh());
        let report = BreakEvenOptimizer::new(&scenario)
            .search(lo, hi, 24, &SweepExecutor::new(2), &|| false)
            .unwrap()
            .expect("not cancelled");
        prop_assert_eq!(report.baseline_kmh, baseline);
        match (report.best_kmh, baseline) {
            (Some(best), Some(base)) => prop_assert!(best <= base, "{best} vs {base}"),
            (None, Some(base)) => prop_assert!(false, "lost the baseline crossing at {base}"),
            _ => {}
        }
    }
}

/// The extras arithmetic actually uses `Energy` ordering, so pin the
/// trivial identity the proptests lean on.
#[test]
fn energy_ordering_sanity() {
    assert!(Energy::from_joules(1.0) >= Energy::ZERO);
}
