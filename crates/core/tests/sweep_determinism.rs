//! Determinism guarantees of the parallel evaluation layer: for any
//! worker count and chunking, [`SweepExecutor`] results are bit-identical
//! to a serial evaluation, and the reference break-even speed is pinned
//! so numeric drift in the cache/replay path is caught immediately.

use monityre_core::{EnergyBalance, MonteCarlo, Scenario, SweepExecutor, VariationModel};
use monityre_harvest::HarvestChain;
use monityre_node::{Architecture, NodeConfig};
use monityre_units::Speed;
use proptest::prelude::*;

fn executor(threads: usize, chunk: usize) -> SweepExecutor {
    SweepExecutor::new(threads).with_chunk_size(chunk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balance sweeps are bit-identical under any thread count and chunk
    /// size: the executor only partitions the index space.
    #[test]
    fn parallel_balance_sweep_is_bit_identical(
        threads in 1usize..=8,
        chunk in 1usize..=64,
        samples in prop_oneof![Just(32u32), Just(128), Just(512)],
        scale in 0.5f64..2.0,
        steps in 16usize..160,
    ) {
        let scenario = Scenario::builder()
            .architecture(Architecture::from_config(
                NodeConfig::reference().with_samples_per_round(samples),
            ))
            .chain(HarvestChain::reference().scaled(scale))
            .build();
        let balance = EnergyBalance::new(&scenario).unwrap();
        let lo = Speed::from_kmh(5.0);
        let hi = Speed::from_kmh(200.0);
        let serial = balance.sweep(lo, hi, steps);
        let parallel = balance.sweep_with(lo, hi, steps, &executor(threads, chunk));
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.points().iter().zip(parallel.points()) {
            prop_assert_eq!(s.speed.kmh().to_bits(), p.speed.kmh().to_bits());
            prop_assert_eq!(s.generated.joules().to_bits(), p.generated.joules().to_bits());
            prop_assert_eq!(s.required.joules().to_bits(), p.required.joules().to_bits());
        }
    }

    /// Monte Carlo draw batches are bit-identical under any thread count
    /// and chunk size: every draw is seeded from its index, never from
    /// the schedule.
    #[test]
    fn parallel_mc_draws_are_bit_identical(
        threads in 1usize..=8,
        chunk in 1usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let mc = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), seed);
        let serial = mc.break_even_distribution(12).unwrap();
        let parallel = mc
            .break_even_distribution_with(12, &executor(threads, chunk))
            .unwrap();
        prop_assert_eq!(serial.never_crossed(), parallel.never_crossed());
        prop_assert_eq!(serial.samples().len(), parallel.samples().len());
        for (s, p) in serial.samples().iter().zip(parallel.samples()) {
            prop_assert_eq!(s.kmh().to_bits(), p.kmh().to_bits());
        }
    }
}

/// The reference break-even speed, pinned. A change here means the
/// evaluation stack's numerics moved — intended refactors must show it
/// did not, and model changes must update the constant consciously.
#[test]
fn reference_break_even_is_pinned() {
    const EXPECTED_KMH: f64 = 34.526_307_817_678_656;
    let scenario = Scenario::reference();
    let balance = EnergyBalance::new(&scenario).unwrap();
    let lo = Speed::from_kmh(5.0);
    let hi = Speed::from_kmh(200.0);
    let serial = balance
        .sweep(lo, hi, 196)
        .break_even()
        .expect("reference curves cross");
    assert!(
        (serial.kmh() - EXPECTED_KMH).abs() < 1e-9,
        "reference break-even moved: {:.15} km/h",
        serial.kmh()
    );
    for threads in [2, 4, 8] {
        let parallel = balance
            .sweep_with(lo, hi, 196, &SweepExecutor::new(threads))
            .break_even()
            .expect("reference curves cross");
        assert_eq!(parallel.kmh().to_bits(), serial.kmh().to_bits());
    }
}
