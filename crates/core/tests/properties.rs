//! Property-based tests for the analysis flow invariants.

use monityre_core::{
    EnergyAnalyzer, EnergyBalance, InstantTrace, OptimizationAdvisor, Scenario, SelectionPolicy,
};
use monityre_node::{Architecture, NodeConfig};
use monityre_power::{ProcessCorner, WorkingConditions};
use monityre_units::{Duration, Frequency, Speed, Temperature, Voltage};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = NodeConfig> {
    (
        prop_oneof![Just(32u32), Just(128), Just(512)],
        1u32..=16,
        8u32..=64,
        0.05f64..0.4,
        2.0f64..16.0,
    )
        .prop_map(|(samples, tx, payload, acq, mhz)| {
            NodeConfig::reference()
                .with_samples_per_round(samples)
                .with_tx_period_rounds(tx)
                .with_payload_bytes(payload)
                .with_acquisition_fraction(acq)
                .with_dsp_clock(Frequency::from_megahertz(mhz))
        })
}

fn arb_conditions() -> impl Strategy<Value = WorkingConditions> {
    (
        1.0f64..1.32,
        -20.0f64..60.0,
        prop_oneof![
            Just(ProcessCorner::SlowSlow),
            Just(ProcessCorner::Typical),
            Just(ProcessCorner::FastFast),
        ],
    )
        .prop_map(|(v, t, corner)| {
            WorkingConditions::builder()
                .supply(Voltage::from_volts(v))
                .temperature(Temperature::from_celsius(t))
                .corner(corner)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The duty-cycle-aware optimizer never makes an architecture worse at
    /// its design speed, for arbitrary configurations and conditions.
    #[test]
    fn optimizer_never_worsens(
        config in arb_config(),
        cond in arb_conditions(),
        design_kmh in 15.0f64..120.0,
    ) {
        let arch = Architecture::from_config(config);
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(design_kmh));
        for policy in [SelectionPolicy::PowerFigures, SelectionPolicy::DutyCycleAware] {
            let outcome = advisor.optimize(policy).unwrap();
            prop_assert!(
                outcome.energy_after <= outcome.energy_before * 1.000_001,
                "{policy:?}: {} -> {}",
                outcome.energy_before,
                outcome.energy_after
            );
        }
    }

    /// Optimizing at one speed helps (or is neutral) across the whole
    /// speed range for the duty-cycle-aware policy — techniques only scale
    /// components down net of overheads.
    #[test]
    fn optimized_architecture_dominates_everywhere(
        cond in arb_conditions(),
        check_kmh in 10.0f64..180.0,
    ) {
        let arch = Architecture::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
        let outcome = advisor.optimize(SelectionPolicy::DutyCycleAware).unwrap();
        let optimized = EnergyAnalyzer::new(&outcome.architecture, cond);
        let speed = Speed::from_kmh(check_kmh);
        let before = analyzer.required_per_round(speed).unwrap();
        let after = optimized.required_per_round(speed).unwrap();
        prop_assert!(after <= before * 1.01, "at {check_kmh} km/h: {before} -> {after}");
    }

    /// The Fig. 3 trace integral matches the analyzer's per-round energy
    /// over whole TX cycles, for arbitrary configurations.
    #[test]
    fn trace_integral_consistency(config in arb_config(), kmh in 30.0f64..150.0) {
        let arch = Architecture::from_config(config);
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let speed = Speed::from_kmh(kmh);
        let period = analyzer.round_period(speed).unwrap();
        let cycles = config.tx_period_rounds();
        let window = period * f64::from(cycles);
        // The step must resolve the narrowest feature (the TX burst) or
        // the Riemann sum over the spike dominates the error.
        let step = Duration::from_secs(
            (window.secs() / 8000.0)
                .min(config.tx_burst().secs() / 16.0)
                .max(2e-6),
        );
        let trace = InstantTrace::generate(&analyzer, speed, window, step).unwrap();
        let integral: f64 = trace
            .samples()
            .iter()
            .map(|s| s.total.watts() * step.secs())
            .sum();
        let expected = analyzer.required_per_round(speed).unwrap().joules()
            * f64::from(cycles);
        let rel = (integral - expected).abs() / expected;
        prop_assert!(rel < 0.06, "rel err {rel:.4} over {cycles} rounds at {kmh} km/h");
    }

    /// Break-even (when it exists) is consistent with point queries: a
    /// point 5 km/h above it is surplus, 5 km/h below deficit.
    #[test]
    fn break_even_consistent_with_points(config in arb_config(), cond in arb_conditions()) {
        let scenario = Scenario::builder()
            .architecture(Architecture::from_config(config))
            .conditions(cond)
            .build();
        let balance = EnergyBalance::new(&scenario).unwrap();
        let report = balance.sweep(Speed::from_kmh(6.0), Speed::from_kmh(220.0), 216);
        if let Some(be) = report.break_even() {
            prop_assume!(be.kmh() > 12.0 && be.kmh() < 214.0);
            let above = balance.point(Speed::from_kmh(be.kmh() + 5.0)).unwrap();
            let below = balance.point(Speed::from_kmh(be.kmh() - 5.0)).unwrap();
            prop_assert!(above.is_surplus(), "above: {above:?}");
            prop_assert!(!below.is_surplus(), "below: {below:?}");
        }
    }

    /// Required energy per round is continuous-ish in speed: halving the
    /// sweep step never reveals a jump larger than the local trend.
    #[test]
    fn demand_curve_is_smooth(config in arb_config(), kmh in 20.0f64..180.0) {
        let arch = Architecture::from_config(config);
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let e = |k: f64| analyzer.required_per_round(Speed::from_kmh(k)).unwrap().joules();
        let mid = e(kmh);
        let lo = e(kmh - 0.5);
        let hi = e(kmh + 0.5);
        // mid lies within the [lo, hi] band stretched by 1 %.
        let min = lo.min(hi) * 0.99;
        let max = lo.max(hi) * 1.01;
        prop_assert!(mid >= min && mid <= max, "{lo} {mid} {hi}");
    }
}
