//! Extended scenario physics: the radio delay / retransmission-energy
//! axis and the supercap ageing / temperature-dependent-leakage axis.
//!
//! The DATE 2011 paper treats the radio as a lossless, instant link and
//! the storage element as eternally fresh. Two of the related works fill
//! those gaps: energy-efficient wireless tire sensing with delay
//! analysis (Mishra & Liang 2024) motivates modelling packet loss,
//! bounded retransmission and the per-packet latency it costs, and the
//! supercap literature motivates an ageing factor on leakage that grows
//! with both service years and temperature (the classic ~2× per 10 °C
//! electrolyte rule).
//!
//! Both axes are **strictly additive to the required-energy curve** and
//! are applied outside the per-speed memo (see
//! [`crate::EnergyBalance::point`]). A scenario without extras performs
//! *zero* additional float operations — branch-and-skip, never a
//! multiply by `1.0` — which keeps the pinned reference break-even
//! bit-identical.

use monityre_profile::Wheel;
use monityre_units::{Duration, Energy, Power, Speed, Temperature, Voltage};

/// A lossy radio link with bounded retransmission.
///
/// A transmission slot is attempted up to `1 + max_retries` times; each
/// attempt independently fails with probability `loss_prob`. The
/// expected number of attempts per slot is the truncated geometric sum
/// `Σₖ₌₀ⁿ pᵏ = (1 − pⁿ⁺¹) / (1 − p)`, monotone non-decreasing in the
/// retry budget and equal to exactly `1.0` on a lossless link.
///
/// ```
/// use monityre_core::RadioLink;
///
/// let lossless = RadioLink::new(0.0, 3);
/// assert_eq!(lossless.expected_attempts(), 1.0);
/// assert_eq!(lossless.retransmission_energy_per_round().joules(), 0.0);
///
/// let lossy = RadioLink::new(0.2, 3);
/// assert!(lossy.expected_attempts() > 1.0);
/// assert!(lossy.expected_delay() > lossless.expected_delay());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadioLink {
    loss_prob: f64,
    max_retries: u32,
    tx_power: Power,
    airtime: Duration,
    tx_period_rounds: u32,
}

/// Largest retry budget a link accepts — beyond this the geometric sum
/// is saturated to machine precision anyway.
pub const MAX_RADIO_RETRIES: u32 = 64;

impl RadioLink {
    /// A link with the reference radio's burst parameters (the node
    /// config's 800 µs TX burst at 3.1 mW, one transmission every 4
    /// rounds).
    ///
    /// # Panics
    ///
    /// Panics unless `loss_prob ∈ [0, 1)` and
    /// `max_retries ≤ `[`MAX_RADIO_RETRIES`].
    #[must_use]
    pub fn new(loss_prob: f64, max_retries: u32) -> Self {
        assert!(
            loss_prob.is_finite() && (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1)"
        );
        assert!(
            max_retries <= MAX_RADIO_RETRIES,
            "retry budget must be at most {MAX_RADIO_RETRIES}"
        );
        let reference = monityre_node::NodeConfig::reference();
        Self {
            loss_prob,
            max_retries,
            tx_power: Power::from_milliwatts(3.1),
            airtime: reference.tx_burst(),
            tx_period_rounds: reference.tx_period_rounds(),
        }
    }

    /// Overrides how many wheel rounds separate transmissions (the knob
    /// the node config also carries — keep them in agreement so the
    /// retransmission energy amortizes over the right period).
    ///
    /// # Panics
    ///
    /// Panics when `rounds` is zero.
    #[must_use]
    pub fn with_tx_period_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds > 0, "tx period must be at least one round");
        self.tx_period_rounds = rounds;
        self
    }

    /// The per-attempt packet loss probability.
    #[must_use]
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// The retry budget after the first attempt.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Expected attempts per transmission slot: the truncated geometric
    /// sum `(1 − pⁿ⁺¹) / (1 − p)`, exactly `1.0` on a lossless link.
    #[must_use]
    pub fn expected_attempts(&self) -> f64 {
        if self.loss_prob == 0.0 {
            return 1.0;
        }
        let p = self.loss_prob;
        (1.0 - p.powi(self.max_retries as i32 + 1)) / (1.0 - p)
    }

    /// Expected on-air latency per transmission slot (attempts ×
    /// airtime); never negative.
    #[must_use]
    pub fn expected_delay(&self) -> Duration {
        self.airtime * self.expected_attempts()
    }

    /// Extra radio energy per *wheel round*: the energy of the expected
    /// retransmissions (attempts beyond the first, which the base model
    /// already charges), amortized over the transmission period.
    #[must_use]
    pub fn retransmission_energy_per_round(&self) -> Energy {
        let extra_attempts = self.expected_attempts() - 1.0;
        if extra_attempts <= 0.0 {
            return Energy::ZERO;
        }
        let per_slot: Energy = self.tx_power * self.airtime;
        per_slot * extra_attempts / f64::from(self.tx_period_rounds)
    }
}

/// Supercap ageing: leakage grows with service years, accelerated by
/// temperature.
///
/// The fresh reference reservoir (2.7 V nominal across a 5 MΩ leakage
/// path) loses ~1.46 µW; an aged part multiplies that by
/// `1 + r·years·2^((T−25 °C)/10)` — the ageing rate `r` per year,
/// doubling every 10 °C above the 25 °C reference. Aged leakage is
/// therefore never below fresh leakage at equal temperature, and a
/// zero-year part is *bit-identical* to fresh.
///
/// ```
/// use monityre_core::StorageAgeing;
/// use monityre_units::Temperature;
///
/// let aged = StorageAgeing::new(5.0);
/// let t = Temperature::from_celsius(25.0);
/// assert!(aged.aged_leakage(t) > aged.fresh_leakage());
/// assert!(aged.aged_leakage(Temperature::from_celsius(85.0)) > aged.aged_leakage(t));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StorageAgeing {
    age_years: f64,
}

/// Leakage-growth rate per service year at the 25 °C reference.
pub const AGEING_RATE_PER_YEAR: f64 = 0.15;

/// Longest service life the model accepts, years.
pub const MAX_AGE_YEARS: f64 = 30.0;

/// Nominal voltage of the reference reservoir, volts.
const NOMINAL_VOLTS: f64 = 2.7;

/// Leakage resistance of the fresh reference reservoir, ohms.
const FRESH_LEAK_OHMS: f64 = 5.0e6;

impl StorageAgeing {
    /// An ageing model for a part `age_years` into its service life.
    ///
    /// # Panics
    ///
    /// Panics unless `age_years ∈ [0, `[`MAX_AGE_YEARS`]`]`.
    #[must_use]
    pub fn new(age_years: f64) -> Self {
        assert!(
            age_years.is_finite() && (0.0..=MAX_AGE_YEARS).contains(&age_years),
            "age must be in [0, {MAX_AGE_YEARS}] years"
        );
        Self { age_years }
    }

    /// The modelled service age, years.
    #[must_use]
    pub fn age_years(&self) -> f64 {
        self.age_years
    }

    /// The fresh reference reservoir's leakage: `V²/R` at nominal
    /// voltage.
    #[must_use]
    pub fn fresh_leakage(&self) -> Power {
        let volts = Voltage::from_volts(NOMINAL_VOLTS).volts();
        Power::from_watts(volts * volts / FRESH_LEAK_OHMS)
    }

    /// The leakage multiplier at `temperature`:
    /// `1 + r·years·2^((T−25)/10)` — always ≥ 1.
    #[must_use]
    pub fn ageing_factor(&self, temperature: Temperature) -> f64 {
        let acceleration = ((temperature.celsius() - 25.0) / 10.0).exp2();
        1.0 + AGEING_RATE_PER_YEAR * self.age_years * acceleration
    }

    /// Aged leakage at `temperature`; never below [`Self::fresh_leakage`]
    /// at any temperature, and bit-identical to fresh at zero years.
    #[must_use]
    pub fn aged_leakage(&self, temperature: Temperature) -> Power {
        self.fresh_leakage() * self.ageing_factor(temperature)
    }

    /// The *extra* (aged − fresh) leakage energy per wheel round at
    /// `speed` — slower wheels mean longer rounds and a bigger leak
    /// budget per round.
    #[must_use]
    pub fn extra_leakage_per_round(
        &self,
        temperature: Temperature,
        wheel: &Wheel,
        speed: Speed,
    ) -> Energy {
        let extra: Power = self.aged_leakage(temperature) - self.fresh_leakage();
        if extra.watts() <= 0.0 {
            return Energy::ZERO;
        }
        extra * wheel.round_period(speed)
    }
}

/// The optional physics axes a [`crate::Scenario`] may carry beyond the
/// paper's base model. `None` on the scenario means the base model runs
/// untouched; a vacuous `ScenarioExtras` (both axes absent) is
/// equivalent but never constructed by the builders.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioExtras {
    radio: Option<RadioLink>,
    ageing: Option<StorageAgeing>,
}

impl ScenarioExtras {
    /// No extra axes (the vacuous value builders start from).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Attaches the radio axis.
    #[must_use]
    pub fn with_radio(mut self, radio: RadioLink) -> Self {
        self.radio = Some(radio);
        self
    }

    /// Attaches the ageing axis.
    #[must_use]
    pub fn with_ageing(mut self, ageing: StorageAgeing) -> Self {
        self.ageing = Some(ageing);
        self
    }

    /// The radio axis, if attached.
    #[must_use]
    pub fn radio(&self) -> Option<&RadioLink> {
        self.radio.as_ref()
    }

    /// The ageing axis, if attached.
    #[must_use]
    pub fn ageing(&self) -> Option<&StorageAgeing> {
        self.ageing.as_ref()
    }

    /// Whether no axis is attached (callers should then leave the
    /// scenario's extras slot empty instead of carrying a vacuous value).
    #[must_use]
    pub fn is_vacuous(&self) -> bool {
        self.radio.is_none() && self.ageing.is_none()
    }

    /// The summed extra required energy per wheel round both axes
    /// contribute at this operating point. Always ≥ 0.
    #[must_use]
    pub fn extra_required_per_round(
        &self,
        temperature: Temperature,
        wheel: &Wheel,
        speed: Speed,
    ) -> Energy {
        let mut extra = Energy::ZERO;
        if let Some(radio) = &self.radio {
            extra += radio.retransmission_energy_per_round();
        }
        if let Some(ageing) = &self.ageing {
            extra += ageing.extra_leakage_per_round(temperature, wheel, speed);
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_is_exactly_one_attempt() {
        let link = RadioLink::new(0.0, 8);
        assert_eq!(link.expected_attempts().to_bits(), 1.0f64.to_bits());
        assert_eq!(link.retransmission_energy_per_round(), Energy::ZERO);
    }

    #[test]
    fn expected_attempts_monotone_in_retries() {
        let mut last = 0.0;
        for retries in 0..=MAX_RADIO_RETRIES {
            let attempts = RadioLink::new(0.3, retries).expected_attempts();
            assert!(attempts >= last, "retries {retries}: {attempts} < {last}");
            last = attempts;
        }
        // Saturates toward the untruncated geometric mean 1/(1-p).
        assert!((last - 1.0 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn delay_is_nonnegative_and_grows_with_loss() {
        let clean = RadioLink::new(0.0, 3).expected_delay();
        let noisy = RadioLink::new(0.5, 3).expected_delay();
        assert!(clean.secs() >= 0.0);
        assert!(noisy > clean);
    }

    #[test]
    fn retransmission_energy_amortizes_over_tx_period() {
        let every_round = RadioLink::new(0.2, 3).with_tx_period_rounds(1);
        let every_4 = RadioLink::new(0.2, 3).with_tx_period_rounds(4);
        let ratio = every_round.retransmission_energy_per_round().joules()
            / every_4.retransmission_energy_per_round().joules();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_years_is_bit_identical_to_fresh() {
        let ageing = StorageAgeing::new(0.0);
        let t = Temperature::from_celsius(85.0);
        assert_eq!(
            ageing.aged_leakage(t).watts().to_bits(),
            ageing.fresh_leakage().watts().to_bits()
        );
        assert_eq!(
            ageing.extra_leakage_per_round(t, &Wheel::reference(), Speed::from_kmh(50.0)),
            Energy::ZERO
        );
    }

    #[test]
    fn aged_leakage_never_below_fresh() {
        let ageing = StorageAgeing::new(7.0);
        for celsius in [-40.0, -10.0, 25.0, 85.0, 125.0] {
            let t = Temperature::from_celsius(celsius);
            assert!(
                ageing.aged_leakage(t) >= ageing.fresh_leakage(),
                "at {celsius} °C"
            );
        }
    }

    #[test]
    fn slower_wheels_leak_more_per_round() {
        let ageing = StorageAgeing::new(5.0);
        let t = Temperature::from_celsius(45.0);
        let wheel = Wheel::reference();
        let slow = ageing.extra_leakage_per_round(t, &wheel, Speed::from_kmh(10.0));
        let fast = ageing.extra_leakage_per_round(t, &wheel, Speed::from_kmh(100.0));
        assert!(slow > fast);
    }

    #[test]
    fn extras_sum_both_axes() {
        let radio = RadioLink::new(0.2, 3);
        let ageing = StorageAgeing::new(5.0);
        let t = Temperature::from_celsius(45.0);
        let wheel = Wheel::reference();
        let v = Speed::from_kmh(60.0);
        let both = ScenarioExtras::none()
            .with_radio(radio.clone())
            .with_ageing(ageing.clone());
        let expected =
            radio.retransmission_energy_per_round() + ageing.extra_leakage_per_round(t, &wheel, v);
        assert_eq!(
            both.extra_required_per_round(t, &wheel, v)
                .joules()
                .to_bits(),
            expected.joules().to_bits()
        );
        assert!(ScenarioExtras::none().is_vacuous());
        assert!(!both.is_vacuous());
    }

    #[test]
    #[should_panic(expected = "loss probability must be in [0, 1)")]
    fn certain_loss_is_rejected() {
        let _ = RadioLink::new(1.0, 3);
    }

    #[test]
    #[should_panic(expected = "age must be in [0, 30] years")]
    fn negative_age_is_rejected() {
        let _ = StorageAgeing::new(-1.0);
    }
}
