//! The DATE 2011 energy analysis flow.
//!
//! This crate is the paper's primary contribution, implemented end to end:
//!
//! 1. **Per-round energy evaluation** ([`EnergyAnalyzer`]) — converts the
//!    power database's figures into *energy per wheel round* using each
//!    block's duty-cycle schedule and event workload, under explicit
//!    working conditions;
//! 2. **Energy balance** ([`EnergyBalance`]) — the generated-vs-required
//!    curves of the paper's Fig. 2, with break-even extraction;
//! 3. **Optimization advisor** ([`OptimizationAdvisor`]) — the paper's
//!    central methodological claim: select per-block optimization
//!    techniques from the *(dynamic/static split × duty cycle)* pair
//!    rather than from power figures alone, apply them, and re-estimate;
//! 4. **Transient emulation** ([`TransientEmulator`]) — long-window
//!    emulation of the node against a speed profile, a thermal model and a
//!    storage element, with activation hysteresis and operating-window
//!    extraction; plus the instant-power trace of Fig. 3
//!    ([`InstantTrace`]);
//! 5. **The flow itself** ([`Flow`]) — Fig. 1 as a typed pipeline;
//! 6. **Reporting** ([`report`]) — text tables, CSV series and ASCII
//!    charts used by every experiment harness.
//!
//! All of them run inside a shared evaluation session: a [`Scenario`]
//! bundles architecture + conditions + harvest chain + wheel, an
//! [`EvalCache`] memoizes the per-block, per-conditions figures, and a
//! [`SweepExecutor`] fans sweep batches out across threads with
//! bit-identical-to-serial results.
//!
//! # Example: find the break-even speed
//!
//! ```
//! use monityre_core::{EnergyBalance, Scenario, SweepExecutor};
//! use monityre_units::Speed;
//!
//! let scenario = Scenario::reference();
//! let balance = EnergyBalance::new(&scenario).unwrap();
//! let report = balance.sweep_with(
//!     Speed::from_kmh(5.0),
//!     Speed::from_kmh(200.0),
//!     196,
//!     &SweepExecutor::new(4),
//! );
//! let break_even = report.break_even().expect("curves cross");
//! assert!(break_even.kmh() > 10.0 && break_even.kmh() < 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod analyzer;
mod axes;
mod balance;
mod cache;
mod emulator;
mod error;
mod executor;
mod flow;
mod governor;
mod ledger;
mod lifetime;
mod montecarlo;
mod optimizer;
pub mod report;
mod scenario;
mod sheet_par;
mod trace;
mod vehicle;
mod workbook;

pub use advisor::{
    NodeOptimization, OptimizationAdvisor, Recommendation, SelectionPolicy, Technique,
};
pub use analyzer::{BlockEnergy, EnergyAnalyzer, NodeEnergy};
pub use axes::{
    RadioLink, ScenarioExtras, StorageAgeing, AGEING_RATE_PER_YEAR, MAX_AGE_YEARS,
    MAX_RADIO_RETRIES,
};
pub use balance::{speed_grid, BalancePoint, BalanceReport, EnergyBalance};
pub use cache::{CacheCounts, EvalCache};
pub use emulator::{EmulationReport, EmulatorConfig, OperatingWindow, TransientEmulator};
pub use error::CoreError;
pub use executor::{SweepExecutor, THREADS_ENV_VAR};
pub use flow::{Flow, FlowReport};
pub use governor::{GovernedReport, Governor, GovernorLevel};
pub use ledger::{quantize_nj, EnergyLedger, LedgerEntry};
pub use lifetime::{LifetimeEstimator, LifetimeReport, UsagePattern};
pub use montecarlo::{BreakEvenDistribution, MonteCarlo, VariationModel};
pub use optimizer::{
    BreakEvenOptimizer, CandidateConfig, LedgerDelta, OptimizeReport, DUTY_POLICIES,
};
pub use scenario::{Scenario, ScenarioBuilder};
pub use sheet_par::{install_parallel_recompute, SweepLevelMap};
pub use trace::{InstantTrace, TraceSample};
pub use vehicle::{CornerSetup, VehicleEmulator, VehicleReport, WheelPosition};
pub use workbook::EnergyWorkbook;
