//! Per-wheel-round energy evaluation.
//!
//! The step the paper calls the "evaluation tool that calculates the
//! contribute in term of energy consumption" (§II): power figures alone
//! are not enough, because "temporal aspects are not considered" — the
//! analyzer integrates each block's power over its duty-cycle schedule
//! within a wheel round, and adds the workload-proportional event energy.

use monityre_node::Architecture;
use monityre_power::{EnergyBreakdown, WorkingConditions};
use monityre_profile::Wheel;
use monityre_units::{Duration, DutyCycle, Energy, Power, Speed};

use crate::CoreError;

/// One block's per-round energy, with the inputs the advisor needs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEnergy {
    /// The block's name.
    pub name: String,
    /// Energy per wheel round, split dynamic/leakage.
    pub energy: EnergyBreakdown,
    /// The block's duty cycle in this round.
    pub duty_cycle: DutyCycle,
}

/// The whole node's per-round energy figure.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEnergy {
    /// The evaluation speed.
    pub speed: Speed,
    /// The wheel-round period at that speed.
    pub round_period: Duration,
    /// Per-block figures, sorted by name.
    pub blocks: Vec<BlockEnergy>,
}

impl NodeEnergy {
    /// Total energy per round across blocks.
    #[must_use]
    pub fn total(&self) -> EnergyBreakdown {
        self.blocks.iter().map(|b| b.energy).sum()
    }

    /// Average node power over the round.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.total().total() / self.round_period
    }

    /// Looks up one block's figure.
    #[must_use]
    pub fn block(&self, name: &str) -> Option<&BlockEnergy> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

/// Evaluates per-round energies for one architecture under fixed working
/// conditions.
///
/// ```
/// use monityre_core::EnergyAnalyzer;
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_units::Speed;
///
/// let arch = Architecture::reference();
/// let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
/// let energy = analyzer.node_energy(Speed::from_kmh(60.0)).unwrap();
/// // µJ-class budget per round for the reference node.
/// assert!(energy.total().total().microjoules() > 1.0);
/// assert!(energy.total().total().microjoules() < 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAnalyzer<'a> {
    architecture: &'a Architecture,
    conditions: WorkingConditions,
    wheel: Wheel,
}

impl<'a> EnergyAnalyzer<'a> {
    /// Creates an analyzer on the reference wheel.
    #[must_use]
    pub fn new(architecture: &'a Architecture, conditions: WorkingConditions) -> Self {
        Self {
            architecture,
            conditions,
            wheel: Wheel::reference(),
        }
    }

    /// Returns a copy using a different wheel.
    #[must_use]
    pub fn with_wheel(mut self, wheel: Wheel) -> Self {
        self.wheel = wheel;
        self
    }

    /// The architecture under analysis.
    #[must_use]
    pub fn architecture(&self) -> &'a Architecture {
        self.architecture
    }

    /// The working conditions.
    #[must_use]
    pub fn conditions(&self) -> WorkingConditions {
        self.conditions
    }

    /// Returns a copy evaluated under different conditions.
    #[must_use]
    pub fn with_conditions(mut self, conditions: WorkingConditions) -> Self {
        self.conditions = conditions;
        self
    }

    /// The wheel.
    #[must_use]
    pub fn wheel(&self) -> &Wheel {
        &self.wheel
    }

    /// The wheel-round period at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill or below.
    pub fn round_period(&self, speed: Speed) -> Result<Duration, CoreError> {
        if speed.mps() <= 0.0 || !speed.is_finite() {
            return Err(CoreError::round_undefined(speed.kmh()));
        }
        Ok(self.wheel.round_period(speed))
    }

    /// One block's energy per wheel round at `speed`.
    ///
    /// The average over the phase recurrence periods is taken: a phase
    /// running every N rounds contributes `1/N` of its energy to each
    /// round, with the rest mode covering that span in the other rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill, or a lookup
    /// error for unknown blocks.
    pub fn block_energy(&self, name: &str, speed: Speed) -> Result<BlockEnergy, CoreError> {
        let period = self.round_period(speed)?;
        let plan = self.architecture.plan(name)?;
        let model = self.architecture.database().block(name)?;

        let rest_power = model.power(plan.schedule().rest_mode(), &self.conditions);

        // Baseline: the whole round in the rest mode…
        let mut energy = rest_power.over(period);
        // …corrected by each phase's amortized delta over the rest mode.
        for phase in plan.schedule().resolve(period) {
            let phase_power = model.power(phase.mode, &self.conditions);
            let delta_dyn = phase_power.dynamic - rest_power.dynamic;
            let delta_leak = phase_power.leakage - rest_power.leakage;
            let share = phase.amortized_duration();
            energy.dynamic += delta_dyn * share;
            energy.leakage += delta_leak * share;
        }

        // Event energy is workload-proportional switching energy.
        for (kind, count) in plan.workload().iter() {
            if let Some(per_event) = model.event_energy(kind, &self.conditions) {
                energy.dynamic += per_event * count;
            }
        }

        Ok(BlockEnergy {
            name: name.to_owned(),
            energy,
            duty_cycle: plan.schedule().duty_cycle(period),
        })
    }

    /// The whole node's energy per wheel round at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn node_energy(&self, speed: Speed) -> Result<NodeEnergy, CoreError> {
        let round_period = self.round_period(speed)?;
        let mut blocks = Vec::with_capacity(self.architecture.len());
        for name in self.architecture.block_names() {
            blocks.push(self.block_energy(name, speed)?);
        }
        Ok(NodeEnergy {
            speed,
            round_period,
            blocks,
        })
    }

    /// Required energy per round at `speed` — the demand curve of Fig. 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn required_per_round(&self, speed: Speed) -> Result<Energy, CoreError> {
        Ok(self.node_energy(speed)?.total().total())
    }

    /// Average node power while rolling at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn average_power(&self, speed: Speed) -> Result<Power, CoreError> {
        Ok(self.node_energy(speed)?.average_power())
    }

    /// Node power while the monitoring function is *switched off*: every
    /// block falls to `Off` except the always-on power management, which
    /// keeps its rest behaviour. This is the floor the transient emulator
    /// charges while waiting for the energy balance to turn positive.
    #[must_use]
    pub fn standby_power(&self) -> Power {
        let mut total = Power::ZERO;
        for name in self.architecture.block_names() {
            let model = match self.architecture.database().block(name) {
                Ok(m) => m,
                Err(_) => continue,
            };
            let mode = if name == "pm" {
                self.architecture
                    .plan(name)
                    .map(|p| p.schedule().rest_mode())
                    .unwrap_or(monityre_power::OperatingMode::Sleep)
            } else {
                monityre_power::OperatingMode::Off
            };
            total += model.power(mode, &self.conditions).total();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_power::ProcessCorner;
    use monityre_units::Temperature;

    fn reference() -> Architecture {
        Architecture::reference()
    }

    #[test]
    fn node_energy_is_microjoule_class() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let e = analyzer.node_energy(Speed::from_kmh(60.0)).unwrap();
        let total = e.total().total();
        assert!(
            total.microjoules() > 5.0 && total.microjoules() < 50.0,
            "got {total}"
        );
    }

    #[test]
    fn standstill_is_rejected() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        assert!(matches!(
            analyzer.node_energy(Speed::ZERO),
            Err(CoreError::RoundUndefined { .. })
        ));
    }

    #[test]
    fn unknown_block_propagates() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        assert!(analyzer.block_energy("gpu", Speed::from_kmh(50.0)).is_err());
    }

    #[test]
    fn radio_energy_amortizes_tx_period() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let sparse = analyzer
            .block_energy("radio", Speed::from_kmh(60.0))
            .unwrap();

        let dense_cfg = monityre_node::NodeConfig::reference().with_tx_period_rounds(1);
        let dense_arch = Architecture::from_config(dense_cfg);
        let dense_analyzer = EnergyAnalyzer::new(&dense_arch, WorkingConditions::reference());
        let dense = dense_analyzer
            .block_energy("radio", Speed::from_kmh(60.0))
            .unwrap();
        // Transmitting every round costs ~4× the every-4th-round budget.
        let ratio = dense.energy.total() / sparse.energy.total();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn leakage_share_grows_at_low_speed() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let slow = analyzer.node_energy(Speed::from_kmh(10.0)).unwrap().total();
        let fast = analyzer
            .node_energy(Speed::from_kmh(150.0))
            .unwrap()
            .total();
        assert!(slow.leakage > fast.leakage); // longer round ⇒ more idle leakage
    }

    #[test]
    fn hot_conditions_raise_leakage_energy() {
        let arch = reference();
        let cool = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let hot = cool.clone().with_conditions(
            WorkingConditions::reference().with_temperature(Temperature::from_celsius(85.0)),
        );
        let v = Speed::from_kmh(50.0);
        let e_cool = cool.node_energy(v).unwrap().total();
        let e_hot = hot.node_energy(v).unwrap().total();
        assert!(e_hot.leakage > e_cool.leakage * 10.0);
        // Dynamic barely moves.
        assert!((e_hot.dynamic / e_cool.dynamic - 1.0).abs() < 0.05);
    }

    #[test]
    fn corner_shifts_total() {
        let arch = reference();
        let tt = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let ff = tt
            .clone()
            .with_conditions(WorkingConditions::reference().with_corner(ProcessCorner::FastFast));
        let v = Speed::from_kmh(50.0);
        assert!(ff.required_per_round(v).unwrap() > tt.required_per_round(v).unwrap());
    }

    #[test]
    fn average_power_consistent_with_energy() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let v = Speed::from_kmh(90.0);
        let e = analyzer.node_energy(v).unwrap();
        let p = analyzer.average_power(v).unwrap();
        let recomputed = e.total().total() / e.round_period;
        assert!(p.approx_eq(recomputed, 1e-12));
    }

    #[test]
    fn standby_power_is_sub_threshold() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let standby = analyzer.standby_power();
        let rolling = analyzer.average_power(Speed::from_kmh(60.0)).unwrap();
        assert!(
            standby < rolling * 0.2,
            "standby {standby} rolling {rolling}"
        );
        assert!(standby > Power::ZERO);
    }

    #[test]
    fn duty_cycles_reported() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let e = analyzer.node_energy(Speed::from_kmh(60.0)).unwrap();
        let radio = e.block("radio").unwrap();
        assert!(radio.duty_cycle.is_short());
        let pm = e.block("pm").unwrap();
        assert_eq!(pm.duty_cycle, DutyCycle::ALWAYS_ACTIVE);
    }

    #[test]
    fn block_energies_sum_to_total() {
        let arch = reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let e = analyzer.node_energy(Speed::from_kmh(70.0)).unwrap();
        let sum: Energy = e.blocks.iter().map(|b| b.energy.total()).sum();
        assert!(sum.approx_eq(e.total().total(), 1e-12));
    }
}
