//! Deterministic parallel batch evaluation.
//!
//! Every experiment in this crate is sweep-shaped: a list of independent
//! points (speeds, temperatures, supplies, corners, configuration-grid
//! cells, Monte Carlo draws) mapped through a pure evaluation. A
//! [`SweepExecutor`] runs that map across scoped OS threads in
//! fixed-size chunks and reassembles the results in input order, so the
//! parallel output is **bit-identical** to the serial one: no reduction
//! happens across threads, only element-wise mapping.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding [`SweepExecutor::available`]'s worker
/// count, so deployments (servers, CI) can pin parallelism without
/// plumbing flags. The value must be a positive integer; `0` or anything
/// non-numeric is rejected — [`SweepExecutor::available`] warns and falls
/// back to the hardware count, [`SweepExecutor::try_available`] errors.
pub const THREADS_ENV_VAR: &str = "MONITYRE_THREADS";

/// The machine's available parallelism (1 when undetectable).
fn hardware_parallelism() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses a [`THREADS_ENV_VAR`] value into a worker count. `Ok(None)`
/// means unset (use the hardware count); a set-but-invalid value — zero,
/// negative, non-numeric — is an error, never a silent fallback.
fn parse_threads_override(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV_VAR}={raw:?} is invalid: the worker count must be at least 1"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{THREADS_ENV_VAR}={raw:?} is invalid: expected a positive integer"
        )),
    }
}

/// A chunked, order-preserving parallel map over sweep points.
///
/// `threads == 1` (the default) runs inline with no thread machinery, so
/// the serial path is also the zero-overhead path.
///
/// ```
/// use monityre_core::SweepExecutor;
///
/// let squares = SweepExecutor::new(4).map(&[1, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    threads: usize,
    chunk_size: Option<usize>,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::serial()
    }
}

impl SweepExecutor {
    /// The serial executor: evaluates inline on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            chunk_size: None,
        }
    }

    /// An executor with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk_size: None,
        }
    }

    /// An executor sized to the machine's available parallelism, unless
    /// the [`THREADS_ENV_VAR`] environment variable overrides it with a
    /// positive integer. An invalid override (`0`, non-numeric) is
    /// **rejected**, not silently absorbed: this constructor warns on
    /// stderr and uses the hardware count; strict callers (the server's
    /// startup path) use [`Self::try_available`] to fail fast instead.
    #[must_use]
    pub fn available() -> Self {
        match Self::try_available() {
            Ok(executor) => executor,
            Err(message) => {
                eprintln!("warning: {message}; using the hardware thread count");
                Self::new(hardware_parallelism())
            }
        }
    }

    /// Like [`Self::available`], but a set-and-invalid [`THREADS_ENV_VAR`]
    /// is an error instead of a warning-and-fallback.
    ///
    /// # Errors
    ///
    /// Returns a description of the rejected value when the environment
    /// variable is set to `0` or to anything non-numeric.
    pub fn try_available() -> Result<Self, String> {
        let raw = std::env::var(THREADS_ENV_VAR).ok();
        let threads = parse_threads_override(raw.as_deref())?.unwrap_or_else(hardware_parallelism);
        Ok(Self::new(threads))
    }

    /// Overrides the chunk size (points handed to a worker at a time).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk size must be at least 1");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk size used for `len` items: the override if set, else
    /// enough chunks for ~4 hand-outs per worker (bounded load imbalance
    /// without fine-grained contention).
    #[must_use]
    pub fn chunk_for(&self, len: usize) -> usize {
        self.chunk_size
            .unwrap_or_else(|| len.div_ceil(self.threads * 4))
            .max(1)
    }

    /// Maps `f` over `items`, preserving input order in the output.
    ///
    /// `f` receives the item's index and the item. The result equals
    /// `items.iter().enumerate().map(..).collect()` exactly — workers only
    /// partition the index space, they never reorder or combine results.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_cancellable(items, &|| false, f)
            .expect("a never-cancelled map always completes")
    }

    /// Like [`Self::map`], but polls `cancelled` between chunks and gives
    /// up cooperatively: once any worker observes `cancelled() == true`,
    /// no further chunk is started and the call returns `None`.
    ///
    /// A completed map (`Some`) is bit-identical to [`Self::map`]: the
    /// cancellation poll happens only at chunk boundaries and never
    /// changes the partitioning or evaluation order. Deadline-aware
    /// callers (the serving layer) pass `|| Instant::now() >= deadline`.
    pub fn map_cancellable<T, R, F, C>(&self, items: &[T], cancelled: &C, f: F) -> Option<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        C: Fn() -> bool + Sync,
    {
        if cancelled() {
            return None;
        }
        // One span per batch — never per point — so a 196-step sweep pays
        // for a single histogram record.
        let _span = monityre_obs::span!("sweep.batch");
        let chunk = self.chunk_for(items.len().max(1));
        if self.threads <= 1 || items.len() <= 1 {
            let mut results = Vec::with_capacity(items.len());
            for (start, batch) in items.chunks(chunk).enumerate() {
                if start > 0 && cancelled() {
                    return None;
                }
                let base = start * chunk;
                results.extend(batch.iter().enumerate().map(|(o, t)| f(base + o, t)));
            }
            return Some(results);
        }

        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        let workers = self.threads.min(items.len().div_ceil(chunk));

        // Trace context is thread-local; capture the caller's and
        // re-install it inside each scoped worker so spans recorded there
        // stay in the request's causal tree.
        let ctx = monityre_obs::current_context();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _ctx = ctx.map(monityre_obs::install_context);
                    loop {
                        if stop.load(Ordering::Relaxed) || cancelled() {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        let batch: Vec<R> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(offset, item)| f(start + offset, item))
                            .collect();
                        done.lock()
                            .expect("a sweep worker panicked while holding the result lock")
                            .push((start, batch));
                    }
                });
            }
        });

        if stop.load(Ordering::Relaxed) {
            return None;
        }
        let mut chunks = done
            .into_inner()
            .expect("a sweep worker panicked while holding the result lock");
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let results: Vec<R> = chunks.into_iter().flat_map(|(_, batch)| batch).collect();
        debug_assert_eq!(results.len(), items.len());
        Some(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..503).collect();
        let serial = SweepExecutor::serial().map(&items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 4, 8] {
            for chunk in [1, 7, 64, 1024] {
                let parallel = SweepExecutor::new(threads)
                    .with_chunk_size(chunk)
                    .map(&items, |i, &x| x * 3 + i as u64);
                assert_eq!(parallel, serial, "threads {threads} chunk {chunk}");
            }
        }
    }

    #[test]
    fn trace_context_propagates_into_scoped_workers() {
        let ctx = monityre_obs::TraceContext::root(3);
        let _g = monityre_obs::install_context(ctx);
        let items: Vec<u64> = (0..64).collect();
        let seen = SweepExecutor::new(4)
            .with_chunk_size(4)
            .map(&items, |_, _| {
                monityre_obs::current_context().map(|c| c.trace_id)
            });
        assert!(
            seen.iter().all(|id| *id == Some(ctx.trace_id)),
            "every worker must see the caller's trace context"
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<i32> = Vec::new();
        assert!(SweepExecutor::new(4).map(&none, |_, &x| x).is_empty());
        assert_eq!(SweepExecutor::new(4).map(&[9], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e", "f", "g"];
        let indexed = SweepExecutor::new(3)
            .with_chunk_size(2)
            .map(&items, |i, &s| (i, s));
        for (position, (index, _)) in indexed.iter().enumerate() {
            assert_eq!(position, *index);
        }
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(SweepExecutor::new(0).threads(), 1);
        assert!(SweepExecutor::available().threads() >= 1);
    }

    #[test]
    fn default_chunking_covers_input() {
        let executor = SweepExecutor::new(4);
        let chunk = executor.chunk_for(196);
        assert!(chunk >= 1);
        // Enough hand-outs to balance, few enough to amortize locking.
        assert!(196usize.div_ceil(chunk) >= 4);
    }

    #[test]
    #[should_panic(expected = "chunk size must be at least 1")]
    fn zero_chunk_rejected() {
        let _ = SweepExecutor::new(2).with_chunk_size(0);
    }

    #[test]
    fn cancellable_map_completes_when_never_cancelled() {
        let items: Vec<u64> = (0..97).collect();
        let expected = SweepExecutor::serial().map(&items, |i, &x| x + i as u64);
        for threads in [1, 2, 4] {
            let got = SweepExecutor::new(threads)
                .with_chunk_size(8)
                .map_cancellable(&items, &|| false, |i, &x| x + i as u64)
                .expect("not cancelled");
            assert_eq!(got, expected, "threads {threads}");
        }
    }

    #[test]
    fn cancelled_upfront_returns_none() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let out = SweepExecutor::new(threads).map_cancellable(&items, &|| true, |_, &x| x);
            assert!(out.is_none(), "threads {threads}");
        }
    }

    #[test]
    fn cancellation_mid_run_is_observed_at_chunk_boundaries() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..1024).collect();
        let evaluated = AtomicUsize::new(0);
        let out = SweepExecutor::new(2).with_chunk_size(4).map_cancellable(
            &items,
            &|| evaluated.load(Ordering::Relaxed) >= 8,
            |_, &x| {
                evaluated.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert!(out.is_none());
        // Far fewer evaluations than items: the map gave up early.
        assert!(evaluated.load(Ordering::Relaxed) < items.len());
    }

    #[test]
    fn env_var_overrides_available_parallelism() {
        // Runs in one test so the env mutations cannot race each other.
        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(SweepExecutor::available().threads(), 3);
        assert_eq!(SweepExecutor::try_available().unwrap().threads(), 3);
        std::env::set_var(THREADS_ENV_VAR, " 7 ");
        assert_eq!(SweepExecutor::available().threads(), 7);
        // Invalid overrides: `available` warns and falls back to the
        // hardware count; `try_available` rejects them outright.
        let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        std::env::set_var(THREADS_ENV_VAR, "0");
        assert_eq!(SweepExecutor::available().threads(), hardware);
        let err = SweepExecutor::try_available().unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        std::env::set_var(THREADS_ENV_VAR, "lots");
        assert_eq!(SweepExecutor::available().threads(), hardware);
        let err = SweepExecutor::try_available().unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        std::env::remove_var(THREADS_ENV_VAR);
        assert_eq!(SweepExecutor::available().threads(), hardware);
        assert_eq!(SweepExecutor::try_available().unwrap().threads(), hardware);
    }

    #[test]
    fn threads_override_parsing() {
        assert_eq!(parse_threads_override(None).unwrap(), None);
        assert_eq!(parse_threads_override(Some("4")).unwrap(), Some(4));
        assert_eq!(parse_threads_override(Some(" 12 ")).unwrap(), Some(12));
        assert!(parse_threads_override(Some("0")).is_err());
        assert!(parse_threads_override(Some("-2")).is_err());
        assert!(parse_threads_override(Some("4.5")).is_err());
        assert!(parse_threads_override(Some("lots")).is_err());
        assert!(parse_threads_override(Some("")).is_err());
    }
}
