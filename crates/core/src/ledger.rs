//! Per-block nanojoule energy attribution with conservation checking.
//!
//! The paper's flow computes a per-block dynamic/static energy split
//! weighted by duty cycle (§II) and then throws it away, reporting only
//! the aggregate balance of Fig. 2. An [`EnergyLedger`] keeps the
//! intermediate attribution: one entry per node block plus the extended
//! axes' surcharges (radio retransmission, supercap ageing leakage), the
//! harvested energy and the regulator's conversion loss, all quantized to
//! exact integer nanojoules.
//!
//! Two conservation layers hold on every ledger:
//!
//! 1. **Float layer** — the ledger is built from *one* per-block walk,
//!    and the replayed sum (the exact fold order of
//!    [`crate::NodeEnergy::total`] plus the extras fold of
//!    [`crate::ScenarioExtras::extra_required_per_round`]) must be
//!    bit-identical to the aggregate the balance's memoized
//!    [`crate::EnergyBalance::point`] path produces. With a warm memo the
//!    memoized figure is a genuinely independent witness; without one the
//!    property tests cross-check against `point()` directly.
//! 2. **Integer layer** — `consumed_nj` is *defined* as the sum of every
//!    attributed component and `storage_delta_nj` as
//!    `harvested_nj − consumed_nj`, so the nanojoule books balance by
//!    construction and [`EnergyLedger::conservation_holds`] can recheck
//!    them from the serialized form alone (the CI smoke does).
//!
//! A failed float check sets `conserved = false`, bumps the global
//! `ledger.conservation_violations` counter and drops a flight-recorder
//! event (which carries the active trace id as its exemplar), so a
//! violating request is attributable end to end.

use monityre_obs::{names, recorder, Registry};
use monityre_units::{Energy, Speed};
use serde::{Deserialize, Serialize};

/// Nanojoules per joule — the ledger's one quantization constant.
const NJ_PER_J: f64 = 1e9;

/// Deterministic joule → nanojoule quantization (round half away from
/// zero, the IEEE default of `f64::round`).
#[must_use]
pub fn quantize_nj(energy: Energy) -> i64 {
    (energy.joules() * NJ_PER_J).round() as i64
}

/// One block's attributed share of a round, integer nanojoules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The block's name (architecture block names are lowercase ASCII).
    pub block: String,
    /// Dynamic (switching + event) energy, nanojoules.
    pub dynamic_nj: i64,
    /// Static (leakage) energy, nanojoules.
    pub static_nj: i64,
    /// The block's active fraction of the round.
    pub duty: f64,
}

impl LedgerEntry {
    /// The entry's whole attributed energy, nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> i64 {
        self.dynamic_nj + self.static_nj
    }

    /// This entry's share of `consumed_nj`, percent (0 when the ledger
    /// consumed nothing).
    #[must_use]
    pub fn share_pct(&self, consumed_nj: i64) -> f64 {
        if consumed_nj == 0 {
            return 0.0;
        }
        self.total_nj() as f64 * 100.0 / consumed_nj as f64
    }
}

/// A fully attributed energy balance at one operating point.
///
/// Serializes with exact float bits for `speed`/`duty` and exact
/// integers for every energy figure, so two evaluations of the same
/// scenario at the same speed produce byte-identical JSON — the
/// property the `explain` wire op pins across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// The evaluated operating point.
    pub speed: Speed,
    /// Per-block attribution, in architecture (name) order.
    pub blocks: Vec<LedgerEntry>,
    /// Radio retransmission surcharge (PR 9 axis), nanojoules.
    pub radio_retx_nj: i64,
    /// Supercap ageing extra leakage (PR 9 axis), nanojoules.
    pub ageing_leak_nj: i64,
    /// Total consumed per round: Σ blocks + surcharges, by construction.
    pub consumed_nj: i64,
    /// Energy the harvesting chain delivers per round, nanojoules.
    pub harvested_nj: i64,
    /// Energy the regulator burns converting the raw harvest (raw −
    /// delivered); informational — already excluded from `harvested_nj`.
    pub regulator_loss_nj: i64,
    /// Net flow into storage per round: harvested − consumed, by
    /// construction (negative below break-even).
    pub storage_delta_nj: i64,
    /// Whether the float-layer replay was bit-identical to the
    /// aggregate `point()` figure.
    pub conserved: bool,
}

impl EnergyLedger {
    /// Assembles a ledger from the single-walk figures the balance
    /// gathered, running the conservation check.
    ///
    /// `aggregate_required` is the figure the `point()` path reports
    /// (memoized when a memo is warm); `replayed_required` is the same
    /// fold re-run over the per-block figures this ledger attributes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        speed: Speed,
        blocks: Vec<LedgerEntry>,
        radio_extra: Energy,
        ageing_extra: Energy,
        aggregate_required: Energy,
        replayed_required: Energy,
        generated: Energy,
        raw: Energy,
    ) -> Self {
        let conserved =
            replayed_required.joules().to_bits() == aggregate_required.joules().to_bits();
        if !conserved {
            Registry::global()
                .counter(names::LEDGER_CONSERVATION_VIOLATIONS)
                .inc();
            recorder::record_event(names::LEDGER_VIOLATION_EVENT);
        }
        let radio_retx_nj = quantize_nj(radio_extra);
        let ageing_leak_nj = quantize_nj(ageing_extra);
        let consumed_nj =
            blocks.iter().map(LedgerEntry::total_nj).sum::<i64>() + radio_retx_nj + ageing_leak_nj;
        let harvested_nj = quantize_nj(generated);
        Self {
            speed,
            blocks,
            radio_retx_nj,
            ageing_leak_nj,
            consumed_nj,
            harvested_nj,
            regulator_loss_nj: quantize_nj(raw - generated),
            storage_delta_nj: harvested_nj - consumed_nj,
            conserved,
        }
    }

    /// Rechecks both conservation layers from the ledger's own fields —
    /// trustworthy even after a wire round trip.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        let component_sum = self.blocks.iter().map(LedgerEntry::total_nj).sum::<i64>()
            + self.radio_retx_nj
            + self.ageing_leak_nj;
        self.conserved
            && component_sum == self.consumed_nj
            && self.harvested_nj - self.consumed_nj == self.storage_delta_nj
    }

    /// Whether the node runs at a surplus at this point.
    #[must_use]
    pub fn is_surplus(&self) -> bool {
        self.storage_delta_nj >= 0
    }

    /// The block consuming the most energy (first wins exact ties, so
    /// the answer is deterministic); `None` on an empty architecture.
    #[must_use]
    pub fn dominant_block(&self) -> Option<&LedgerEntry> {
        self.blocks
            .iter()
            .max_by(|a, b| a.total_nj().cmp(&b.total_nj()).then(b.block.cmp(&a.block)))
    }

    /// Entries sorted by descending attributed energy (name-ordered
    /// within exact ties) — the order the CLI table prints.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<&LedgerEntry> {
        let mut entries: Vec<&LedgerEntry> = self.blocks.iter().collect();
        entries.sort_by(|a, b| b.total_nj().cmp(&a.total_nj()).then(a.block.cmp(&b.block)));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnergyBalance, RadioLink, Scenario, ScenarioExtras, StorageAgeing};

    fn explain_reference(kmh: f64) -> EnergyLedger {
        EnergyBalance::new(&Scenario::reference())
            .unwrap()
            .explain(Speed::from_kmh(kmh))
            .unwrap()
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        assert_eq!(quantize_nj(Energy::from_joules(1.5e-9)), 2);
        assert_eq!(quantize_nj(Energy::from_joules(1.4e-9)), 1);
        assert_eq!(quantize_nj(Energy::from_joules(-1.5e-9)), -2);
        assert_eq!(quantize_nj(Energy::ZERO), 0);
    }

    #[test]
    fn reference_ledger_conserves_and_attributes_every_block() {
        let scenario = Scenario::reference();
        let ledger = explain_reference(60.0);
        assert!(ledger.conserved);
        assert!(ledger.conservation_holds());
        assert_eq!(ledger.blocks.len(), scenario.architecture().len());
        assert!(ledger.consumed_nj > 0);
        assert!(ledger.radio_retx_nj == 0 && ledger.ageing_leak_nj == 0);
        // 60 km/h is above the pinned ~34.5 km/h break-even.
        assert!(ledger.is_surplus());
        assert!(ledger.regulator_loss_nj >= 0);
    }

    #[test]
    fn ledger_matches_the_balance_point_aggregates() {
        let balance = EnergyBalance::new(&Scenario::reference()).unwrap();
        for kmh in [8.0, 34.5, 61.3, 144.0] {
            let v = Speed::from_kmh(kmh);
            let ledger = balance.explain(v).unwrap();
            let point = balance.point(v).unwrap();
            // Quantizing components before summing loses at most half a
            // nanojoule per component versus quantizing the sum.
            let slack = ledger.blocks.len() as i64 + 2;
            let required_nj = quantize_nj(point.required);
            assert!(
                (ledger.consumed_nj - required_nj).abs() <= slack,
                "{kmh} km/h: {} vs {required_nj}",
                ledger.consumed_nj
            );
            assert_eq!(ledger.harvested_nj, quantize_nj(point.generated));
            assert_eq!(ledger.is_surplus(), point.is_surplus());
        }
    }

    #[test]
    fn axes_surcharges_land_in_their_own_lines() {
        let base = explain_reference(40.0);
        let extras = ScenarioExtras::none()
            .with_radio(RadioLink::new(0.3, 5))
            .with_ageing(StorageAgeing::new(8.0));
        let scenario = Scenario::builder().extras(extras).build();
        let aged = EnergyBalance::new(&scenario)
            .unwrap()
            .explain(Speed::from_kmh(40.0))
            .unwrap();
        assert!(aged.conserved && aged.conservation_holds());
        assert!(aged.radio_retx_nj > 0);
        assert!(aged.ageing_leak_nj > 0);
        // The base-model block attribution is untouched by the axes.
        assert_eq!(aged.blocks, base.blocks);
        assert_eq!(
            aged.consumed_nj,
            base.consumed_nj + aged.radio_retx_nj + aged.ageing_leak_nj
        );
    }

    #[test]
    fn memoized_ledger_is_byte_identical_to_fresh() {
        let scenario = Scenario::reference();
        let v = Speed::from_kmh(47.3);
        let fresh = EnergyBalance::new(&scenario).unwrap().explain(v).unwrap();
        let memo = scenario.cache().unwrap().with_memo(64);
        let warm = EnergyBalance::with_cache(&scenario, memo);
        // Warm the memo through the point() path, then explain twice.
        let _ = warm.point(v).unwrap();
        let first = warm.explain(v).unwrap();
        let second = warm.explain(v).unwrap();
        let bytes = serde_json::to_string(&fresh).unwrap();
        assert_eq!(bytes, serde_json::to_string(&first).unwrap());
        assert_eq!(bytes, serde_json::to_string(&second).unwrap());
    }

    #[test]
    fn dominant_block_and_sort_are_deterministic() {
        let ledger = explain_reference(25.0);
        let sorted = ledger.sorted_entries();
        assert_eq!(sorted.len(), ledger.blocks.len());
        for pair in sorted.windows(2) {
            assert!(pair[0].total_nj() >= pair[1].total_nj());
        }
        assert_eq!(
            ledger.dominant_block().unwrap().block,
            sorted[0].block,
            "dominant is the sort's head"
        );
        let shares: f64 = ledger
            .blocks
            .iter()
            .map(|e| e.share_pct(ledger.consumed_nj))
            .sum();
        // Blocks alone carry 100 % when no axis surcharge exists.
        assert!((shares - 100.0).abs() < 1e-6, "{shares}");
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let ledger = explain_reference(90.0);
        let json = serde_json::to_string(&ledger).unwrap();
        let back: EnergyLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
        assert!(back.conservation_holds());
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
