//! Reporting: text tables, CSV series and ASCII charts.
//!
//! The paper's tool "report\[s\] the energy balance" graphically; here every
//! experiment harness prints its series as CSV (machine-readable rows) and
//! an ASCII chart (the human-readable shape), so the figures regenerate in
//! any terminal without a plotting dependency.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// ```
/// use monityre_core::report::Table;
///
/// let mut table = Table::new(vec!["block", "energy"]);
/// table.row(vec!["dsp".into(), "3.1 µJ".into()]);
/// let text = table.to_string();
/// assert!(text.contains("dsp"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                let _ = write!(line, "{cell:<width$}  ");
            }
            line.trim_end().to_owned()
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// One named series for [`ascii_chart`].
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// The glyph used to plot this series.
    pub glyph: char,
    /// `(x, y)` points (need not be sorted; they are plotted point-wise).
    pub points: Vec<(f64, f64)>,
}

/// Renders one or more series as an ASCII chart with axis ranges in the
/// margins — the terminal stand-in for the paper's Fig. 2/3 plots.
///
/// ```
/// use monityre_core::report::{ascii_chart, Series};
///
/// let chart = ascii_chart(
///     &[Series { label: "generated", glyph: '*',
///                points: (0..50).map(|i| (f64::from(i), f64::from(i * i))).collect() }],
///     60, 12,
/// );
/// assert!(chart.contains('*'));
/// assert!(chart.contains("generated"));
/// ```
#[must_use]
pub fn ascii_chart(series: &[Series<'_>], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return "(no data)\n".to_owned();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for (x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = s.glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y_max:>12.4} ┤");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>12} │{line}", "");
    }
    let _ = writeln!(out, "{y_min:>12.4} ┤");
    let _ = writeln!(out, "{:>13}{x_min:<.4} … {x_max:.4}", "");
    for s in series {
        let _ = writeln!(out, "{:>13}{} {}", "", s.glyph, s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
        // Columns align: "1" and "2" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let text = t.to_string();
        assert!(text.contains('1'));
    }

    #[test]
    #[should_panic(expected = "table needs at least one column")]
    fn table_rejects_no_columns() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn chart_plots_two_series_with_legend() {
        let chart = ascii_chart(
            &[
                Series {
                    label: "up",
                    glyph: '*',
                    points: (0..20).map(|i| (f64::from(i), f64::from(i))).collect(),
                },
                Series {
                    label: "down",
                    glyph: 'o',
                    points: (0..20).map(|i| (f64::from(i), f64::from(20 - i))).collect(),
                },
            ],
            40,
            10,
        );
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
    }

    #[test]
    fn chart_survives_degenerate_input() {
        assert!(ascii_chart(&[], 40, 10).contains("no data"));
        let flat = ascii_chart(
            &[Series {
                label: "flat",
                glyph: '*',
                points: vec![(1.0, 5.0), (2.0, 5.0)],
            }],
            40,
            10,
        );
        assert!(flat.contains('*'));
        let nan = ascii_chart(
            &[Series {
                label: "nan",
                glyph: '*',
                points: vec![(f64::NAN, f64::NAN)],
            }],
            40,
            10,
        );
        assert!(nan.contains("no data"));
    }

    #[test]
    fn chart_extremes_land_on_borders() {
        let chart = ascii_chart(
            &[Series {
                label: "corners",
                glyph: '#',
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            }],
            30,
            8,
        );
        let plot_lines: Vec<&str> = chart.lines().filter(|l| l.contains('│')).collect();
        // Top plot row has the max point, bottom has the min point.
        assert!(plot_lines.first().unwrap().contains('#'));
        assert!(plot_lines.last().unwrap().contains('#'));
    }
}
