//! Monte Carlo analysis of process variation.
//!
//! §II-A lists "process variation" among the parameters the evaluation
//! platform must expose. Beyond the three discrete corners, real silicon
//! spreads continuously: this module samples per-block leakage and
//! dynamic-power multipliers and reports the resulting *distribution* of
//! the break-even speed — the yield question "what fraction of
//! manufactured nodes activates below X km/h?".
//!
//! Each draw owns an independent RNG seeded from `mix(seed, index)`, so
//! draws can be evaluated on any [`SweepExecutor`] in any schedule and the
//! distribution stays bit-identical to the serial run.

use monityre_node::Architecture;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use monityre_units::Speed;

use crate::{CoreError, EnergyBalance, Scenario, SweepExecutor};

/// Spread parameters of the manufacturing distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Sigma of the log-normal leakage multiplier (lnN(0, σ)); leakage
    /// spreads by multiples across a lot.
    pub leakage_sigma: f64,
    /// Sigma of the (approximately normal) dynamic multiplier around 1.
    pub dynamic_sigma: f64,
}

impl VariationModel {
    /// Representative 130 nm spread: leakage σ = 0.45 (≈ 2.5× at ±2σ),
    /// dynamic σ = 0.03.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            leakage_sigma: 0.45,
            dynamic_sigma: 0.03,
        }
    }

    /// Validates the spreads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for negative or non-finite
    /// sigmas.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.leakage_sigma.is_finite() && self.leakage_sigma >= 0.0) {
            return Err(CoreError::invalid_parameter("leakage sigma must be >= 0"));
        }
        if !(self.dynamic_sigma.is_finite() && self.dynamic_sigma >= 0.0) {
            return Err(CoreError::invalid_parameter("dynamic sigma must be >= 0"));
        }
        Ok(())
    }
}

/// The sampled break-even distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenDistribution {
    /// Sorted break-even speeds of the samples that crossed.
    samples: Vec<Speed>,
    /// Samples whose balance never crossed in the swept range.
    never_crossed: usize,
}

impl BreakEvenDistribution {
    /// The sorted break-even samples.
    #[must_use]
    pub fn samples(&self) -> &[Speed] {
        &self.samples
    }

    /// How many Monte Carlo draws never reached surplus.
    #[must_use]
    pub fn never_crossed(&self) -> usize {
        self.never_crossed
    }

    /// Mean break-even speed.
    ///
    /// # Panics
    ///
    /// Panics if no sample crossed (checked at construction).
    #[must_use]
    pub fn mean(&self) -> Speed {
        let sum: f64 = self.samples.iter().map(|s| s.mps()).sum();
        Speed::from_mps(sum / self.samples.len() as f64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Speed {
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[idx]
    }

    /// Standard deviation of the break-even speed.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean().mps();
        let var: f64 = self
            .samples
            .iter()
            .map(|s| (s.mps() - mean).powi(2))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Fraction of manufactured nodes whose break-even is at or below
    /// `target` — the yield against an activation-speed spec.
    #[must_use]
    pub fn yield_at(&self, target: Speed) -> f64 {
        let total = self.samples.len() + self.never_crossed;
        let ok = self.samples.iter().filter(|s| **s <= target).count();
        ok as f64 / total as f64
    }
}

/// The Monte Carlo runner.
///
/// ```
/// use monityre_core::{MonteCarlo, Scenario, VariationModel};
/// use monityre_units::Speed;
///
/// let scenario = Scenario::reference();
/// let mc = MonteCarlo::new(&scenario, VariationModel::reference(), 42);
/// let dist = mc.break_even_distribution(64).unwrap();
/// assert!(dist.mean().kmh() > 20.0 && dist.mean().kmh() < 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    scenario: Scenario,
    variation: VariationModel,
    seed: u64,
}

impl MonteCarlo {
    /// Creates a runner with a fixed RNG seed (reproducible draws).
    #[must_use]
    pub fn new(scenario: &Scenario, variation: VariationModel, seed: u64) -> Self {
        Self {
            scenario: scenario.clone(),
            variation,
            seed,
        }
    }

    /// The nominal (undrawn) evaluation session.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Draws one manufactured instance of the architecture: every block's
    /// leakage scaled log-normally, dynamic scaled normally.
    fn draw(&self, rng: &mut StdRng) -> Result<Architecture, CoreError> {
        let mut arch = self.scenario.architecture().clone();
        let names: Vec<String> = arch.block_names().map(str::to_owned).collect();
        for name in names {
            let model = arch.database().block(&name)?.clone();
            let leak_factor = (standard_normal(rng) * self.variation.leakage_sigma).exp();
            let dyn_factor = (1.0 + standard_normal(rng) * self.variation.dynamic_sigma).max(0.5);
            let varied = model
                .with_leakage(model.leakage().scaled(leak_factor))
                .with_dynamic(model.dynamic().scaled(dyn_factor));
            arch = arch.with_block_model(varied)?;
        }
        Ok(arch)
    }

    /// Evaluates draw `index`: an independent RNG, a varied architecture,
    /// and the break-even of its balance (or `None` when it never crosses).
    fn sample(&self, index: u64) -> Result<Option<Speed>, CoreError> {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, index));
        let arch = self.draw(&mut rng)?;
        let varied = self.scenario.with_architecture(arch);
        let report =
            EnergyBalance::new(&varied)?.sweep(Speed::from_kmh(6.0), Speed::from_kmh(220.0), 108);
        Ok(report.break_even())
    }

    /// Samples `n` instances serially and collects the break-even
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `n == 0`, an invalid
    /// variation model, or when *no* sampled instance ever crosses.
    pub fn break_even_distribution(&self, n: usize) -> Result<BreakEvenDistribution, CoreError> {
        self.break_even_distribution_with(n, &SweepExecutor::serial())
    }

    /// Samples `n` instances on `executor`'s workers. Seeds are
    /// partitioned per draw, so the distribution is bit-identical to
    /// [`Self::break_even_distribution`] for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `n == 0`, an invalid
    /// variation model, or when *no* sampled instance ever crosses.
    pub fn break_even_distribution_with(
        &self,
        n: usize,
        executor: &SweepExecutor,
    ) -> Result<BreakEvenDistribution, CoreError> {
        self.break_even_distribution_cancellable(n, executor, &|| false)
            .map(|dist| dist.expect("a never-cancelled run always completes"))
    }

    /// Samples `n` instances on `executor`'s workers, polling `cancelled`
    /// between draw chunks; returns `Ok(None)` when the run was abandoned.
    /// A completed run is bit-identical to
    /// [`Self::break_even_distribution_with`] — the serving layer uses
    /// this to honour per-request deadlines.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `n == 0`, an invalid
    /// variation model, or when *no* sampled instance ever crosses.
    pub fn break_even_distribution_cancellable<C: Fn() -> bool + Sync>(
        &self,
        n: usize,
        executor: &SweepExecutor,
        cancelled: &C,
    ) -> Result<Option<BreakEvenDistribution>, CoreError> {
        if n == 0 {
            return Err(CoreError::invalid_parameter("need at least one sample"));
        }
        self.variation.validate()?;
        let _span = monityre_obs::span!("mc.draws");
        let indices: Vec<u64> = (0..n as u64).collect();
        let Some(outcomes) =
            executor.map_cancellable(&indices, cancelled, |_, &index| self.sample(index))
        else {
            return Ok(None);
        };
        let mut samples = Vec::with_capacity(n);
        let mut never_crossed = 0usize;
        for outcome in outcomes {
            match outcome? {
                Some(speed) => samples.push(speed),
                None => never_crossed += 1,
            }
        }
        if samples.is_empty() {
            return Err(CoreError::invalid_parameter(
                "no sampled instance ever reached surplus",
            ));
        }
        samples.sort_by(Speed::total_cmp);
        Ok(Some(BreakEvenDistribution {
            samples,
            never_crossed,
        }))
    }
}

/// Derives draw `index`'s seed from the base seed: a splitmix64 finalizer
/// over `base ⊕ index·φ64`, so neighbouring indices land in uncorrelated
/// streams and every draw is schedule-independent.
fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Approximately standard-normal draw (Irwin–Hall with 12 uniforms),
/// adequate for spread modelling and free of extra dependencies.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
    sum - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_centers_near_nominal() {
        let scenario = Scenario::reference();
        let nominal = EnergyBalance::new(&scenario)
            .unwrap()
            .sweep(Speed::from_kmh(6.0), Speed::from_kmh(220.0), 108)
            .break_even()
            .unwrap();
        let mc = MonteCarlo::new(&scenario, VariationModel::reference(), 7);
        let dist = mc.break_even_distribution(96).unwrap();
        assert!(
            (dist.mean().kmh() - nominal.kmh()).abs() < 5.0,
            "mean {} vs nominal {}",
            dist.mean(),
            nominal
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let mc = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), 11);
        let dist = mc.break_even_distribution(64).unwrap();
        assert!(dist.quantile(0.05) <= dist.quantile(0.5));
        assert!(dist.quantile(0.5) <= dist.quantile(0.95));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let scenario = Scenario::reference();
        let a = MonteCarlo::new(&scenario, VariationModel::reference(), 5)
            .break_even_distribution(32)
            .unwrap();
        let b = MonteCarlo::new(&scenario, VariationModel::reference(), 5)
            .break_even_distribution(32)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_draws_match_serial_bit_for_bit() {
        let mc = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), 13);
        let serial = mc.break_even_distribution(48).unwrap();
        for threads in [2, 3, 8] {
            let parallel = mc
                .break_even_distribution_with(48, &SweepExecutor::new(threads))
                .unwrap();
            assert_eq!(parallel.samples().len(), serial.samples().len());
            for (s, p) in serial.samples().iter().zip(parallel.samples()) {
                assert_eq!(s.mps().to_bits(), p.mps().to_bits(), "threads {threads}");
            }
            assert_eq!(parallel.never_crossed(), serial.never_crossed());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let scenario = Scenario::reference();
        let a = MonteCarlo::new(&scenario, VariationModel::reference(), 5)
            .break_even_distribution(32)
            .unwrap();
        let b = MonteCarlo::new(&scenario, VariationModel::reference(), 6)
            .break_even_distribution(32)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_variation_collapses_the_distribution() {
        let model = VariationModel {
            leakage_sigma: 0.0,
            dynamic_sigma: 0.0,
        };
        let dist = MonteCarlo::new(&Scenario::reference(), model, 3)
            .break_even_distribution(16)
            .unwrap();
        assert!(dist.std_dev() < 1e-9, "std {}", dist.std_dev());
    }

    #[test]
    fn wider_spread_widens_the_distribution() {
        let scenario = Scenario::reference();
        let narrow = MonteCarlo::new(
            &scenario,
            VariationModel {
                leakage_sigma: 0.1,
                dynamic_sigma: 0.01,
            },
            9,
        )
        .break_even_distribution(64)
        .unwrap();
        let wide = MonteCarlo::new(
            &scenario,
            VariationModel {
                leakage_sigma: 0.8,
                dynamic_sigma: 0.08,
            },
            9,
        )
        .break_even_distribution(64)
        .unwrap();
        assert!(wide.std_dev() > narrow.std_dev());
    }

    #[test]
    fn yield_is_monotone_in_target() {
        let dist = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), 21)
            .break_even_distribution(64)
            .unwrap();
        let y30 = dist.yield_at(Speed::from_kmh(30.0));
        let y40 = dist.yield_at(Speed::from_kmh(40.0));
        let y60 = dist.yield_at(Speed::from_kmh(60.0));
        assert!(y30 <= y40 && y40 <= y60);
        assert!(y60 > 0.8);
    }

    #[test]
    fn rejects_bad_inputs() {
        let scenario = Scenario::reference();
        let mc = MonteCarlo::new(&scenario, VariationModel::reference(), 1);
        assert!(mc.break_even_distribution(0).is_err());
        let bad = MonteCarlo::new(
            &scenario,
            VariationModel {
                leakage_sigma: -1.0,
                dynamic_sigma: 0.0,
            },
            1,
        );
        assert!(bad.break_even_distribution(4).is_err());
    }

    #[test]
    fn cancellable_run_matches_and_cancels() {
        let mc = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), 17);
        let plain = mc.break_even_distribution(24).unwrap();
        let completed = mc
            .break_even_distribution_cancellable(24, &SweepExecutor::new(2), &|| false)
            .unwrap()
            .expect("not cancelled");
        assert_eq!(plain, completed);
        let abandoned = mc
            .break_even_distribution_cancellable(24, &SweepExecutor::new(2), &|| true)
            .unwrap();
        assert!(abandoned.is_none());
    }

    #[test]
    fn distribution_round_trips_through_json() {
        let mc = MonteCarlo::new(&Scenario::reference(), VariationModel::reference(), 23);
        let dist = mc.break_even_distribution(16).unwrap();
        let json = serde_json::to_string(&dist).unwrap();
        let back: BreakEvenDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(dist, back);
    }

    #[test]
    fn mixed_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            assert!(seen.insert(mix_seed(42, i)));
        }
    }
}
