//! Monte Carlo analysis of process variation.
//!
//! §II-A lists "process variation" among the parameters the evaluation
//! platform must expose. Beyond the three discrete corners, real silicon
//! spreads continuously: this module samples per-block leakage and
//! dynamic-power multipliers and reports the resulting *distribution* of
//! the break-even speed — the yield question "what fraction of
//! manufactured nodes activates below X km/h?".

use monityre_harvest::HarvestChain;
use monityre_node::Architecture;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use monityre_units::Speed;

use crate::{CoreError, EnergyAnalyzer, EnergyBalance};

/// Spread parameters of the manufacturing distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Sigma of the log-normal leakage multiplier (lnN(0, σ)); leakage
    /// spreads by multiples across a lot.
    pub leakage_sigma: f64,
    /// Sigma of the (approximately normal) dynamic multiplier around 1.
    pub dynamic_sigma: f64,
}

impl VariationModel {
    /// Representative 130 nm spread: leakage σ = 0.45 (≈ 2.5× at ±2σ),
    /// dynamic σ = 0.03.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            leakage_sigma: 0.45,
            dynamic_sigma: 0.03,
        }
    }

    /// Validates the spreads.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for negative or non-finite
    /// sigmas.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.leakage_sigma.is_finite() && self.leakage_sigma >= 0.0) {
            return Err(CoreError::invalid_parameter("leakage sigma must be >= 0"));
        }
        if !(self.dynamic_sigma.is_finite() && self.dynamic_sigma >= 0.0) {
            return Err(CoreError::invalid_parameter("dynamic sigma must be >= 0"));
        }
        Ok(())
    }
}

/// The sampled break-even distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakEvenDistribution {
    /// Sorted break-even speeds of the samples that crossed.
    samples: Vec<Speed>,
    /// Samples whose balance never crossed in the swept range.
    never_crossed: usize,
}

impl BreakEvenDistribution {
    /// The sorted break-even samples.
    #[must_use]
    pub fn samples(&self) -> &[Speed] {
        &self.samples
    }

    /// How many Monte Carlo draws never reached surplus.
    #[must_use]
    pub fn never_crossed(&self) -> usize {
        self.never_crossed
    }

    /// Mean break-even speed.
    ///
    /// # Panics
    ///
    /// Panics if no sample crossed (checked at construction).
    #[must_use]
    pub fn mean(&self) -> Speed {
        let sum: f64 = self.samples.iter().map(|s| s.mps()).sum();
        Speed::from_mps(sum / self.samples.len() as f64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Speed {
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[idx]
    }

    /// Standard deviation of the break-even speed.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean().mps();
        let var: f64 = self
            .samples
            .iter()
            .map(|s| (s.mps() - mean).powi(2))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Fraction of manufactured nodes whose break-even is at or below
    /// `target` — the yield against an activation-speed spec.
    #[must_use]
    pub fn yield_at(&self, target: Speed) -> f64 {
        let total = self.samples.len() + self.never_crossed;
        let ok = self.samples.iter().filter(|s| **s <= target).count();
        ok as f64 / total as f64
    }
}

/// The Monte Carlo runner.
///
/// ```
/// use monityre_core::{EnergyAnalyzer, MonteCarlo, VariationModel};
/// use monityre_harvest::HarvestChain;
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_units::Speed;
///
/// let arch = Architecture::reference();
/// let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
/// let chain = HarvestChain::reference();
/// let mc = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 42);
/// let dist = mc.break_even_distribution(64).unwrap();
/// assert!(dist.mean().kmh() > 20.0 && dist.mean().kmh() < 60.0);
/// ```
#[derive(Debug)]
pub struct MonteCarlo<'a> {
    analyzer: &'a EnergyAnalyzer<'a>,
    chain: &'a HarvestChain,
    variation: VariationModel,
    seed: u64,
}

impl<'a> MonteCarlo<'a> {
    /// Creates a runner with a fixed RNG seed (reproducible draws).
    #[must_use]
    pub fn new(
        analyzer: &'a EnergyAnalyzer<'a>,
        chain: &'a HarvestChain,
        variation: VariationModel,
        seed: u64,
    ) -> Self {
        Self {
            analyzer,
            chain,
            variation,
            seed,
        }
    }

    /// Draws one manufactured instance of the architecture: every block's
    /// leakage scaled log-normally, dynamic scaled normally.
    fn draw(&self, rng: &mut StdRng) -> Result<Architecture, CoreError> {
        let mut arch = self.analyzer.architecture().clone();
        let names: Vec<String> = arch.block_names().map(str::to_owned).collect();
        for name in names {
            let model = arch.database().block(&name)?.clone();
            let leak_factor = (standard_normal(rng) * self.variation.leakage_sigma).exp();
            let dyn_factor =
                (1.0 + standard_normal(rng) * self.variation.dynamic_sigma).max(0.5);
            let varied = model
                .with_leakage(model.leakage().scaled(leak_factor))
                .with_dynamic(model.dynamic().scaled(dyn_factor));
            arch = arch.with_block_model(varied)?;
        }
        Ok(arch)
    }

    /// Samples `n` instances and collects the break-even distribution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for `n == 0`, an invalid
    /// variation model, or when *no* sampled instance ever crosses.
    pub fn break_even_distribution(&self, n: usize) -> Result<BreakEvenDistribution, CoreError> {
        if n == 0 {
            return Err(CoreError::invalid_parameter("need at least one sample"));
        }
        self.variation.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(n);
        let mut never_crossed = 0usize;
        for _ in 0..n {
            let arch = self.draw(&mut rng)?;
            let analyzer = EnergyAnalyzer::new(&arch, self.analyzer.conditions())
                .with_wheel(*self.analyzer.wheel());
            let report = EnergyBalance::new(&analyzer, self.chain).sweep(
                Speed::from_kmh(6.0),
                Speed::from_kmh(220.0),
                108,
            );
            match report.break_even() {
                Some(speed) => samples.push(speed),
                None => never_crossed += 1,
            }
        }
        if samples.is_empty() {
            return Err(CoreError::invalid_parameter(
                "no sampled instance ever reached surplus",
            ));
        }
        samples.sort_by(Speed::total_cmp);
        Ok(BreakEvenDistribution {
            samples,
            never_crossed,
        })
    }
}

/// Approximately standard-normal draw (Irwin–Hall with 12 uniforms),
/// adequate for spread modelling and free of extra dependencies.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
    sum - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_power::WorkingConditions;

    fn fixture() -> (Architecture, HarvestChain) {
        (Architecture::reference(), HarvestChain::reference())
    }

    #[test]
    fn distribution_centers_near_nominal() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference())
            .with_wheel(*chain.wheel());
        let nominal = EnergyBalance::new(&analyzer, &chain)
            .sweep(Speed::from_kmh(6.0), Speed::from_kmh(220.0), 108)
            .break_even()
            .unwrap();
        let mc = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 7);
        let dist = mc.break_even_distribution(96).unwrap();
        assert!(
            (dist.mean().kmh() - nominal.kmh()).abs() < 5.0,
            "mean {} vs nominal {}",
            dist.mean(),
            nominal
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let mc = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 11);
        let dist = mc.break_even_distribution(64).unwrap();
        assert!(dist.quantile(0.05) <= dist.quantile(0.5));
        assert!(dist.quantile(0.5) <= dist.quantile(0.95));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let a = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 5)
            .break_even_distribution(32)
            .unwrap();
        let b = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 5)
            .break_even_distribution(32)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variation_collapses_the_distribution() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let model = VariationModel {
            leakage_sigma: 0.0,
            dynamic_sigma: 0.0,
        };
        let dist = MonteCarlo::new(&analyzer, &chain, model, 3)
            .break_even_distribution(16)
            .unwrap();
        assert!(dist.std_dev() < 1e-9, "std {}", dist.std_dev());
    }

    #[test]
    fn wider_spread_widens_the_distribution() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let narrow = MonteCarlo::new(
            &analyzer,
            &chain,
            VariationModel { leakage_sigma: 0.1, dynamic_sigma: 0.01 },
            9,
        )
        .break_even_distribution(64)
        .unwrap();
        let wide = MonteCarlo::new(
            &analyzer,
            &chain,
            VariationModel { leakage_sigma: 0.8, dynamic_sigma: 0.08 },
            9,
        )
        .break_even_distribution(64)
        .unwrap();
        assert!(wide.std_dev() > narrow.std_dev());
    }

    #[test]
    fn yield_is_monotone_in_target() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let dist = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 21)
            .break_even_distribution(64)
            .unwrap();
        let y30 = dist.yield_at(Speed::from_kmh(30.0));
        let y40 = dist.yield_at(Speed::from_kmh(40.0));
        let y60 = dist.yield_at(Speed::from_kmh(60.0));
        assert!(y30 <= y40 && y40 <= y60);
        assert!(y60 > 0.8);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (arch, chain) = fixture();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let mc = MonteCarlo::new(&analyzer, &chain, VariationModel::reference(), 1);
        assert!(mc.break_even_distribution(0).is_err());
        let bad = MonteCarlo::new(
            &analyzer,
            &chain,
            VariationModel { leakage_sigma: -1.0, dynamic_sigma: 0.0 },
            1,
        );
        assert!(bad.break_even_distribution(4).is_err());
    }
}
