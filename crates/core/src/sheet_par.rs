//! Parallel spreadsheet recompute: a [`SweepExecutor`]-backed
//! [`LevelMap`].
//!
//! The sheet engine stratifies its dependency graph into topological
//! levels; cells within one level are independent by construction, so a
//! wide level can fan out across worker threads. This module is the glue
//! between the two crates — `monityre-core` already depends on
//! `monityre-sheet`, so the sheet crate defines the [`LevelMap`] seam and
//! core supplies the threaded implementation:
//!
//! ```
//! use std::sync::Arc;
//! use monityre_core::SweepLevelMap;
//! use monityre_sheet::Sheet;
//!
//! let mut sheet = Sheet::new();
//! sheet.set_level_map(Arc::new(SweepLevelMap::available()));
//! ```
//!
//! Results are written back slot-for-slot (`out[i] == eval(i)`), so the
//! recompute wave — and therefore every cell value — is bit-identical to
//! the serial engine regardless of thread count. Evaluation counters are
//! merged centrally by the sheet engine, not per thread, so
//! `evaluation_count` is thread-count independent too.

use std::sync::Arc;

use monityre_sheet::{LevelMap, Sheet};

use crate::executor::SweepExecutor;

/// Below this width a level runs inline: the fixed cost of handing chunks
/// to workers outstrips the evaluation work for narrow levels (the common
/// case for interactive single-cell edits).
const PARALLEL_THRESHOLD: usize = 64;

/// A [`LevelMap`] that chunks each wide level across the worker threads of
/// a [`SweepExecutor`] (respecting `MONITYRE_THREADS`).
#[derive(Debug, Clone, Copy)]
pub struct SweepLevelMap {
    executor: SweepExecutor,
    threshold: usize,
}

impl SweepLevelMap {
    /// Wraps an executor.
    #[must_use]
    pub fn new(executor: SweepExecutor) -> Self {
        Self {
            executor,
            threshold: PARALLEL_THRESHOLD,
        }
    }

    /// Uses the environment-selected worker count ([`SweepExecutor::available`]).
    #[must_use]
    pub fn available() -> Self {
        Self::new(SweepExecutor::available())
    }

    /// Overrides the width below which a level runs inline (mainly for
    /// tests; the default is tuned for ~µs-scale cell programs).
    #[must_use]
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// The wrapped executor's thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }
}

impl LevelMap for SweepLevelMap {
    fn map_level(&self, count: usize, eval: &(dyn Fn(usize) -> f64 + Sync)) -> Vec<f64> {
        if count < self.threshold || self.executor.threads() <= 1 {
            return (0..count).map(eval).collect();
        }
        let indices: Vec<usize> = (0..count).collect();
        self.executor.map(&indices, |_, &i| eval(i))
    }
}

/// Installs a [`SweepLevelMap`] over `executor` on a sheet (convenience
/// for serve/CLI call sites).
pub fn install_parallel_recompute(sheet: &mut Sheet, executor: SweepExecutor) {
    sheet.set_level_map(Arc::new(SweepLevelMap::new(executor)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A wide two-level workbook: `mid_i = f(src_i)` for many i, then a
    /// handful of aggregates over the mids.
    fn wide_sheet(width: usize) -> Sheet {
        let mut sheet = Sheet::new();
        for i in 0..width {
            sheet
                .set_number(&format!("src{i}"), 0.1 + i as f64)
                .unwrap();
        }
        for i in 0..width {
            sheet
                .set_formula(
                    &format!("mid{i}"),
                    &format!("sqrt(src{i}) * exp(src{i} / 500) + ln(src{i} + 1)"),
                )
                .unwrap();
        }
        let terms: Vec<String> = (0..width).map(|i| format!("mid{i}")).collect();
        sheet
            .set_formula("total", &format!("sum({})", terms.join(", ")))
            .unwrap();
        sheet
    }

    #[test]
    fn parallel_recompute_is_bit_identical_to_serial() {
        const WIDTH: usize = 300;
        let mut serial = wide_sheet(WIDTH);
        let mut parallel = wide_sheet(WIDTH);
        parallel.set_level_map(Arc::new(
            SweepLevelMap::new(SweepExecutor::new(4)).with_threshold(8),
        ));
        for (round, value) in [(0usize, 2.5f64), (7, 0.125), (131, 9.75)] {
            serial.set_number(&format!("src{round}"), value).unwrap();
            parallel.set_number(&format!("src{round}"), value).unwrap();
            parallel.recompute_all().unwrap();
            for i in 0..WIDTH {
                let name = format!("mid{i}");
                assert_eq!(
                    parallel.value(&name).unwrap().to_bits(),
                    serial.value(&name).unwrap().to_bits(),
                    "cell {name}"
                );
            }
            assert_eq!(
                parallel.value("total").unwrap().to_bits(),
                serial.value("total").unwrap().to_bits()
            );
        }
    }

    #[test]
    fn evaluation_count_is_thread_count_independent() {
        const WIDTH: usize = 200;
        let mut serial = wide_sheet(WIDTH);
        let mut parallel = wide_sheet(WIDTH);
        install_parallel_recompute(&mut parallel, SweepExecutor::new(4));
        let (s0, p0) = (serial.evaluation_count(), parallel.evaluation_count());
        serial.recompute_all().unwrap();
        parallel.recompute_all().unwrap();
        assert_eq!(
            serial.evaluation_count() - s0,
            parallel.evaluation_count() - p0
        );
    }

    #[test]
    fn narrow_levels_run_inline() {
        // Single-cell edits must not pay the fan-out cost; this is purely
        // behavioral (no way to observe the inline path directly), so we
        // just check correctness with a threshold higher than the level.
        let mut sheet = wide_sheet(16);
        install_parallel_recompute(&mut sheet, SweepExecutor::new(4));
        sheet.set_number("src3", 42.0).unwrap();
        let expected = 42.0f64.sqrt() * (42.0f64 / 500.0).exp() + 43.0f64.ln();
        assert_eq!(sheet.value("mid3").unwrap().to_bits(), expected.to_bits());
    }
}
