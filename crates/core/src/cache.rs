//! Memoized per-block energy figures.
//!
//! A sweep evaluates the same architecture under the same conditions at
//! hundreds of speeds, but only the round *period* changes between points:
//! every power lookup (`model.power(mode, conditions)`) and every
//! workload event energy is speed-independent. [`EvalCache`] hoists those
//! out of the per-point loop once per [`Scenario`], so a sweep point costs
//! one `resolve()` walk instead of a full database traversal.
//!
//! The cached evaluation replays the exact floating-point operations of
//! [`crate::EnergyAnalyzer::block_energy`] in the exact order, so cached and
//! uncached figures are bit-identical — the property the parallel sweep
//! tests pin down.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use monityre_node::RoundSchedule;
use monityre_power::PowerBreakdown;
use monityre_profile::Wheel;
use monityre_units::{Duration, Energy, Power, Speed};
use serde::{Deserialize, Serialize};

use crate::{BlockEnergy, CoreError, NodeEnergy, Scenario};

/// One block's speed-independent figures.
#[derive(Debug, Clone)]
struct BlockFigures {
    name: String,
    schedule: RoundSchedule,
    rest_power: PowerBreakdown,
    /// Power in each scheduled phase's mode, aligned with
    /// `schedule.phases()` (and therefore with `schedule.resolve(..)`).
    phase_powers: Vec<PowerBreakdown>,
    /// Pre-multiplied `per_event × count` workload contributions, in
    /// workload iteration order.
    event_contributions: Vec<Energy>,
}

impl BlockFigures {
    /// Replays [`crate::EnergyAnalyzer::block_energy`] for a concrete period.
    fn energy(&self, period: Duration) -> BlockEnergy {
        // Baseline: the whole round in the rest mode…
        let mut energy = self.rest_power.over(period);
        // …corrected by each phase's amortized delta over the rest mode.
        for (phase, phase_power) in self.schedule.resolve(period).iter().zip(&self.phase_powers) {
            let delta_dyn = phase_power.dynamic - self.rest_power.dynamic;
            let delta_leak = phase_power.leakage - self.rest_power.leakage;
            let share = phase.amortized_duration();
            energy.dynamic += delta_dyn * share;
            energy.leakage += delta_leak * share;
        }
        // Event energy is workload-proportional switching energy.
        for contribution in &self.event_contributions {
            energy.dynamic += *contribution;
        }
        BlockEnergy {
            name: self.name.clone(),
            energy,
            duty_cycle: self.schedule.duty_cycle(period),
        }
    }
}

/// Hit/miss/eviction tallies of an [`EvalCache`]'s per-speed memo —
/// see [`EvalCache::stats`]. All zeros when no memo is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheCounts {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries displaced to stay within capacity.
    pub evictions: u64,
}

impl CacheCounts {
    /// Element-wise sum — the serving layer aggregates one `CacheCounts`
    /// per warm scenario into a node-wide view.
    #[must_use]
    pub fn merged(self, other: CacheCounts) -> CacheCounts {
        CacheCounts {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// How many independent shards a [`SpeedMemo`] spreads keys over.
const MEMO_SHARDS: usize = 8;

/// A bounded, sharded speed → energy memo (FIFO eviction per shard).
///
/// Keys are the exact `f64` bit pattern of the speed in m/s, so a hit
/// returns the *identical* previously computed figure — memoization can
/// never perturb bit-identity. Shared via `Arc`, so clones of the owning
/// cache keep one tally.
#[derive(Debug)]
struct SpeedMemo {
    shards: [Mutex<MemoShard>; MEMO_SHARDS],
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug, Default)]
struct MemoShard {
    entries: HashMap<u64, f64>,
    order: VecDeque<u64>,
}

impl SpeedMemo {
    fn new(capacity: usize) -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(MemoShard::default())),
            per_shard_capacity: capacity.div_ceil(MEMO_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fibonacci hashing over the raw bits: speeds on a uniform grid
    /// differ in low mantissa bits, which this spreads across shards.
    fn shard_of(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) as usize % MEMO_SHARDS
    }

    fn get(&self, key: u64) -> Option<f64> {
        let shard = self.shards[Self::shard_of(key)].lock().expect("memo shard");
        let found = shard.entries.get(&key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: u64, value: f64) {
        let mut shard = self.shards[Self::shard_of(key)].lock().expect("memo shard");
        if shard.entries.contains_key(&key) {
            return; // a racing worker beat us to the same speed
        }
        if shard.entries.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard.order.pop_front() {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, value);
        shard.order.push_back(key);
    }

    fn counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Per-block, per-conditions energy figures hoisted out of the sweep loop.
///
/// Built once per [`Scenario`] (see [`Scenario::cache`]) and immutable
/// afterwards, so sweep workers can evaluate points through a shared
/// reference.
///
/// ```
/// use monityre_core::{EvalCache, Scenario};
/// use monityre_units::Speed;
///
/// let scenario = Scenario::reference();
/// let cache = scenario.cache().unwrap();
/// let direct = scenario.analyzer().required_per_round(Speed::from_kmh(60.0)).unwrap();
/// let cached = cache.required_per_round(Speed::from_kmh(60.0)).unwrap();
/// assert_eq!(cached.joules().to_bits(), direct.joules().to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct EvalCache {
    wheel: Wheel,
    blocks: Vec<BlockFigures>,
    /// Opt-in per-speed memo ([`Self::with_memo`]); `None` keeps the
    /// sweep hot path allocation- and lock-free.
    memo: Option<Arc<SpeedMemo>>,
}

impl EvalCache {
    /// Precomputes every speed-independent figure of the scenario's
    /// architecture, in `block_names()` order.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors for malformed architectures.
    pub fn new(scenario: &Scenario) -> Result<Self, CoreError> {
        let architecture = scenario.architecture();
        let conditions = scenario.conditions();
        let mut blocks = Vec::with_capacity(architecture.len());
        for name in architecture.block_names() {
            let plan = architecture.plan(name)?;
            let model = architecture.database().block(name)?;
            let schedule = plan.schedule().clone();
            let rest_power = model.power(schedule.rest_mode(), &conditions);
            let phase_powers = schedule
                .phases()
                .iter()
                .map(|phase| model.power(phase.mode, &conditions))
                .collect();
            let mut event_contributions = Vec::new();
            for (kind, count) in plan.workload().iter() {
                if let Some(per_event) = model.event_energy(kind, &conditions) {
                    event_contributions.push(per_event * count);
                }
            }
            blocks.push(BlockFigures {
                name: name.to_owned(),
                schedule,
                rest_power,
                phase_powers,
                event_contributions,
            });
        }
        Ok(Self {
            wheel: *scenario.wheel(),
            blocks,
            memo: None,
        })
    }

    /// Attaches a bounded per-speed memo of [`Self::required_per_round`]
    /// results (total `capacity` entries across shards, FIFO eviction).
    /// A memo hit returns the identical previously computed `f64`, so
    /// bit-identity with the analyzer is preserved by construction. The
    /// serving layer enables this for its warm scenarios, where repeated
    /// requests revisit the same speed grids; one-shot sweeps should not.
    #[must_use]
    pub fn with_memo(mut self, capacity: usize) -> Self {
        self.memo = Some(Arc::new(SpeedMemo::new(capacity)));
        self
    }

    /// Whether a per-speed memo is attached.
    #[must_use]
    pub fn has_memo(&self) -> bool {
        self.memo.is_some()
    }

    /// The memo's hit/miss/eviction tallies (all zeros without a memo).
    /// Clones of this cache share one memo, so the tallies aggregate
    /// across every sweep worker that touched it.
    #[must_use]
    pub fn stats(&self) -> CacheCounts {
        self.memo
            .as_ref()
            .map_or_else(CacheCounts::default, |m| m.counts())
    }

    /// The number of cached blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The wheel-round period at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill or below.
    pub fn round_period(&self, speed: Speed) -> Result<Duration, CoreError> {
        if speed.mps() <= 0.0 || !speed.is_finite() {
            return Err(CoreError::round_undefined(speed.kmh()));
        }
        Ok(self.wheel.round_period(speed))
    }

    /// The whole node's energy per wheel round at `speed` — bit-identical
    /// to [`crate::EnergyAnalyzer::node_energy`] on the same scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn node_energy(&self, speed: Speed) -> Result<NodeEnergy, CoreError> {
        let round_period = self.round_period(speed)?;
        let blocks = self
            .blocks
            .iter()
            .map(|figures| figures.energy(round_period))
            .collect();
        Ok(NodeEnergy {
            speed,
            round_period,
            blocks,
        })
    }

    /// Required energy per round at `speed` — the demand curve of Fig. 2.
    /// With a memo attached ([`Self::with_memo`]) repeated speeds are
    /// answered from it, bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn required_per_round(&self, speed: Speed) -> Result<Energy, CoreError> {
        let Some(memo) = &self.memo else {
            return Ok(self.node_energy(speed)?.total().total());
        };
        let key = speed.mps().to_bits();
        if let Some(joules) = memo.get(key) {
            return Ok(Energy::from_joules(joules));
        }
        let value = self.node_energy(speed)?.total().total();
        memo.insert(key, value.joules());
        Ok(value)
    }

    /// One per-block walk serving the energy ledger: returns the
    /// [`NodeEnergy`] figures, the replayed aggregate (the exact
    /// [`NodeEnergy::total`] fold over them) and the aggregate the
    /// memoized [`Self::required_per_round`] path reports for the same
    /// speed — from the memo when warm (an independent witness for the
    /// conservation check), otherwise the replayed value itself, which
    /// is then inserted exactly as `required_per_round` would have, so
    /// explaining a speed leaves the memo in the same state evaluating
    /// it would.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub(crate) fn explain_figures(
        &self,
        speed: Speed,
    ) -> Result<(NodeEnergy, Energy, Energy), CoreError> {
        let node = self.node_energy(speed)?;
        let replayed = node.total().total();
        let Some(memo) = &self.memo else {
            return Ok((node, replayed, replayed));
        };
        let key = speed.mps().to_bits();
        if let Some(joules) = memo.get(key) {
            return Ok((node, replayed, Energy::from_joules(joules)));
        }
        memo.insert(key, replayed.joules());
        Ok((node, replayed, replayed))
    }

    /// Average node power while rolling at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn average_power(&self, speed: Speed) -> Result<Power, CoreError> {
        Ok(self.node_energy(speed)?.average_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_node::{Architecture, NodeConfig};
    use monityre_power::{ProcessCorner, WorkingConditions};
    use monityre_units::Temperature;

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::reference(),
            Scenario::builder()
                .conditions(
                    WorkingConditions::reference()
                        .with_temperature(Temperature::from_celsius(85.0)),
                )
                .build(),
            Scenario::builder()
                .conditions(WorkingConditions::reference().with_corner(ProcessCorner::FastFast))
                .build(),
            Scenario::builder()
                .architecture(Architecture::from_config(
                    NodeConfig::reference()
                        .with_samples_per_round(512)
                        .with_tx_period_rounds(1),
                ))
                .build(),
        ]
    }

    #[test]
    fn cached_node_energy_is_bit_identical_to_analyzer() {
        for scenario in scenarios() {
            let cache = scenario.cache().unwrap();
            let analyzer = scenario.analyzer();
            for kmh in [6.0, 13.7, 30.0, 61.3, 99.0, 187.5] {
                let v = Speed::from_kmh(kmh);
                let direct = analyzer.node_energy(v).unwrap();
                let cached = cache.node_energy(v).unwrap();
                assert_eq!(direct.blocks.len(), cached.blocks.len());
                for (d, c) in direct.blocks.iter().zip(&cached.blocks) {
                    assert_eq!(d.name, c.name);
                    assert_eq!(
                        d.energy.dynamic.joules().to_bits(),
                        c.energy.dynamic.joules().to_bits(),
                        "dynamic of {} at {kmh} km/h",
                        d.name
                    );
                    assert_eq!(
                        d.energy.leakage.joules().to_bits(),
                        c.energy.leakage.joules().to_bits(),
                        "leakage of {} at {kmh} km/h",
                        d.name
                    );
                    assert_eq!(d.duty_cycle, c.duty_cycle);
                }
                assert_eq!(
                    direct.total().total().joules().to_bits(),
                    cache.required_per_round(v).unwrap().joules().to_bits(),
                );
            }
        }
    }

    #[test]
    fn standstill_is_rejected() {
        let cache = Scenario::reference().cache().unwrap();
        assert!(cache.node_energy(Speed::ZERO).is_err());
        assert!(cache.round_period(Speed::from_kmh(-3.0)).is_err());
    }

    #[test]
    fn cache_covers_every_block() {
        let scenario = Scenario::reference();
        let cache = scenario.cache().unwrap();
        assert_eq!(cache.len(), scenario.architecture().len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn memo_hits_are_bit_identical_and_counted() {
        let cache = Scenario::reference().cache().unwrap().with_memo(64);
        assert!(cache.has_memo());
        let v = Speed::from_kmh(72.5);
        let first = cache.required_per_round(v).unwrap();
        let second = cache.required_per_round(v).unwrap();
        assert_eq!(first.joules().to_bits(), second.joules().to_bits());
        let counts = cache.stats();
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 1);
        assert_eq!(counts.evictions, 0);
        // And the memoized figure matches the memo-free evaluation.
        let plain = Scenario::reference().cache().unwrap();
        assert_eq!(
            plain.required_per_round(v).unwrap().joules().to_bits(),
            second.joules().to_bits()
        );
    }

    #[test]
    fn without_memo_stats_stay_zero() {
        let cache = Scenario::reference().cache().unwrap();
        assert!(!cache.has_memo());
        let _ = cache.required_per_round(Speed::from_kmh(60.0)).unwrap();
        assert_eq!(cache.stats(), CacheCounts::default());
    }

    #[test]
    fn eviction_accounting_balances() {
        // Capacity 8 over 8 shards = 1 entry per shard: 100 distinct
        // speeds force evictions everywhere while each shard keeps its
        // most recent key.
        let cache = Scenario::reference().cache().unwrap().with_memo(8);
        let mut last = Speed::from_kmh(10.0);
        for i in 0..100u32 {
            last = Speed::from_kmh(10.0 + f64::from(i));
            let _ = cache.required_per_round(last).unwrap();
        }
        let counts = cache.stats();
        assert_eq!(counts.misses, 100, "{counts:?}");
        assert_eq!(counts.hits, 0, "{counts:?}");
        // Every insertion past each shard's first evicts exactly one
        // entry, so the books balance: live = inserted - evicted ≤ 8.
        assert!(
            counts.evictions >= 92 && counts.evictions < 100,
            "{counts:?}"
        );
        // FIFO per shard: the newest key is always still resident.
        let _ = cache.required_per_round(last).unwrap();
        let after = cache.stats();
        assert_eq!(after.hits, 1, "{after:?}");
        assert_eq!(after.evictions, counts.evictions, "a hit evicts nothing");
    }

    #[test]
    fn clones_share_the_memo_tallies() {
        let cache = Scenario::reference().cache().unwrap().with_memo(32);
        let clone = cache.clone();
        let v = Speed::from_kmh(50.0);
        let _ = cache.required_per_round(v).unwrap();
        let _ = clone.required_per_round(v).unwrap();
        let counts = cache.stats();
        assert_eq!((counts.hits, counts.misses), (1, 1));
        assert_eq!(clone.stats(), counts);
    }

    #[test]
    fn cache_counts_merge_elementwise() {
        let a = CacheCounts {
            hits: 1,
            misses: 2,
            evictions: 3,
        };
        let b = CacheCounts {
            hits: 10,
            misses: 20,
            evictions: 30,
        };
        assert_eq!(
            a.merged(b),
            CacheCounts {
                hits: 11,
                misses: 22,
                evictions: 33
            }
        );
    }

    #[test]
    fn average_power_matches_analyzer() {
        let scenario = Scenario::reference();
        let cache = scenario.cache().unwrap();
        let v = Speed::from_kmh(90.0);
        assert_eq!(
            cache.average_power(v).unwrap(),
            scenario.analyzer().average_power(v).unwrap()
        );
    }
}
