//! Memoized per-block energy figures.
//!
//! A sweep evaluates the same architecture under the same conditions at
//! hundreds of speeds, but only the round *period* changes between points:
//! every power lookup (`model.power(mode, conditions)`) and every
//! workload event energy is speed-independent. [`EvalCache`] hoists those
//! out of the per-point loop once per [`Scenario`], so a sweep point costs
//! one `resolve()` walk instead of a full database traversal.
//!
//! The cached evaluation replays the exact floating-point operations of
//! [`crate::EnergyAnalyzer::block_energy`] in the exact order, so cached and
//! uncached figures are bit-identical — the property the parallel sweep
//! tests pin down.

use monityre_node::RoundSchedule;
use monityre_power::PowerBreakdown;
use monityre_profile::Wheel;
use monityre_units::{Duration, Energy, Power, Speed};

use crate::{BlockEnergy, CoreError, NodeEnergy, Scenario};

/// One block's speed-independent figures.
#[derive(Debug, Clone)]
struct BlockFigures {
    name: String,
    schedule: RoundSchedule,
    rest_power: PowerBreakdown,
    /// Power in each scheduled phase's mode, aligned with
    /// `schedule.phases()` (and therefore with `schedule.resolve(..)`).
    phase_powers: Vec<PowerBreakdown>,
    /// Pre-multiplied `per_event × count` workload contributions, in
    /// workload iteration order.
    event_contributions: Vec<Energy>,
}

impl BlockFigures {
    /// Replays [`crate::EnergyAnalyzer::block_energy`] for a concrete period.
    fn energy(&self, period: Duration) -> BlockEnergy {
        // Baseline: the whole round in the rest mode…
        let mut energy = self.rest_power.over(period);
        // …corrected by each phase's amortized delta over the rest mode.
        for (phase, phase_power) in self.schedule.resolve(period).iter().zip(&self.phase_powers) {
            let delta_dyn = phase_power.dynamic - self.rest_power.dynamic;
            let delta_leak = phase_power.leakage - self.rest_power.leakage;
            let share = phase.amortized_duration();
            energy.dynamic += delta_dyn * share;
            energy.leakage += delta_leak * share;
        }
        // Event energy is workload-proportional switching energy.
        for contribution in &self.event_contributions {
            energy.dynamic += *contribution;
        }
        BlockEnergy {
            name: self.name.clone(),
            energy,
            duty_cycle: self.schedule.duty_cycle(period),
        }
    }
}

/// Per-block, per-conditions energy figures hoisted out of the sweep loop.
///
/// Built once per [`Scenario`] (see [`Scenario::cache`]) and immutable
/// afterwards, so sweep workers can evaluate points through a shared
/// reference.
///
/// ```
/// use monityre_core::{EvalCache, Scenario};
/// use monityre_units::Speed;
///
/// let scenario = Scenario::reference();
/// let cache = scenario.cache().unwrap();
/// let direct = scenario.analyzer().required_per_round(Speed::from_kmh(60.0)).unwrap();
/// let cached = cache.required_per_round(Speed::from_kmh(60.0)).unwrap();
/// assert_eq!(cached.joules().to_bits(), direct.joules().to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct EvalCache {
    wheel: Wheel,
    blocks: Vec<BlockFigures>,
}

impl EvalCache {
    /// Precomputes every speed-independent figure of the scenario's
    /// architecture, in `block_names()` order.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors for malformed architectures.
    pub fn new(scenario: &Scenario) -> Result<Self, CoreError> {
        let architecture = scenario.architecture();
        let conditions = scenario.conditions();
        let mut blocks = Vec::with_capacity(architecture.len());
        for name in architecture.block_names() {
            let plan = architecture.plan(name)?;
            let model = architecture.database().block(name)?;
            let schedule = plan.schedule().clone();
            let rest_power = model.power(schedule.rest_mode(), &conditions);
            let phase_powers = schedule
                .phases()
                .iter()
                .map(|phase| model.power(phase.mode, &conditions))
                .collect();
            let mut event_contributions = Vec::new();
            for (kind, count) in plan.workload().iter() {
                if let Some(per_event) = model.event_energy(kind, &conditions) {
                    event_contributions.push(per_event * count);
                }
            }
            blocks.push(BlockFigures {
                name: name.to_owned(),
                schedule,
                rest_power,
                phase_powers,
                event_contributions,
            });
        }
        Ok(Self {
            wheel: *scenario.wheel(),
            blocks,
        })
    }

    /// The number of cached blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The wheel-round period at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill or below.
    pub fn round_period(&self, speed: Speed) -> Result<Duration, CoreError> {
        if speed.mps() <= 0.0 || !speed.is_finite() {
            return Err(CoreError::round_undefined(speed.kmh()));
        }
        Ok(self.wheel.round_period(speed))
    }

    /// The whole node's energy per wheel round at `speed` — bit-identical
    /// to [`crate::EnergyAnalyzer::node_energy`] on the same scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn node_energy(&self, speed: Speed) -> Result<NodeEnergy, CoreError> {
        let round_period = self.round_period(speed)?;
        let blocks = self
            .blocks
            .iter()
            .map(|figures| figures.energy(round_period))
            .collect();
        Ok(NodeEnergy {
            speed,
            round_period,
            blocks,
        })
    }

    /// Required energy per round at `speed` — the demand curve of Fig. 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn required_per_round(&self, speed: Speed) -> Result<Energy, CoreError> {
        Ok(self.node_energy(speed)?.total().total())
    }

    /// Average node power while rolling at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill.
    pub fn average_power(&self, speed: Speed) -> Result<Power, CoreError> {
        Ok(self.node_energy(speed)?.average_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_node::{Architecture, NodeConfig};
    use monityre_power::{ProcessCorner, WorkingConditions};
    use monityre_units::Temperature;

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::reference(),
            Scenario::builder()
                .conditions(
                    WorkingConditions::reference()
                        .with_temperature(Temperature::from_celsius(85.0)),
                )
                .build(),
            Scenario::builder()
                .conditions(WorkingConditions::reference().with_corner(ProcessCorner::FastFast))
                .build(),
            Scenario::builder()
                .architecture(Architecture::from_config(
                    NodeConfig::reference()
                        .with_samples_per_round(512)
                        .with_tx_period_rounds(1),
                ))
                .build(),
        ]
    }

    #[test]
    fn cached_node_energy_is_bit_identical_to_analyzer() {
        for scenario in scenarios() {
            let cache = scenario.cache().unwrap();
            let analyzer = scenario.analyzer();
            for kmh in [6.0, 13.7, 30.0, 61.3, 99.0, 187.5] {
                let v = Speed::from_kmh(kmh);
                let direct = analyzer.node_energy(v).unwrap();
                let cached = cache.node_energy(v).unwrap();
                assert_eq!(direct.blocks.len(), cached.blocks.len());
                for (d, c) in direct.blocks.iter().zip(&cached.blocks) {
                    assert_eq!(d.name, c.name);
                    assert_eq!(
                        d.energy.dynamic.joules().to_bits(),
                        c.energy.dynamic.joules().to_bits(),
                        "dynamic of {} at {kmh} km/h",
                        d.name
                    );
                    assert_eq!(
                        d.energy.leakage.joules().to_bits(),
                        c.energy.leakage.joules().to_bits(),
                        "leakage of {} at {kmh} km/h",
                        d.name
                    );
                    assert_eq!(d.duty_cycle, c.duty_cycle);
                }
                assert_eq!(
                    direct.total().total().joules().to_bits(),
                    cache.required_per_round(v).unwrap().joules().to_bits(),
                );
            }
        }
    }

    #[test]
    fn standstill_is_rejected() {
        let cache = Scenario::reference().cache().unwrap();
        assert!(cache.node_energy(Speed::ZERO).is_err());
        assert!(cache.round_period(Speed::from_kmh(-3.0)).is_err());
    }

    #[test]
    fn cache_covers_every_block() {
        let scenario = Scenario::reference();
        let cache = scenario.cache().unwrap();
        assert_eq!(cache.len(), scenario.architecture().len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn average_power_matches_analyzer() {
        let scenario = Scenario::reference();
        let cache = scenario.cache().unwrap();
        let v = Speed::from_kmh(90.0);
        assert_eq!(
            cache.average_power(v).unwrap(),
            scenario.analyzer().average_power(v).unwrap()
        );
    }
}
