//! Long-window transient emulation.
//!
//! §II-A: "In order to evaluate the behavior of the Sensor Node within a
//! long timing window, a realistic model has been developed … It directly
//! interfaces with the energy profile of the scavenger device for a
//! dynamic comparison between the available energy and the required one.
//! After setting a desired cruising speed profile and Sensor Node
//! configuration, user can evaluate if the monitoring system can be active
//! during all the considered time. … The last step is useful for
//! identifying operating windows of the conceived monitoring system."

use monityre_harvest::{HarvestChain, Storage};
use monityre_node::Architecture;
use monityre_power::WorkingConditions;
use monityre_profile::{ProfileSampler, SpeedProfile, TyreThermalModel};
use monityre_units::{Duration, Energy, Power, Speed, Temperature};

use crate::{CoreError, EnergyAnalyzer};

/// Emulator tuning: step size, activation hysteresis, thermal coupling.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulatorConfig {
    /// Integration step (default 10 ms).
    pub step: Duration,
    /// State of charge at (or above) which the node switches on.
    pub activate_soc: f64,
    /// State of charge at (or below) which the node switches off.
    pub deactivate_soc: f64,
    /// Ambient temperature around the tyre.
    pub ambient: Temperature,
    /// Tyre self-heating model driving the leakage temperature.
    pub thermal: TyreThermalModel,
    /// Keep one recorded sample every this many steps (≥ 1).
    pub record_every: usize,
}

impl EmulatorConfig {
    /// Sensible defaults: 10 ms step, 35 %/15 % hysteresis, 25 °C ambient.
    #[must_use]
    pub fn new() -> Self {
        Self {
            step: Duration::from_millis(10.0),
            activate_soc: 0.35,
            deactivate_soc: 0.15,
            ambient: Temperature::from_celsius(25.0),
            thermal: TyreThermalModel::reference(),
            record_every: 10,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive step,
    /// inverted hysteresis, or zero record interval.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.step.secs() <= 0.0 || !self.step.is_finite() {
            return Err(CoreError::invalid_parameter("step must be positive"));
        }
        if !(0.0..=1.0).contains(&self.activate_soc)
            || !(0.0..=1.0).contains(&self.deactivate_soc)
            || self.deactivate_soc >= self.activate_soc
        {
            return Err(CoreError::invalid_parameter(
                "hysteresis must satisfy 0 <= deactivate < activate <= 1",
            ));
        }
        if self.record_every == 0 {
            return Err(CoreError::invalid_parameter(
                "record interval must be at least 1",
            ));
        }
        Ok(())
    }
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One recorded point of the emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulatorSample {
    /// Elapsed time.
    pub time: Duration,
    /// Vehicle speed.
    pub speed: Speed,
    /// Storage state of charge in `[0, 1]`.
    pub soc: f64,
    /// Whether the monitoring function was on.
    pub active: bool,
    /// Tyre (working) temperature.
    pub tyre_temperature: Temperature,
    /// Node power drawn at this instant (mode-average).
    pub node_power: Power,
}

/// A contiguous interval during which the node was active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingWindow {
    /// Window start.
    pub start: Duration,
    /// Window end.
    pub end: Duration,
}

impl OperatingWindow {
    /// The window's length.
    #[must_use]
    pub fn length(&self) -> Duration {
        self.end - self.start
    }
}

/// The emulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulationReport {
    /// Decimated samples over the window.
    pub samples: Vec<EmulatorSample>,
    /// Extracted operating windows.
    pub windows: Vec<OperatingWindow>,
    /// Total usable energy deposited into storage (post-spill).
    pub harvested: Energy,
    /// Total energy drawn by the node.
    pub consumed: Energy,
    /// Energy the full reservoir could not absorb.
    pub spilled: Energy,
    /// Times the node browned out (withdrawal failed while active).
    pub brownouts: u32,
    /// The emulated span.
    pub span: Duration,
}

impl EmulationReport {
    /// Fraction of the span the node was active, in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.span.secs() <= 0.0 {
            return 0.0;
        }
        let active: f64 = self.windows.iter().map(|w| w.length().secs()).sum();
        (active / self.span.secs()).clamp(0.0, 1.0)
    }

    /// Whether the node stayed active for the whole span — the question
    /// the paper's user asks ("user can evaluate if the monitoring system
    /// can be active during all the considered time").
    #[must_use]
    pub fn always_active(&self) -> bool {
        self.windows.len() == 1
            && self.windows[0].start.secs() == 0.0
            && (self.windows[0].end.secs() - self.span.secs()).abs() < 1e-6
    }
}

/// The long-window emulator.
///
/// ```
/// use monityre_core::{EmulatorConfig, TransientEmulator};
/// use monityre_harvest::{HarvestChain, Supercap};
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_profile::{ConstantProfile};
/// use monityre_units::{Duration, Speed};
///
/// let arch = Architecture::reference();
/// let chain = HarvestChain::reference();
/// let emulator = TransientEmulator::new(
///     &arch, &chain, WorkingConditions::reference(), EmulatorConfig::new()).unwrap();
/// let cruise = ConstantProfile::new(Speed::from_kmh(90.0), Duration::from_mins(2.0));
/// let mut storage = Supercap::reference();
/// let report = emulator.run(&cruise, &mut storage);
/// assert!(report.coverage() > 0.9); // highway cruise keeps the node alive
/// ```
#[derive(Debug)]
pub struct TransientEmulator<'a> {
    architecture: &'a Architecture,
    chain: &'a HarvestChain,
    base_conditions: WorkingConditions,
    config: EmulatorConfig,
}

impl<'a> TransientEmulator<'a> {
    /// Creates an emulator.
    ///
    /// The temperature inside `base_conditions` is ignored — the thermal
    /// model supplies the working temperature at every step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid config.
    pub fn new(
        architecture: &'a Architecture,
        chain: &'a HarvestChain,
        base_conditions: WorkingConditions,
        config: EmulatorConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self {
            architecture,
            chain,
            base_conditions,
            config,
        })
    }

    /// The emulator configuration.
    #[must_use]
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Runs the emulation over `profile`, mutating `storage`.
    pub fn run<S: Storage>(&self, profile: &dyn SpeedProfile, storage: &mut S) -> EmulationReport {
        let dt = self.config.step;
        let mut tyre_temp = self.config.ambient;
        let mut active = storage.state_of_charge() >= self.config.activate_soc;

        let mut samples = Vec::new();
        let mut windows: Vec<OperatingWindow> = Vec::new();
        let mut window_start = if active { Some(Duration::ZERO) } else { None };

        let mut harvested = Energy::ZERO;
        let mut consumed = Energy::ZERO;
        let mut spilled = Energy::ZERO;
        let mut brownouts = 0u32;

        for (index, sample) in ProfileSampler::new(profile, dt).enumerate() {
            let t = sample.time;
            let v = sample.speed;
            let step = sample.step;

            // Thermal state drives the leakage term.
            tyre_temp = self
                .config
                .thermal
                .step(tyre_temp, v, self.config.ambient, step);
            let conditions = self.base_conditions.with_temperature(tyre_temp);
            let analyzer =
                EnergyAnalyzer::new(self.architecture, conditions).with_wheel(*self.chain.wheel());

            // Supply side.
            let inflow = self.chain.delivered_power(v) * step;
            if !inflow.is_negative() && inflow > Energy::ZERO {
                let spill = storage.deposit(inflow);
                harvested += inflow - spill;
                spilled += spill;
            }
            storage.self_discharge(step);

            // Hysteresis on the state of charge.
            let soc = storage.state_of_charge();
            if active && soc <= self.config.deactivate_soc {
                active = false;
                if let Some(start) = window_start.take() {
                    windows.push(OperatingWindow { start, end: t });
                }
            } else if !active && soc >= self.config.activate_soc {
                active = true;
                window_start = Some(t);
            }

            // Demand side.
            let node_power = if active {
                if v.mps() > 0.0 {
                    analyzer
                        .average_power(v)
                        .unwrap_or_else(|_| analyzer.standby_power())
                } else {
                    analyzer.standby_power()
                }
            } else {
                analyzer.standby_power()
            };
            let demand = node_power * step;
            match storage.withdraw(demand) {
                Ok(()) => consumed += demand,
                Err(e) => {
                    // Brownout: take what's there, shut down.
                    let available = demand - e.shortfall();
                    if available > Energy::ZERO && storage.withdraw(available).is_ok() {
                        consumed += available;
                    }
                    if active {
                        brownouts += 1;
                        active = false;
                        if let Some(start) = window_start.take() {
                            windows.push(OperatingWindow { start, end: t });
                        }
                    }
                }
            }

            if index % self.config.record_every == 0 {
                samples.push(EmulatorSample {
                    time: t,
                    speed: v,
                    soc: storage.state_of_charge(),
                    active,
                    tyre_temperature: tyre_temp,
                    node_power,
                });
            }
        }

        let span = profile.duration();
        if let Some(start) = window_start {
            windows.push(OperatingWindow { start, end: span });
        }

        EmulationReport {
            samples,
            windows,
            harvested,
            consumed,
            spilled,
            brownouts,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_harvest::Supercap;
    use monityre_profile::{CompositeProfile, ConstantProfile, UrbanCycle};
    use monityre_units::{Capacitance, Resistance, Voltage};

    fn setup() -> (Architecture, HarvestChain) {
        (Architecture::reference(), HarvestChain::reference())
    }

    fn emulator<'a>(arch: &'a Architecture, chain: &'a HarvestChain) -> TransientEmulator<'a> {
        TransientEmulator::new(
            arch,
            chain,
            WorkingConditions::reference(),
            EmulatorConfig::new(),
        )
        .unwrap()
    }

    #[test]
    fn highway_cruise_stays_active() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        let cruise = ConstantProfile::new(Speed::from_kmh(110.0), Duration::from_mins(5.0));
        let mut storage = Supercap::reference();
        let report = emu.run(&cruise, &mut storage);
        assert!(report.coverage() > 0.95, "coverage {}", report.coverage());
        assert_eq!(report.brownouts, 0);
        assert!(report.harvested > report.consumed);
    }

    #[test]
    fn crawl_drains_and_deactivates() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        // 8 km/h: above cut-in but deep in the deficit region.
        let crawl = ConstantProfile::new(Speed::from_kmh(8.0), Duration::from_mins(30.0));
        let mut storage = Supercap::reference();
        let report = emu.run(&crawl, &mut storage);
        assert!(report.coverage() < 0.8, "coverage {}", report.coverage());
        // Once off, it must not flap back on at this speed.
        let last = report.samples.last().unwrap();
        assert!(!last.active);
    }

    #[test]
    fn parked_node_goes_dark_but_survives_on_floor() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        let parked = ConstantProfile::new(Speed::ZERO, Duration::from_hours(1.0));
        let mut storage = Supercap::reference();
        let soc0 = storage.state_of_charge();
        let report = emu.run(&parked, &mut storage);
        assert_eq!(report.harvested, Energy::ZERO);
        // Standby drain is tiny: SoC barely moves in an hour.
        assert!(storage.state_of_charge() > soc0 - 0.2);
    }

    #[test]
    fn urban_cycle_produces_multiple_windows_or_partial_coverage() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        // Start the reservoir right at the activation threshold so the
        // stop-and-go cycle visibly modulates the node.
        let mut storage = Supercap::new(
            Capacitance::from_millifarads(10.0),
            Voltage::from_volts(1.8),
            Voltage::from_volts(3.6),
            Resistance::from_megaohms(5.0),
            Voltage::from_volts(2.3),
        );
        let trip = CompositeProfile::new(vec![
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
        ]);
        let report = emu.run(&trip, &mut storage);
        assert!(report.coverage() > 0.0 && report.coverage() < 1.0);
    }

    #[test]
    fn energy_conservation_with_negligible_self_discharge() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        // Practically leak-free supercap isolates the accounting.
        let mut storage = Supercap::new(
            Capacitance::from_millifarads(47.0),
            Voltage::from_volts(1.8),
            Voltage::from_volts(3.6),
            Resistance::from_megaohms(1.0e9),
            Voltage::from_volts(2.7),
        );
        let before = storage.stored();
        let cruise = ConstantProfile::new(Speed::from_kmh(70.0), Duration::from_mins(3.0));
        let report = emu.run(&cruise, &mut storage);
        let after = storage.stored();
        let delta = after - before;
        let balance = report.harvested - report.consumed;
        assert!(
            delta.approx_eq(balance, 1e-3),
            "ΔE {delta} vs harvested−consumed {balance}"
        );
    }

    #[test]
    fn windows_are_ordered_and_within_span() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        let trip = CompositeProfile::new(vec![
            Box::new(ConstantProfile::new(
                Speed::from_kmh(60.0),
                Duration::from_mins(2.0),
            )),
            Box::new(ConstantProfile::new(
                Speed::from_kmh(5.0),
                Duration::from_mins(20.0),
            )),
            Box::new(ConstantProfile::new(
                Speed::from_kmh(60.0),
                Duration::from_mins(2.0),
            )),
        ]);
        let mut storage = Supercap::reference();
        let report = emu.run(&trip, &mut storage);
        for w in &report.windows {
            assert!(w.start <= w.end);
            assert!(w.end.secs() <= report.span.secs() + 1e-9);
        }
        for pair in report.windows.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn motorway_heats_the_tyre() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        let cruise = ConstantProfile::new(Speed::from_kmh(130.0), Duration::from_mins(30.0));
        let mut storage = Supercap::reference();
        let report = emu.run(&cruise, &mut storage);
        let last = report.samples.last().unwrap();
        assert!(
            last.tyre_temperature.celsius() > 35.0,
            "tyre stayed at {}",
            last.tyre_temperature
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let (arch, chain) = setup();
        let mut config = EmulatorConfig::new();
        config.activate_soc = 0.1;
        config.deactivate_soc = 0.5;
        assert!(
            TransientEmulator::new(&arch, &chain, WorkingConditions::reference(), config).is_err()
        );
    }

    #[test]
    fn coverage_of_always_active_run_is_one() {
        let (arch, chain) = setup();
        let emu = emulator(&arch, &chain);
        let cruise = ConstantProfile::new(Speed::from_kmh(120.0), Duration::from_mins(1.0));
        let mut storage = Supercap::reference();
        let report = emu.run(&cruise, &mut storage);
        assert!(report.always_active());
        assert!((report.coverage() - 1.0).abs() < 1e-6);
    }
}
