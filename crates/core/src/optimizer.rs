//! Break-even search: which node configuration / duty-cycle policy
//! minimizes the break-even speed of a scenario?
//!
//! The paper's [`crate::OptimizationAdvisor`] picks per-block
//! *techniques* from the (dynamic/static split × duty cycle) pair; this
//! module searches the orthogonal knob space the serving layer exposes —
//! the [`ConfigSpace::reference_grid`] of samples-per-round ×
//! tx-period × payload, crossed with a small set of acquisition
//! duty-cycle policies (energy-aware task-scheduling in the sense of
//! Sharma et al.) — and reports the configuration with the lowest
//! break-even speed. The unmodified scenario is always candidate zero,
//! so the optimized result is **never worse than the baseline** by
//! construction.
//!
//! Candidates are evaluated independently on a [`SweepExecutor`] in
//! candidate order and compared with a first-wins tie-break, so the
//! result is bit-identical for any thread count — the same property the
//! plain sweeps pin.

use monityre_node::{Architecture, ConfigSpace, NodeConfig};
use monityre_units::Speed;
use serde::{Deserialize, Serialize};

use crate::{CoreError, EnergyBalance, Scenario, SweepExecutor};

/// The acquisition duty-cycle policies the search crosses the config
/// grid with (the reference node acquires for 12 % of each round).
pub const DUTY_POLICIES: &[f64] = &[0.06, 0.12, 0.24];

/// One searched configuration, in the node config's own knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// ADC samples acquired per wheel round.
    pub samples_per_round: u32,
    /// Rounds between radio transmissions.
    pub tx_period_rounds: u32,
    /// Radio payload size in bytes.
    pub payload_bytes: u32,
    /// Fraction of the round spent acquiring.
    pub acquisition_fraction: f64,
}

impl CandidateConfig {
    fn of(config: &NodeConfig) -> Self {
        Self {
            samples_per_round: config.samples_per_round(),
            tx_period_rounds: config.tx_period_rounds(),
            payload_bytes: config.payload_bytes(),
            acquisition_fraction: config.acquisition_fraction(),
        }
    }
}

/// What a break-even search found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeReport {
    /// Break-even of the unmodified scenario, km/h (`null` when its
    /// curves never cross in the swept range).
    pub baseline_kmh: Option<f64>,
    /// Break-even of the best candidate, km/h. Never above
    /// `baseline_kmh` when both exist — the baseline is candidate zero.
    pub best_kmh: Option<f64>,
    /// The winning configuration; `null` when the unmodified scenario
    /// already minimizes break-even (keep what you have).
    pub best: Option<CandidateConfig>,
    /// How many candidates the search evaluated (baseline included).
    pub candidates: usize,
}

impl OptimizeReport {
    /// Break-even improvement over the baseline, km/h (0 when either
    /// side never crosses).
    #[must_use]
    pub fn improvement_kmh(&self) -> f64 {
        match (self.baseline_kmh, self.best_kmh) {
            (Some(base), Some(best)) => base - best,
            _ => 0.0,
        }
    }
}

/// Searches node configurations / duty policies for the lowest
/// break-even speed of a scenario.
#[derive(Debug, Clone)]
pub struct BreakEvenOptimizer {
    scenario: Scenario,
}

impl BreakEvenOptimizer {
    /// An optimizer over `scenario`'s conditions, chain, wheel and
    /// extended axes; only the node architecture varies per candidate.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        Self {
            scenario: scenario.clone(),
        }
    }

    /// The candidate list: the unmodified scenario first, then the
    /// reference config grid crossed with every duty policy, in a fixed
    /// order.
    fn candidates() -> Vec<Option<NodeConfig>> {
        let mut candidates: Vec<Option<NodeConfig>> = vec![None];
        for duty in DUTY_POLICIES {
            for config in ConfigSpace::reference_grid().iter() {
                candidates.push(Some(config.with_acquisition_fraction(*duty)));
            }
        }
        candidates
    }

    /// Runs the search over `[lo, hi]` sampled at `steps` speeds per
    /// candidate, fanning candidates across `executor` and polling
    /// `cancelled` between chunks. `Ok(None)` means the search was
    /// abandoned (deadline). A completed search is bit-identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation-cache failures for the baseline scenario.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`, `lo` is not positive, or `hi ≤ lo` (the
    /// sweep grid's own contract).
    pub fn search<C: Fn() -> bool + Sync>(
        &self,
        lo: Speed,
        hi: Speed,
        steps: usize,
        executor: &SweepExecutor,
        cancelled: &C,
    ) -> Result<Option<OptimizeReport>, CoreError> {
        let _span = monityre_obs::span!("optimizer.search");
        // Build the baseline eagerly so malformed scenarios fail with a
        // typed error instead of panicking inside a worker.
        let baseline = EnergyBalance::new(&self.scenario)?;
        let candidates = Self::candidates();
        let outcomes = executor.map_cancellable(&candidates, cancelled, |_, candidate| {
            let break_even = match candidate {
                None => baseline.sweep(lo, hi, steps).break_even(),
                Some(config) => {
                    let derived = self
                        .scenario
                        .with_architecture(Architecture::from_config(*config));
                    EnergyBalance::new(&derived)
                        .expect("reference-grid configs always build")
                        .sweep(lo, hi, steps)
                        .break_even()
                }
            };
            break_even.map(|speed| speed.kmh())
        });
        let Some(outcomes) = outcomes else {
            return Ok(None);
        };
        // First-wins comparison in candidate order: deterministic for
        // any executor, and the baseline wins every exact tie.
        let mut best_index = 0usize;
        let mut best = outcomes[0].unwrap_or(f64::INFINITY);
        for (index, outcome) in outcomes.iter().enumerate().skip(1) {
            let value = outcome.unwrap_or(f64::INFINITY);
            if value < best {
                best = value;
                best_index = index;
            }
        }
        Ok(Some(OptimizeReport {
            baseline_kmh: outcomes[0],
            best_kmh: outcomes[best_index],
            best: candidates[best_index].as_ref().map(CandidateConfig::of),
            candidates: candidates.len(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search_reference(threads: usize) -> OptimizeReport {
        BreakEvenOptimizer::new(&Scenario::reference())
            .search(
                Speed::from_kmh(5.0),
                Speed::from_kmh(200.0),
                48,
                &SweepExecutor::new(threads),
                &|| false,
            )
            .unwrap()
            .expect("not cancelled")
    }

    #[test]
    fn optimized_never_worse_than_baseline() {
        let report = search_reference(1);
        let baseline = report.baseline_kmh.expect("reference curves cross");
        let best = report.best_kmh.expect("some candidate crosses");
        assert!(best <= baseline, "best {best} vs baseline {baseline}");
        assert!(report.improvement_kmh() >= 0.0);
        assert!(report.candidates > 1 + ConfigSpace::reference_grid().len());
    }

    #[test]
    fn search_is_bit_identical_across_thread_counts() {
        let serial = search_reference(1);
        for threads in [2, 4] {
            let parallel = search_reference(threads);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn cancelled_search_returns_none() {
        let outcome = BreakEvenOptimizer::new(&Scenario::reference())
            .search(
                Speed::from_kmh(5.0),
                Speed::from_kmh(200.0),
                16,
                &SweepExecutor::serial(),
                &|| true,
            )
            .unwrap();
        assert!(outcome.is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = search_reference(1);
        let json = serde_json::to_string(&report).unwrap();
        let back: OptimizeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
