//! Break-even search: which node configuration / duty-cycle policy
//! minimizes the break-even speed of a scenario?
//!
//! The paper's [`crate::OptimizationAdvisor`] picks per-block
//! *techniques* from the (dynamic/static split × duty cycle) pair; this
//! module searches the orthogonal knob space the serving layer exposes —
//! the [`ConfigSpace::reference_grid`] of samples-per-round ×
//! tx-period × payload, crossed with a small set of acquisition
//! duty-cycle policies (energy-aware task-scheduling in the sense of
//! Sharma et al.) — and reports the configuration with the lowest
//! break-even speed. The unmodified scenario is always candidate zero,
//! so the optimized result is **never worse than the baseline** by
//! construction.
//!
//! Candidates are evaluated independently on a [`SweepExecutor`] in
//! candidate order and compared with a first-wins tie-break, so the
//! result is bit-identical for any thread count — the same property the
//! plain sweeps pin.

use monityre_node::{Architecture, ConfigSpace, NodeConfig};
use monityre_units::Speed;
use serde::{Deserialize, Serialize};

use crate::{CoreError, EnergyBalance, EnergyLedger, LedgerEntry, Scenario, SweepExecutor};

/// The acquisition duty-cycle policies the search crosses the config
/// grid with (the reference node acquires for 12 % of each round).
pub const DUTY_POLICIES: &[f64] = &[0.06, 0.12, 0.24];

/// One searched configuration, in the node config's own knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// ADC samples acquired per wheel round.
    pub samples_per_round: u32,
    /// Rounds between radio transmissions.
    pub tx_period_rounds: u32,
    /// Radio payload size in bytes.
    pub payload_bytes: u32,
    /// Fraction of the round spent acquiring.
    pub acquisition_fraction: f64,
}

impl CandidateConfig {
    fn of(config: &NodeConfig) -> Self {
        Self {
            samples_per_round: config.samples_per_round(),
            tx_period_rounds: config.tx_period_rounds(),
            payload_bytes: config.payload_bytes(),
            acquisition_fraction: config.acquisition_fraction(),
        }
    }
}

/// One ledger component of the winning candidate, side by side with the
/// baseline's figure for the same component at the same speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerDelta {
    /// The compared component: an architecture block name, or one of
    /// the aggregate rows `radio-retx`, `ageing-leak`, `consumed`,
    /// `storage-delta`.
    pub component: String,
    /// The baseline's figure at the report's ledger speed, nanojoules.
    pub baseline_nj: i64,
    /// The winning candidate's figure at the same speed, nanojoules.
    pub best_nj: i64,
}

impl LedgerDelta {
    /// Winner minus baseline, nanojoules (negative when the winner
    /// spends less on this component).
    #[must_use]
    pub fn delta_nj(&self) -> i64 {
        self.best_nj - self.baseline_nj
    }

    /// The delta as a percentage of the baseline figure (0 when the
    /// baseline attributed nothing to this component).
    #[must_use]
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_nj == 0 {
            return 0.0;
        }
        self.delta_nj() as f64 * 100.0 / (self.baseline_nj as f64).abs()
    }
}

/// What a break-even search found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeReport {
    /// Break-even of the unmodified scenario, km/h (`null` when its
    /// curves never cross in the swept range).
    pub baseline_kmh: Option<f64>,
    /// Break-even of the best candidate, km/h. Never above
    /// `baseline_kmh` when both exist — the baseline is candidate zero.
    pub best_kmh: Option<f64>,
    /// The winning configuration; `null` when the unmodified scenario
    /// already minimizes break-even (keep what you have).
    pub best: Option<CandidateConfig>,
    /// How many candidates the search evaluated (baseline included).
    pub candidates: usize,
    /// The speed the attribution ledgers below were explained at, km/h:
    /// the baseline's break-even when it exists, else the midpoint of
    /// the swept range.
    #[serde(default)]
    pub ledger_speed_kmh: Option<f64>,
    /// Each candidate's total consumed energy at `ledger_speed_kmh`,
    /// nanojoules, in candidate order (baseline first). Empty in
    /// reports serialized before the ledger existed.
    #[serde(default)]
    pub candidate_consumed_nj: Vec<i64>,
    /// Component-by-component comparison of the winner against the
    /// baseline at `ledger_speed_kmh` — the "why" behind `best`. Empty
    /// in reports serialized before the ledger existed.
    #[serde(default)]
    pub ledger_deltas: Vec<LedgerDelta>,
}

impl OptimizeReport {
    /// Break-even improvement over the baseline, km/h (0 when either
    /// side never crosses).
    #[must_use]
    pub fn improvement_kmh(&self) -> f64 {
        match (self.baseline_kmh, self.best_kmh) {
            (Some(base), Some(best)) => base - best,
            _ => 0.0,
        }
    }

    /// The consumption component the winner saves the most on — the
    /// headline of the report ("the winner wins because *radio* drops
    /// 38 %"). `None` when no component got cheaper.
    #[must_use]
    pub fn dominant_saving(&self) -> Option<&LedgerDelta> {
        self.ledger_deltas
            .iter()
            .filter(|delta| !matches!(delta.component.as_str(), "consumed" | "storage-delta"))
            .filter(|delta| delta.delta_nj() < 0)
            .min_by_key(|delta| delta.delta_nj())
    }
}

/// Rows comparing two ledgers of the same scenario family at the same
/// speed: one row per baseline block (matched to the candidate's block
/// of the same name), then the extended-axis surcharges and the
/// aggregate consumed / storage-delta books.
fn ledger_deltas(baseline: &EnergyLedger, best: &EnergyLedger) -> Vec<LedgerDelta> {
    let row = |component: &str, baseline_nj: i64, best_nj: i64| LedgerDelta {
        component: component.to_owned(),
        baseline_nj,
        best_nj,
    };
    let mut deltas = Vec::with_capacity(baseline.blocks.len() + 4);
    for entry in &baseline.blocks {
        let matched = best
            .blocks
            .iter()
            .find(|candidate| candidate.block == entry.block)
            .map_or(0, LedgerEntry::total_nj);
        deltas.push(row(&entry.block, entry.total_nj(), matched));
    }
    deltas.push(row(
        "radio-retx",
        baseline.radio_retx_nj,
        best.radio_retx_nj,
    ));
    deltas.push(row(
        "ageing-leak",
        baseline.ageing_leak_nj,
        best.ageing_leak_nj,
    ));
    deltas.push(row("consumed", baseline.consumed_nj, best.consumed_nj));
    deltas.push(row(
        "storage-delta",
        baseline.storage_delta_nj,
        best.storage_delta_nj,
    ));
    deltas
}

/// Searches node configurations / duty policies for the lowest
/// break-even speed of a scenario.
#[derive(Debug, Clone)]
pub struct BreakEvenOptimizer {
    scenario: Scenario,
}

impl BreakEvenOptimizer {
    /// An optimizer over `scenario`'s conditions, chain, wheel and
    /// extended axes; only the node architecture varies per candidate.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        Self {
            scenario: scenario.clone(),
        }
    }

    /// The candidate list: the unmodified scenario first, then the
    /// reference config grid crossed with every duty policy, in a fixed
    /// order.
    fn candidates() -> Vec<Option<NodeConfig>> {
        let mut candidates: Vec<Option<NodeConfig>> = vec![None];
        for duty in DUTY_POLICIES {
            for config in ConfigSpace::reference_grid().iter() {
                candidates.push(Some(config.with_acquisition_fraction(*duty)));
            }
        }
        candidates
    }

    /// Runs the search over `[lo, hi]` sampled at `steps` speeds per
    /// candidate, fanning candidates across `executor` and polling
    /// `cancelled` between chunks. `Ok(None)` means the search was
    /// abandoned (deadline). A completed search is bit-identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation-cache failures for the baseline scenario.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`, `lo` is not positive, or `hi ≤ lo` (the
    /// sweep grid's own contract).
    pub fn search<C: Fn() -> bool + Sync>(
        &self,
        lo: Speed,
        hi: Speed,
        steps: usize,
        executor: &SweepExecutor,
        cancelled: &C,
    ) -> Result<Option<OptimizeReport>, CoreError> {
        let _span = monityre_obs::span!("optimizer.search");
        // Build the baseline eagerly so malformed scenarios fail with a
        // typed error instead of panicking inside a worker.
        let baseline = EnergyBalance::new(&self.scenario)?;
        let candidates = Self::candidates();
        let outcomes = executor.map_cancellable(&candidates, cancelled, |_, candidate| {
            let break_even = match candidate {
                None => baseline.sweep(lo, hi, steps).break_even(),
                Some(config) => {
                    let derived = self
                        .scenario
                        .with_architecture(Architecture::from_config(*config));
                    EnergyBalance::new(&derived)
                        .expect("reference-grid configs always build")
                        .sweep(lo, hi, steps)
                        .break_even()
                }
            };
            break_even.map(|speed| speed.kmh())
        });
        let Some(outcomes) = outcomes else {
            return Ok(None);
        };
        // First-wins comparison in candidate order: deterministic for
        // any executor, and the baseline wins every exact tie.
        let mut best_index = 0usize;
        let mut best = outcomes[0].unwrap_or(f64::INFINITY);
        for (index, outcome) in outcomes.iter().enumerate().skip(1) {
            let value = outcome.unwrap_or(f64::INFINITY);
            if value < best {
                best = value;
                best_index = index;
            }
        }
        // Attribution pass: explain every candidate at one common speed
        // — the baseline's break-even (the operating point the search is
        // about) or the swept midpoint when the baseline never crosses.
        // Runs serially after the search so the report stays
        // bit-identical for any thread count.
        let ledger_speed_kmh = outcomes[0].unwrap_or_else(|| (lo.kmh() + hi.kmh()) / 2.0);
        let ledger_speed = Speed::from_kmh(ledger_speed_kmh);
        let baseline_ledger = baseline.explain(ledger_speed)?;
        let mut candidate_consumed_nj = Vec::with_capacity(candidates.len());
        let mut best_ledger = baseline_ledger.clone();
        for (index, candidate) in candidates.iter().enumerate() {
            let ledger = match candidate {
                None => baseline_ledger.clone(),
                Some(config) => {
                    let derived = self
                        .scenario
                        .with_architecture(Architecture::from_config(*config));
                    EnergyBalance::new(&derived)
                        .expect("reference-grid configs always build")
                        .explain(ledger_speed)?
                }
            };
            candidate_consumed_nj.push(ledger.consumed_nj);
            if index == best_index {
                best_ledger = ledger;
            }
        }
        Ok(Some(OptimizeReport {
            baseline_kmh: outcomes[0],
            best_kmh: outcomes[best_index],
            best: candidates[best_index].as_ref().map(CandidateConfig::of),
            candidates: candidates.len(),
            ledger_speed_kmh: Some(ledger_speed_kmh),
            ledger_deltas: ledger_deltas(&baseline_ledger, &best_ledger),
            candidate_consumed_nj,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search_reference(threads: usize) -> OptimizeReport {
        BreakEvenOptimizer::new(&Scenario::reference())
            .search(
                Speed::from_kmh(5.0),
                Speed::from_kmh(200.0),
                48,
                &SweepExecutor::new(threads),
                &|| false,
            )
            .unwrap()
            .expect("not cancelled")
    }

    #[test]
    fn optimized_never_worse_than_baseline() {
        let report = search_reference(1);
        let baseline = report.baseline_kmh.expect("reference curves cross");
        let best = report.best_kmh.expect("some candidate crosses");
        assert!(best <= baseline, "best {best} vs baseline {baseline}");
        assert!(report.improvement_kmh() >= 0.0);
        assert!(report.candidates > 1 + ConfigSpace::reference_grid().len());
    }

    #[test]
    fn search_is_bit_identical_across_thread_counts() {
        let serial = search_reference(1);
        for threads in [2, 4] {
            let parallel = search_reference(threads);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn cancelled_search_returns_none() {
        let outcome = BreakEvenOptimizer::new(&Scenario::reference())
            .search(
                Speed::from_kmh(5.0),
                Speed::from_kmh(200.0),
                16,
                &SweepExecutor::serial(),
                &|| true,
            )
            .unwrap();
        assert!(outcome.is_none());
    }

    #[test]
    fn ledger_deltas_attribute_the_winners_saving() {
        let report = search_reference(1);
        assert_eq!(
            report.ledger_speed_kmh, report.baseline_kmh,
            "the attribution speed is the baseline break-even"
        );
        assert_eq!(report.candidate_consumed_nj.len(), report.candidates);
        let consumed = report
            .ledger_deltas
            .iter()
            .find(|delta| delta.component == "consumed")
            .expect("the aggregate consumed row exists");
        assert_eq!(
            consumed.baseline_nj, report.candidate_consumed_nj[0],
            "candidate zero is the baseline"
        );
        if report.improvement_kmh() > 0.0 {
            // A strictly lower break-even means the winner demands less
            // at the baseline's break-even speed, and some component
            // must account for the drop.
            assert!(consumed.delta_nj() < 0, "consumed delta {consumed:?}");
            let saving = report.dominant_saving().expect("a component got cheaper");
            assert!(saving.delta_nj() < 0);
            assert!(saving.delta_pct() < 0.0);
        }
    }

    #[test]
    fn pre_ledger_reports_still_deserialize() {
        let legacy = r#"{"baseline_kmh":40.0,"best_kmh":35.0,"best":null,"candidates":5}"#;
        let report: OptimizeReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(report.ledger_speed_kmh, None);
        assert!(report.candidate_consumed_nj.is_empty());
        assert!(report.ledger_deltas.is_empty());
        assert!(report.dominant_saving().is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = search_reference(1);
        let json = serde_json::to_string(&report).unwrap();
        let back: OptimizeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
