//! Error type for the analysis flow.

use std::error::Error;
use std::fmt;

use monityre_node::NodeError;
use monityre_power::PowerError;

/// Errors raised by the energy analysis flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An architecture-level failure (unknown block, bad schedule).
    Node(NodeError),
    /// A power-database failure.
    Power(PowerError),
    /// An evaluation was requested at a speed where the wheel round is not
    /// defined (standstill or negative speed).
    RoundUndefined {
        /// The offending speed in km/h.
        speed_kmh: f64,
    },
    /// An invalid parameter reached the flow.
    InvalidParameter {
        /// What was wrong.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn round_undefined(speed_kmh: f64) -> Self {
        Self::RoundUndefined { speed_kmh }
    }

    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Node(e) => write!(f, "architecture error: {e}"),
            Self::Power(e) => write!(f, "power database error: {e}"),
            Self::RoundUndefined { speed_kmh } => write!(
                f,
                "wheel round undefined at {speed_kmh} km/h: per-round energy needs motion"
            ),
            Self::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Node(e) => Some(e),
            Self::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NodeError> for CoreError {
    fn from(e: NodeError) -> Self {
        Self::Node(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        Self::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::round_undefined(0.0);
        assert!(e.to_string().contains("0 km/h"));
        let n: CoreError = NodeError::InvalidSchedule {
            reason: "x".to_owned(),
        }
        .into();
        assert!(Error::source(&n).is_some());
    }
}
