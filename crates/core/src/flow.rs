//! The energy analysis flow of the paper's Fig. 1, as an executable
//! pipeline.
//!
//! > architecture definition → per-block power estimation → energy
//! > evaluation → optimization (advisor) → re-estimation → energy-source
//! > integration → long-window emulation → operating windows.
//!
//! Each stage's artifact is kept in the [`FlowReport`], so a harness can
//! print the same intermediate results the paper's tool surfaces.

use monityre_harvest::{Storage, Supercap};
use monityre_node::Architecture;
use monityre_power::{OperatingMode, PowerBreakdown};
use monityre_profile::SpeedProfile;
use monityre_units::Speed;

use crate::{
    BalanceReport, CoreError, EmulationReport, EmulatorConfig, EnergyBalance, NodeEnergy,
    NodeOptimization, Scenario, SelectionPolicy, SweepExecutor, TransientEmulator,
};

/// The complete artifact trail of one flow execution.
#[derive(Debug)]
pub struct FlowReport {
    /// Stage 1 — per-block active-mode power estimates.
    pub power_estimates: Vec<(String, PowerBreakdown)>,
    /// Stage 2 — per-round energy evaluation of the initial architecture.
    pub initial_energy: NodeEnergy,
    /// Stage 3+4 — optimization and re-estimation.
    pub optimization: NodeOptimization,
    /// Stage 5 — energy balance of the *optimized* node vs speed.
    pub balance: BalanceReport,
    /// Stage 5 (baseline) — balance of the unoptimized node, for the
    /// break-even comparison.
    pub balance_before: BalanceReport,
    /// Stage 6 — long-window emulation of the optimized node.
    pub emulation: EmulationReport,
}

impl FlowReport {
    /// Break-even speed before optimization, if the curves cross.
    #[must_use]
    pub fn break_even_before(&self) -> Option<Speed> {
        self.balance_before.break_even()
    }

    /// Break-even speed after optimization, if the curves cross.
    #[must_use]
    pub fn break_even_after(&self) -> Option<Speed> {
        self.balance.break_even()
    }

    /// A multi-line textual summary of every stage (what the fig1 harness
    /// prints).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== Stage 1: power estimation (active mode) ==\n");
        for (name, p) in &self.power_estimates {
            out.push_str(&format!("  {name:<8} {p}\n"));
        }
        out.push_str("== Stage 2: energy evaluation (per wheel round) ==\n");
        for b in &self.initial_energy.blocks {
            out.push_str(&format!(
                "  {:<8} {}  (duty {})\n",
                b.name, b.energy, b.duty_cycle
            ));
        }
        out.push_str(&format!("  total    {}\n", self.initial_energy.total()));
        out.push_str("== Stage 3: optimization ==\n");
        for rec in &self.optimization.recommendations {
            out.push_str(&format!("  {:<8} {}\n", rec.block, rec.rationale));
        }
        out.push_str(&format!(
            "== Stage 4: re-estimation == {} -> {} ({:.1} % saved)\n",
            self.optimization.energy_before,
            self.optimization.energy_after,
            self.optimization.saving() * 100.0
        ));
        out.push_str("== Stage 5: source integration ==\n");
        out.push_str(&format!(
            "  break-even before {:?}, after {:?}\n",
            self.break_even_before().map(|s| s.kmh()),
            self.break_even_after().map(|s| s.kmh())
        ));
        out.push_str("== Stage 6: long-window emulation ==\n");
        out.push_str(&format!(
            "  coverage {:.1} %, {} operating window(s), {} brownout(s)\n",
            self.emulation.coverage() * 100.0,
            self.emulation.windows.len(),
            self.emulation.brownouts
        ));
        out
    }
}

/// The Fig. 1 pipeline runner over one [`Scenario`].
///
/// ```
/// use monityre_core::{Flow, Scenario, SelectionPolicy};
/// use monityre_profile::ConstantProfile;
/// use monityre_units::{Duration, Speed};
///
/// let flow = Flow::new(
///     &Scenario::reference(),
///     Speed::from_kmh(30.0),
///     SelectionPolicy::DutyCycleAware,
/// );
/// let profile = ConstantProfile::new(Speed::from_kmh(60.0), Duration::from_mins(1.0));
/// let report = flow.run(&profile).unwrap();
/// assert!(report.optimization.saving() > 0.0);
/// ```
#[derive(Debug)]
pub struct Flow {
    scenario: Scenario,
    design_speed: Speed,
    policy: SelectionPolicy,
    emulator_config: EmulatorConfig,
    executor: SweepExecutor,
}

impl Flow {
    /// Creates a flow over a scenario: the paper's "entry point of this
    /// flow is the definition of the architecture".
    #[must_use]
    pub fn new(scenario: &Scenario, design_speed: Speed, policy: SelectionPolicy) -> Self {
        Self {
            scenario: scenario.clone(),
            design_speed,
            policy,
            emulator_config: EmulatorConfig::new(),
            executor: SweepExecutor::serial(),
        }
    }

    /// Overrides the emulator configuration for stage 6.
    #[must_use]
    pub fn with_emulator_config(mut self, config: EmulatorConfig) -> Self {
        self.emulator_config = config;
        self
    }

    /// Runs stage-5 sweeps on `executor` (bit-identical to serial).
    #[must_use]
    pub fn with_executor(mut self, executor: SweepExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// The evaluation session this flow runs in.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs every stage with the default reservoir (reference supercap).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from any stage.
    pub fn run(&self, profile: &dyn SpeedProfile) -> Result<FlowReport, CoreError> {
        let mut storage = Supercap::reference();
        self.run_with_storage(profile, &mut storage)
    }

    /// Runs every stage against a caller-supplied storage element.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from any stage.
    pub fn run_with_storage<S: Storage>(
        &self,
        profile: &dyn SpeedProfile,
        storage: &mut S,
    ) -> Result<FlowReport, CoreError> {
        let architecture = self.scenario.architecture();
        let conditions = self.scenario.conditions();
        let chain = self.scenario.chain();

        // Stage 1: power estimation.
        let analyzer = self.scenario.analyzer();
        let mut power_estimates = Vec::new();
        for name in architecture.block_names() {
            let p =
                architecture
                    .database()
                    .block_power(name, OperatingMode::Active, &conditions)?;
            power_estimates.push((name.to_owned(), p));
        }

        // Stage 2: energy evaluation.
        let initial_energy = analyzer.node_energy(self.design_speed)?;

        // Stages 3 + 4: optimization and re-estimation.
        let advisor = crate::OptimizationAdvisor::new(&analyzer, self.design_speed);
        let optimization = advisor.optimize(self.policy)?;

        // Stage 5: energy-source integration (both architectures).
        let balance_before = self.stage5_sweep(architecture)?;
        let balance = self.stage5_sweep(&optimization.architecture)?;

        // Stage 6: long-window emulation of the optimized node.
        let emulator = TransientEmulator::new(
            &optimization.architecture,
            chain,
            conditions,
            self.emulator_config.clone(),
        )?;
        let emulation = emulator.run(profile, storage);

        Ok(FlowReport {
            power_estimates,
            initial_energy,
            optimization,
            balance,
            balance_before,
            emulation,
        })
    }

    /// The stage-5 balance sweep for one candidate architecture.
    fn stage5_sweep(&self, architecture: &Architecture) -> Result<BalanceReport, CoreError> {
        let session = self.scenario.with_architecture(architecture.clone());
        Ok(EnergyBalance::new(&session)?.sweep_with(
            Speed::from_kmh(5.0),
            Speed::from_kmh(200.0),
            118,
            &self.executor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_profile::ConstantProfile;
    use monityre_units::Duration;

    fn run_reference() -> FlowReport {
        let flow = Flow::new(
            &Scenario::reference(),
            Speed::from_kmh(30.0),
            SelectionPolicy::DutyCycleAware,
        );
        let profile = ConstantProfile::new(Speed::from_kmh(60.0), Duration::from_mins(1.0));
        flow.run(&profile).unwrap()
    }

    #[test]
    fn all_stages_produce_artifacts() {
        let report = run_reference();
        assert_eq!(report.power_estimates.len(), 6);
        assert_eq!(report.initial_energy.blocks.len(), 6);
        assert_eq!(report.optimization.recommendations.len(), 6);
        assert!(!report.balance.is_empty());
        assert!(!report.emulation.samples.is_empty());
    }

    #[test]
    fn optimization_lowers_break_even() {
        let report = run_reference();
        let before = report.break_even_before().expect("crosses before");
        let after = report.break_even_after().expect("crosses after");
        assert!(
            after < before,
            "optimization must lower the activation speed: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn summary_covers_every_stage() {
        let report = run_reference();
        let text = report.summary();
        for needle in [
            "Stage 1",
            "Stage 2",
            "Stage 3",
            "Stage 4",
            "Stage 5",
            "Stage 6",
            "break-even",
            "coverage",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn emulation_runs_on_optimized_architecture() {
        let report = run_reference();
        // At 60 km/h the optimized node must hold coverage.
        assert!(report.emulation.coverage() > 0.9);
    }

    #[test]
    fn parallel_flow_matches_serial() {
        let serial = run_reference();
        let flow = Flow::new(
            &Scenario::reference(),
            Speed::from_kmh(30.0),
            SelectionPolicy::DutyCycleAware,
        )
        .with_executor(SweepExecutor::new(4));
        let profile = ConstantProfile::new(Speed::from_kmh(60.0), Duration::from_mins(1.0));
        let parallel = flow.run(&profile).unwrap();
        assert_eq!(parallel.balance, serial.balance);
        assert_eq!(parallel.balance_before, serial.balance_before);
    }
}
