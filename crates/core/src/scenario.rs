//! The shared evaluation session.
//!
//! Every evaluator in this crate answers a question about the same four
//! things: a node architecture, the working conditions it runs under, the
//! harvesting chain supplying it, and the wheel it rides on. A
//! [`Scenario`] bundles them once, immutably, so the energy balance, the
//! Monte Carlo runner, the vehicle emulator, the governor and the flow all
//! consume one value instead of plumbing the tuple by hand — and so sweep
//! workers can share the chain cheaply through an [`Arc`].

use std::sync::Arc;

use monityre_harvest::HarvestChain;
use monityre_node::{Architecture, NodeConfig};
use monityre_power::WorkingConditions;
use monityre_profile::Wheel;

use crate::{CoreError, EnergyAnalyzer, EvalCache, ScenarioExtras};

/// One immutable evaluation session: architecture + conditions + harvest
/// chain + wheel.
///
/// ```
/// use monityre_core::{EnergyBalance, Scenario};
/// use monityre_units::Speed;
///
/// let scenario = Scenario::reference();
/// let balance = EnergyBalance::new(&scenario).unwrap();
/// let report = balance.sweep(Speed::from_kmh(5.0), Speed::from_kmh(200.0), 196);
/// let break_even = report.break_even().expect("curves cross");
/// assert!(break_even.kmh() > 10.0 && break_even.kmh() < 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    architecture: Architecture,
    conditions: WorkingConditions,
    chain: Arc<HarvestChain>,
    wheel: Wheel,
    /// Optional extended physics axes (radio retransmission, storage
    /// ageing). `None` — the default — runs the paper's base model with
    /// zero additional float operations, keeping reference results
    /// bit-identical.
    extras: Option<Arc<ScenarioExtras>>,
}

impl Scenario {
    /// Starts a builder with every field defaulting to its reference value.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The all-reference session: reference node, reference conditions,
    /// reference piezo chain, reference wheel.
    #[must_use]
    pub fn reference() -> Self {
        Self::builder().build()
    }

    /// The node architecture under evaluation.
    #[must_use]
    pub fn architecture(&self) -> &Architecture {
        &self.architecture
    }

    /// The working conditions (temperature, supply, process corner).
    #[must_use]
    pub fn conditions(&self) -> WorkingConditions {
        self.conditions
    }

    /// The harvesting chain supplying the node.
    #[must_use]
    pub fn chain(&self) -> &HarvestChain {
        &self.chain
    }

    /// A shared handle to the chain, for spawning derived sessions without
    /// copying the transducer model.
    #[must_use]
    pub fn chain_arc(&self) -> Arc<HarvestChain> {
        Arc::clone(&self.chain)
    }

    /// The wheel the node rides on.
    #[must_use]
    pub fn wheel(&self) -> &Wheel {
        &self.wheel
    }

    /// The extended physics axes, if any were attached.
    #[must_use]
    pub fn extras(&self) -> Option<&ScenarioExtras> {
        self.extras.as_deref()
    }

    /// An [`EnergyAnalyzer`] borrowing this scenario's architecture.
    #[must_use]
    pub fn analyzer(&self) -> EnergyAnalyzer<'_> {
        EnergyAnalyzer::new(&self.architecture, self.conditions).with_wheel(self.wheel)
    }

    /// Precomputes the per-block, per-conditions energy figures.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors for malformed architectures.
    pub fn cache(&self) -> Result<EvalCache, CoreError> {
        let _span = monityre_obs::span!("scenario.cache_build");
        EvalCache::new(self)
    }

    /// A derived session with a different architecture (same conditions,
    /// chain and wheel) — how per-draw and per-level variants are spawned.
    #[must_use]
    pub fn with_architecture(&self, architecture: Architecture) -> Self {
        Self {
            architecture,
            conditions: self.conditions,
            chain: Arc::clone(&self.chain),
            wheel: self.wheel,
            extras: self.extras.clone(),
        }
    }

    /// A derived session under different working conditions.
    #[must_use]
    pub fn with_conditions(&self, conditions: WorkingConditions) -> Self {
        Self {
            architecture: self.architecture.clone(),
            conditions,
            chain: Arc::clone(&self.chain),
            wheel: self.wheel,
            extras: self.extras.clone(),
        }
    }
}

/// Builds a [`Scenario`], defaulting every unset field to its reference
/// value; the wheel defaults to the chain's wheel so supply and demand
/// agree on the round period.
#[derive(Debug, Default)]
pub struct ScenarioBuilder {
    architecture: Option<Architecture>,
    conditions: Option<WorkingConditions>,
    chain: Option<Arc<HarvestChain>>,
    wheel: Option<Wheel>,
    extras: Option<ScenarioExtras>,
}

impl ScenarioBuilder {
    /// An empty builder (all fields default to reference values).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node architecture.
    #[must_use]
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.architecture = Some(architecture);
        self
    }

    /// Sets the architecture from a node configuration.
    #[must_use]
    pub fn config(self, config: NodeConfig) -> Self {
        self.architecture(Architecture::from_config(config))
    }

    /// Sets the working conditions.
    #[must_use]
    pub fn conditions(mut self, conditions: WorkingConditions) -> Self {
        self.conditions = Some(conditions);
        self
    }

    /// Sets the harvesting chain.
    #[must_use]
    pub fn chain(mut self, chain: HarvestChain) -> Self {
        self.chain = Some(Arc::new(chain));
        self
    }

    /// Sets the harvesting chain from an existing shared handle.
    #[must_use]
    pub fn chain_arc(mut self, chain: Arc<HarvestChain>) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Overrides the wheel (defaults to the chain's wheel).
    #[must_use]
    pub fn wheel(mut self, wheel: Wheel) -> Self {
        self.wheel = Some(wheel);
        self
    }

    /// Attaches extended physics axes. A vacuous value (no axis set) is
    /// dropped, so only scenarios that actually carry extra physics pay
    /// anything for them.
    #[must_use]
    pub fn extras(mut self, extras: ScenarioExtras) -> Self {
        self.extras = (!extras.is_vacuous()).then_some(extras);
        self
    }

    /// Assembles the scenario.
    #[must_use]
    pub fn build(self) -> Scenario {
        let chain = self
            .chain
            .unwrap_or_else(|| Arc::new(HarvestChain::reference()));
        let wheel = self.wheel.unwrap_or(*chain.wheel());
        Scenario {
            architecture: self.architecture.unwrap_or_else(Architecture::reference),
            conditions: self.conditions.unwrap_or_else(WorkingConditions::reference),
            chain,
            wheel,
            extras: self.extras.map(Arc::new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_units::{Speed, Temperature};

    #[test]
    fn reference_defaults_are_consistent() {
        let scenario = Scenario::reference();
        assert_eq!(scenario.architecture().len(), 6);
        assert_eq!(scenario.wheel(), scenario.chain().wheel());
        assert_eq!(scenario.conditions(), WorkingConditions::reference());
    }

    #[test]
    fn builder_overrides_stick() {
        let hot = WorkingConditions::reference().with_temperature(Temperature::from_celsius(85.0));
        let scenario = Scenario::builder()
            .config(NodeConfig::reference().with_samples_per_round(32))
            .conditions(hot)
            .build();
        assert_eq!(scenario.conditions(), hot);
        assert!(scenario.analyzer().conditions() == hot);
    }

    #[test]
    fn wheel_defaults_to_chain_wheel() {
        let chain = HarvestChain::reference();
        let wheel = *chain.wheel();
        let scenario = Scenario::builder().chain(chain).build();
        assert_eq!(*scenario.wheel(), wheel);
    }

    #[test]
    fn derived_sessions_share_the_chain() {
        let scenario = Scenario::reference();
        let derived = scenario.with_conditions(
            WorkingConditions::reference().with_temperature(Temperature::from_celsius(0.0)),
        );
        assert!(Arc::ptr_eq(&scenario.chain_arc(), &derived.chain_arc()));
        let rearch = scenario.with_architecture(Architecture::reference());
        assert!(Arc::ptr_eq(&scenario.chain_arc(), &rearch.chain_arc()));
    }

    #[test]
    fn analyzer_matches_hand_built_one() {
        let scenario = Scenario::reference();
        let by_hand = EnergyAnalyzer::new(scenario.architecture(), WorkingConditions::reference())
            .with_wheel(*scenario.chain().wheel());
        let v = Speed::from_kmh(60.0);
        assert_eq!(
            scenario.analyzer().required_per_round(v).unwrap(),
            by_hand.required_per_round(v).unwrap()
        );
    }
}
