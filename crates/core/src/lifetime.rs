//! Battery-vs-scavenger lifetime analysis.
//!
//! §I of the paper motivates harvesting with one sentence: "standard
//! batteries cannot supply this chip for a full tyre lifetime". This
//! module quantifies the claim — and its nuance. A frugal TPMS-class
//! configuration *can* live on a coin cell (which is why plain TPMS
//! sensors ship with batteries); it is the Cyber-Tyre-class monitoring
//! rates (hundreds of samples per round, frequent transmissions) combined
//! with in-tyre temperatures (battery derating and hot leakage) that push
//! the battery below the tyre's wear life, while the scavenger sustains
//! the load indefinitely above the break-even speed.

use monityre_harvest::{HarvestChain, IdealBattery, Storage};
use monityre_units::{Distance, Duration, Energy, Speed};

use crate::{CoreError, EnergyAnalyzer};

/// A driver's daily usage pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsagePattern {
    /// Time spent driving per day.
    pub daily_driving: Duration,
    /// Mean cruising speed while driving.
    pub mean_speed: Speed,
}

impl UsagePattern {
    /// A typical commuter: 1.5 h/day at a 55 km/h mean.
    #[must_use]
    pub fn commuter() -> Self {
        Self {
            daily_driving: Duration::from_hours(1.5),
            mean_speed: Speed::from_kmh(55.0),
        }
    }

    /// A light-usage commuter: 45 min/day at a 55 km/h mean. Long tyre
    /// life — the regime where battery self-discharge dominates.
    #[must_use]
    pub fn light_commuter() -> Self {
        Self {
            daily_driving: Duration::from_hours(0.75),
            mean_speed: Speed::from_kmh(55.0),
        }
    }

    /// A long-haul pattern: 7 h/day at a 85 km/h mean.
    #[must_use]
    pub fn long_haul() -> Self {
        Self {
            daily_driving: Duration::from_hours(7.0),
            mean_speed: Speed::from_kmh(85.0),
        }
    }

    /// Distance covered per day.
    #[must_use]
    pub fn daily_distance(&self) -> Distance {
        self.mean_speed * self.daily_driving
    }

    /// Validates the pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the driving time is
    /// not positive, exceeds a day, or the speed is not positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.daily_driving.secs() <= 0.0 || self.daily_driving.hours() > 24.0 {
            return Err(CoreError::invalid_parameter(
                "daily driving must lie in (0 h, 24 h]",
            ));
        }
        if self.mean_speed.mps() <= 0.0 || !self.mean_speed.is_finite() {
            return Err(CoreError::invalid_parameter("mean speed must be positive"));
        }
        Ok(())
    }
}

/// The verdict of the lifetime comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeReport {
    /// Energy the node consumes per day under the pattern.
    pub daily_consumption: Energy,
    /// Energy the scavenging chain delivers per day under the pattern.
    pub daily_harvest: Energy,
    /// Days until the given battery is empty (self-discharge included;
    /// capped at 20 years).
    pub battery_days: f64,
    /// Days until the tyre reaches its wear life under the pattern.
    pub tyre_days: f64,
    /// Whether the battery outlives the tyre.
    pub battery_outlives_tyre: bool,
    /// Whether the scavenger covers the daily demand (net-positive days).
    pub scavenger_sustains: bool,
}

/// Conventional passenger-tyre wear life.
const TYRE_LIFE_KM: f64 = 50_000.0;
const SECONDS_PER_DAY: f64 = 24.0 * 3600.0;
/// Simulation horizon: past 20 years the comparison is settled.
const MAX_DAYS: u32 = 20 * 365;

/// Estimates node lifetime on a battery vs on the scavenger.
///
/// The battery is drained by day-stepped simulation (consumption plus its
/// own self-discharge), so hot in-tyre cells are treated faithfully.
///
/// ```
/// use monityre_core::{EnergyAnalyzer, LifetimeEstimator, UsagePattern};
/// use monityre_harvest::{HarvestChain, IdealBattery, PiezoScavenger, Regulator};
/// use monityre_node::{Architecture, NodeConfig};
/// use monityre_power::WorkingConditions;
/// use monityre_profile::Wheel;
/// use monityre_units::Temperature;
///
/// // Full-rate monitoring on a warm tyre — the application the paper
/// // means — with a harvester sized 1.5x for that load (§I: available
/// // energy depends on the size of the scavenging device).
/// let config = NodeConfig::reference()
///     .with_samples_per_round(512)
///     .with_tx_period_rounds(1)
///     .with_payload_bytes(64);
/// let arch = Architecture::from_config(config);
/// let cond = WorkingConditions::reference()
///     .with_temperature(Temperature::from_celsius(45.0));
/// let analyzer = EnergyAnalyzer::new(&arch, cond);
/// let chain = HarvestChain::new(
///     PiezoScavenger::reference().scaled(1.5),
///     Regulator::reference(),
///     Wheel::reference(),
/// );
///
/// let estimator = LifetimeEstimator::new(&analyzer, &chain);
/// let report = estimator
///     .compare(UsagePattern::light_commuter(), IdealBattery::coin_cell_in_tyre())
///     .unwrap();
/// assert!(!report.battery_outlives_tyre); // the paper's §I claim
/// assert!(report.scavenger_sustains);
/// ```
#[derive(Debug)]
pub struct LifetimeEstimator<'a> {
    analyzer: &'a EnergyAnalyzer<'a>,
    chain: &'a HarvestChain,
}

impl<'a> LifetimeEstimator<'a> {
    /// Creates an estimator.
    #[must_use]
    pub fn new(analyzer: &'a EnergyAnalyzer<'a>, chain: &'a HarvestChain) -> Self {
        Self { analyzer, chain }
    }

    /// The node's consumption over one day of the pattern: driving at the
    /// mean speed plus standby for the remainder.
    ///
    /// # Errors
    ///
    /// Propagates pattern validation and evaluation errors.
    pub fn daily_consumption(&self, pattern: UsagePattern) -> Result<Energy, CoreError> {
        pattern.validate()?;
        let driving = self.analyzer.average_power(pattern.mean_speed)? * pattern.daily_driving;
        let parked_time = Duration::from_secs(SECONDS_PER_DAY) - pattern.daily_driving;
        let parked = self.analyzer.standby_power() * parked_time;
        Ok(driving + parked)
    }

    /// The chain's delivery over one day of the pattern.
    ///
    /// # Errors
    ///
    /// Propagates pattern validation errors.
    pub fn daily_harvest(&self, pattern: UsagePattern) -> Result<Energy, CoreError> {
        pattern.validate()?;
        Ok(self.chain.delivered_power(pattern.mean_speed) * pattern.daily_driving)
    }

    /// Days the battery survives under the pattern (day-stepped, capped
    /// at 20 years).
    ///
    /// # Errors
    ///
    /// Propagates pattern validation and evaluation errors.
    pub fn battery_days(
        &self,
        pattern: UsagePattern,
        mut battery: IdealBattery,
    ) -> Result<f64, CoreError> {
        let daily = self.daily_consumption(pattern)?;
        let one_day = Duration::from_hours(24.0);
        for day in 0..MAX_DAYS {
            if battery.withdraw(daily).is_err() {
                // Fraction of the final day covered by the remainder.
                let fraction = battery.available() / daily;
                return Ok(f64::from(day) + fraction.clamp(0.0, 1.0));
            }
            battery.self_discharge(one_day);
        }
        Ok(f64::from(MAX_DAYS))
    }

    /// Compares a primary battery against the scavenger over the tyre's
    /// wear life.
    ///
    /// # Errors
    ///
    /// Propagates pattern validation and evaluation errors.
    pub fn compare(
        &self,
        pattern: UsagePattern,
        battery: IdealBattery,
    ) -> Result<LifetimeReport, CoreError> {
        let daily_consumption = self.daily_consumption(pattern)?;
        let daily_harvest = self.daily_harvest(pattern)?;
        let battery_days = self.battery_days(pattern, battery)?;
        let tyre_days = TYRE_LIFE_KM / pattern.daily_distance().kilometres();

        Ok(LifetimeReport {
            daily_consumption,
            daily_harvest,
            battery_days,
            tyre_days,
            battery_outlives_tyre: battery_days >= tyre_days,
            scavenger_sustains: daily_harvest >= daily_consumption,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_node::{Architecture, NodeConfig};
    use monityre_power::WorkingConditions;
    use monityre_units::Temperature;

    /// Full-rate monitoring on a warm tyre: the Cyber-Tyre-class load.
    fn full_rate() -> (Architecture, WorkingConditions) {
        let config = NodeConfig::reference()
            .with_samples_per_round(512)
            .with_tx_period_rounds(1)
            .with_payload_bytes(64);
        (
            Architecture::from_config(config),
            WorkingConditions::reference().with_temperature(Temperature::from_celsius(45.0)),
        )
    }

    /// A harvester sized 1.5x for the full-rate load.
    fn sized_chain() -> HarvestChain {
        HarvestChain::new(
            monityre_harvest::PiezoScavenger::reference().scaled(1.5),
            monityre_harvest::Regulator::reference(),
            monityre_profile::Wheel::reference(),
        )
    }

    #[test]
    fn full_rate_monitoring_outlives_a_coin_cell() {
        let (arch, cond) = full_rate();
        let chain = sized_chain();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let report = estimator
            .compare(
                UsagePattern::light_commuter(),
                IdealBattery::coin_cell_in_tyre(),
            )
            .unwrap();
        assert!(
            !report.battery_outlives_tyre,
            "battery {:.0} days vs tyre {:.0} days",
            report.battery_days, report.tyre_days
        );
        assert!(report.scavenger_sustains);
    }

    #[test]
    fn tpms_class_node_survives_on_a_cell() {
        // The nuance: a frugal TPMS-class configuration (few samples,
        // sparse TX) does fine on a battery — which is why plain TPMS
        // sensors ship with one.
        let config = NodeConfig::reference()
            .with_samples_per_round(32)
            .with_tx_period_rounds(16)
            .with_acquisition_fraction(0.03);
        let arch = Architecture::from_config(config);
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let report = estimator
            .compare(UsagePattern::commuter(), IdealBattery::coin_cell())
            .unwrap();
        assert!(report.battery_outlives_tyre);
    }

    #[test]
    fn long_haul_wears_the_tyre_before_anything_else() {
        let (arch, cond) = full_rate();
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let report = estimator
            .compare(UsagePattern::long_haul(), IdealBattery::coin_cell_in_tyre())
            .unwrap();
        assert!(
            report.tyre_days < 150.0,
            "tyre {:.0} days",
            report.tyre_days
        );
    }

    #[test]
    fn self_discharge_shortens_battery_life() {
        let (arch, cond) = full_rate();
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let pattern = UsagePattern::commuter();
        let shelf = estimator
            .battery_days(pattern, IdealBattery::coin_cell())
            .unwrap();
        let in_tyre = estimator
            .battery_days(pattern, IdealBattery::coin_cell_in_tyre())
            .unwrap();
        assert!(in_tyre < shelf, "in-tyre {in_tyre} vs shelf {shelf}");
    }

    #[test]
    fn daily_accounting_splits_driving_and_standby() {
        let (arch, cond) = full_rate();
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let pattern = UsagePattern::commuter();
        let consumption = estimator.daily_consumption(pattern).unwrap();
        let driving_only =
            analyzer.average_power(pattern.mean_speed).unwrap() * pattern.daily_driving;
        assert!(consumption > driving_only);
        assert!(consumption < driving_only * 2.0);
    }

    #[test]
    fn scavenger_fails_below_break_even() {
        let (arch, cond) = full_rate();
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let crawl = UsagePattern {
            daily_driving: Duration::from_hours(2.0),
            mean_speed: Speed::from_kmh(15.0),
        };
        let report = estimator.compare(crawl, IdealBattery::coin_cell()).unwrap();
        assert!(!report.scavenger_sustains);
    }

    #[test]
    fn rejects_invalid_patterns() {
        let (arch, cond) = full_rate();
        let chain = HarvestChain::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let estimator = LifetimeEstimator::new(&analyzer, &chain);
        let bad_time = UsagePattern {
            daily_driving: Duration::ZERO,
            mean_speed: Speed::from_kmh(50.0),
        };
        assert!(estimator.daily_consumption(bad_time).is_err());
        let bad_speed = UsagePattern {
            daily_driving: Duration::from_hours(1.0),
            mean_speed: Speed::ZERO,
        };
        assert!(estimator.daily_harvest(bad_speed).is_err());
    }

    #[test]
    fn daily_distance() {
        let pattern = UsagePattern {
            daily_driving: Duration::from_hours(2.0),
            mean_speed: Speed::from_kmh(60.0),
        };
        assert!((pattern.daily_distance().kilometres() - 120.0).abs() < 1e-9);
    }
}
