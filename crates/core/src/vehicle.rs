//! Four-corner vehicle emulation.
//!
//! The paper's system is per-wheel, but its purpose is vehicle-level:
//! "a real time monitoring system for tyre status analysis … and also for
//! operating conditions analysis (i.e., potential friction)" (§I).
//! Friction estimation needs *all four* corners reporting at once, so the
//! vehicle-level figure of merit is not one node's coverage but the
//! fraction of the trip during which **every** node is active. This
//! module runs the four emulations against a shared speed profile with
//! per-corner parameter spreads and computes exactly that.

use monityre_harvest::Supercap;
use monityre_profile::{SpeedProfile, TyreThermalModel};
use monityre_units::Duration;

use crate::{
    CoreError, EmulationReport, EmulatorConfig, Scenario, SweepExecutor, TransientEmulator,
};

/// The four wheel stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WheelPosition {
    /// Front left.
    FrontLeft,
    /// Front right.
    FrontRight,
    /// Rear left.
    RearLeft,
    /// Rear right.
    RearRight,
}

impl WheelPosition {
    /// All four corners.
    pub const ALL: [Self; 4] = [
        Self::FrontLeft,
        Self::FrontRight,
        Self::RearLeft,
        Self::RearRight,
    ];

    /// Whether the wheel is on the (more loaded, hotter) front axle of a
    /// front-engined car.
    #[must_use]
    pub fn is_front(self) -> bool {
        matches!(self, Self::FrontLeft | Self::FrontRight)
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::FrontLeft => "FL",
            Self::FrontRight => "FR",
            Self::RearLeft => "RL",
            Self::RearRight => "RR",
        }
    }
}

/// Per-corner spread applied to the reference node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerSetup {
    /// The wheel station.
    pub position: WheelPosition,
    /// Scavenger size/efficiency spread (1.0 = nominal).
    pub scavenger_scale: f64,
    /// Thermal heating-coefficient spread (front axle runs hotter).
    pub thermal_scale: f64,
}

impl CornerSetup {
    /// The reference spread: front axle heats ≈ 15 % more; scavengers
    /// spread ±4 % left/right (mounting/tolerance).
    #[must_use]
    pub fn reference() -> [Self; 4] {
        [
            Self {
                position: WheelPosition::FrontLeft,
                scavenger_scale: 1.04,
                thermal_scale: 1.15,
            },
            Self {
                position: WheelPosition::FrontRight,
                scavenger_scale: 0.96,
                thermal_scale: 1.15,
            },
            Self {
                position: WheelPosition::RearLeft,
                scavenger_scale: 1.02,
                thermal_scale: 1.0,
            },
            Self {
                position: WheelPosition::RearRight,
                scavenger_scale: 0.98,
                thermal_scale: 1.0,
            },
        ]
    }
}

/// The vehicle-level emulation outcome.
#[derive(Debug)]
pub struct VehicleReport {
    /// Per-corner emulation reports, in [`WheelPosition::ALL`] order.
    pub corners: Vec<(WheelPosition, EmulationReport)>,
    /// Fraction of the trip during which **all four** nodes were active —
    /// the availability of vehicle-level friction estimation.
    pub all_active_fraction: f64,
    /// Fraction of the trip during which at least one node was active.
    pub any_active_fraction: f64,
}

impl VehicleReport {
    /// The corner with the worst coverage (the availability bottleneck).
    ///
    /// # Panics
    ///
    /// Never panics: a report always carries four corners.
    #[must_use]
    pub fn bottleneck(&self) -> WheelPosition {
        self.corners
            .iter()
            .min_by(|a, b| a.1.coverage().total_cmp(&b.1.coverage()))
            .expect("four corners by construction")
            .0
    }
}

/// Runs the four per-wheel emulations against one speed profile.
///
/// Each corner derives its chain from the scenario's chain (scaled by the
/// corner's scavenger spread), so one [`Scenario`] describes the whole
/// vehicle.
///
/// ```
/// use monityre_core::VehicleEmulator;
/// use monityre_profile::ConstantProfile;
/// use monityre_units::{Duration, Speed};
///
/// let emulator = VehicleEmulator::reference();
/// let cruise = ConstantProfile::new(Speed::from_kmh(100.0), Duration::from_mins(3.0));
/// let report = emulator.run(&cruise).unwrap();
/// assert!(report.all_active_fraction > 0.9);
/// ```
#[derive(Debug)]
pub struct VehicleEmulator {
    scenario: Scenario,
    config: EmulatorConfig,
    corners: [CornerSetup; 4],
}

impl VehicleEmulator {
    /// The reference vehicle: the reference scenario at every corner with
    /// the reference spreads.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(
            &Scenario::reference(),
            EmulatorConfig::new(),
            CornerSetup::reference(),
        )
    }

    /// Builds a custom vehicle.
    #[must_use]
    pub fn new(scenario: &Scenario, config: EmulatorConfig, corners: [CornerSetup; 4]) -> Self {
        Self {
            scenario: scenario.clone(),
            config,
            corners,
        }
    }

    /// The per-corner base session.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the trip on all four corners serially.
    ///
    /// # Errors
    ///
    /// Propagates emulator configuration errors.
    pub fn run(&self, profile: &(dyn SpeedProfile + Sync)) -> Result<VehicleReport, CoreError> {
        self.run_with(profile, &SweepExecutor::serial())
    }

    /// Runs the trip with the corners fanned out on `executor`'s workers.
    /// Corners are independent, so the report is bit-identical to
    /// [`Self::run`] for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates emulator configuration errors.
    pub fn run_with(
        &self,
        profile: &(dyn SpeedProfile + Sync),
        executor: &SweepExecutor,
    ) -> Result<VehicleReport, CoreError> {
        let outcomes = executor.map(&self.corners, |_, setup| {
            self.emulate_corner(setup, profile)
        });
        let mut corners = Vec::with_capacity(4);
        for outcome in outcomes {
            corners.push(outcome?);
        }

        let span = profile.duration();
        let all_active = overlap_fraction(&corners, span, true);
        let any_active = overlap_fraction(&corners, span, false);

        Ok(VehicleReport {
            corners,
            all_active_fraction: all_active,
            any_active_fraction: any_active,
        })
    }

    /// One corner's emulation: the scenario's chain scaled by the corner's
    /// scavenger spread, the thermal model scaled by the axle spread.
    fn emulate_corner(
        &self,
        setup: &CornerSetup,
        profile: &dyn SpeedProfile,
    ) -> Result<(WheelPosition, EmulationReport), CoreError> {
        let chain = self.scenario.chain().scaled(setup.scavenger_scale);
        let mut config = self.config.clone();
        config.thermal = TyreThermalModel::new(
            config.thermal.heating_coefficient() * setup.thermal_scale,
            config.thermal.time_constant(),
        );
        let emulator = TransientEmulator::new(
            self.scenario.architecture(),
            &chain,
            self.scenario.conditions(),
            config,
        )?;
        let mut storage = Supercap::reference();
        let report = emulator.run(profile, &mut storage);
        Ok((setup.position, report))
    }
}

/// Fraction of the span covered by the intersection (`all = true`) or
/// union (`all = false`) of the corners' operating windows, measured on a
/// fine uniform grid.
fn overlap_fraction(
    corners: &[(WheelPosition, EmulationReport)],
    span: Duration,
    all: bool,
) -> f64 {
    const GRID: usize = 4096;
    if span.secs() <= 0.0 {
        return 0.0;
    }
    let mut covered = 0usize;
    for i in 0..GRID {
        let t = span.secs() * (i as f64 + 0.5) / GRID as f64;
        let mut active_count = 0;
        for (_, report) in corners {
            if report
                .windows
                .iter()
                .any(|w| t >= w.start.secs() && t < w.end.secs())
            {
                active_count += 1;
            }
        }
        let hit = if all {
            active_count == corners.len()
        } else {
            active_count > 0
        };
        if hit {
            covered += 1;
        }
    }
    covered as f64 / GRID as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_profile::{CompositeProfile, ConstantProfile, RepeatProfile, UrbanCycle};
    use monityre_units::Speed;

    #[test]
    fn cruise_keeps_all_corners_alive() {
        let emulator = VehicleEmulator::reference();
        let cruise = ConstantProfile::new(Speed::from_kmh(110.0), Duration::from_mins(3.0));
        let report = emulator.run(&cruise).unwrap();
        assert_eq!(report.corners.len(), 4);
        assert!(
            report.all_active_fraction > 0.9,
            "{}",
            report.all_active_fraction
        );
    }

    #[test]
    fn all_active_bounded_by_worst_corner() {
        let emulator = VehicleEmulator::reference();
        let trip = CompositeProfile::new(vec![
            Box::new(RepeatProfile::new(UrbanCycle::new(), 2)),
            Box::new(ConstantProfile::new(
                Speed::from_kmh(90.0),
                Duration::from_mins(2.0),
            )),
        ]);
        let report = emulator.run(&trip).unwrap();
        let worst = report
            .corners
            .iter()
            .map(|(_, r)| r.coverage())
            .fold(1.0f64, f64::min);
        assert!(report.all_active_fraction <= worst + 1e-6);
        assert!(report.any_active_fraction + 1e-6 >= worst);
        assert!(report.all_active_fraction <= report.any_active_fraction + 1e-6);
    }

    #[test]
    fn bottleneck_is_a_real_corner() {
        let emulator = VehicleEmulator::reference();
        let cruise = ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_mins(2.0));
        let report = emulator.run(&cruise).unwrap();
        assert!(WheelPosition::ALL.contains(&report.bottleneck()));
    }

    #[test]
    fn front_axle_runs_hotter() {
        let emulator = VehicleEmulator::reference();
        let cruise = ConstantProfile::new(Speed::from_kmh(130.0), Duration::from_mins(30.0));
        let report = emulator.run(&cruise).unwrap();
        let temp_of = |pos: WheelPosition| {
            report
                .corners
                .iter()
                .find(|(p, _)| *p == pos)
                .unwrap()
                .1
                .samples
                .last()
                .unwrap()
                .tyre_temperature
        };
        assert!(temp_of(WheelPosition::FrontLeft) > temp_of(WheelPosition::RearLeft));
    }

    #[test]
    fn positions_have_unique_labels() {
        let mut labels: Vec<_> = WheelPosition::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn parallel_corners_match_serial() {
        let emulator = VehicleEmulator::reference();
        let cruise = ConstantProfile::new(Speed::from_kmh(80.0), Duration::from_mins(2.0));
        let serial = emulator.run(&cruise).unwrap();
        let parallel = emulator.run_with(&cruise, &SweepExecutor::new(4)).unwrap();
        assert_eq!(parallel.corners.len(), serial.corners.len());
        for ((sp, sr), (pp, pr)) in serial.corners.iter().zip(&parallel.corners) {
            assert_eq!(sp, pp);
            assert_eq!(sr.coverage().to_bits(), pr.coverage().to_bits());
            assert_eq!(sr.windows.len(), pr.windows.len());
        }
        assert_eq!(
            serial.all_active_fraction.to_bits(),
            parallel.all_active_fraction.to_bits()
        );
    }
}
