//! The optimization advisor: technique selection from the
//! (dynamic/static split × duty cycle) pair.
//!
//! The paper's pivotal observation (§II): "if we consider a functional
//! block with an high dynamic power and a low leakage power, we normally
//! want to optimize this block for minimizing the dynamic power only. But
//! if we consider also temporal information and the block results having a
//! short duty cycle, it is worth to optimize not only the dynamic power
//! but also the static one since the idle time is significant. This
//! approach is thus useful to increase the efficiency of the optimization
//! step."
//!
//! Two selection policies are implemented:
//!
//! * [`SelectionPolicy::PowerFigures`] — the naive baseline the paper
//!   criticizes: look only at the dynamic/static *power* split of the
//!   active block;
//! * [`SelectionPolicy::DutyCycleAware`] — the paper's method: look at the
//!   per-round *energy* split, which folds in the duty cycle, so a
//!   dynamic-power-dominated block that idles 95 % of the round still gets
//!   its leakage treated.

use std::fmt;

use monityre_node::Architecture;
use monityre_power::{BlockPowerModel, ModePolicy, OperatingMode};
use monityre_units::{Energy, Speed};

use crate::{CoreError, EnergyAnalyzer};

/// An optimization technique with its effect model.
///
/// Effects are multiplicative factors on the block's power model,
/// representative of published results for each technique class; overheads
/// (area ⇒ extra leakage, gating headers, wake-up penalties) are included
/// so a technique is never free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Technique {
    /// RTL clock gating: removes spurious toggles (≈ 30 % of dynamic),
    /// costs ~2 % extra leakage in gating cells.
    ClockGating,
    /// Operand isolation on datapaths: a further ≈ 8 % dynamic cut.
    OperandIsolation,
    /// High-Vt cell swap on non-critical paths: leakage to ≈ 35 %, dynamic
    /// essentially unchanged.
    MultiVt,
    /// Sleep-transistor power gating of the idle block: gated-mode leakage
    /// residue halves, at the cost of a header (+3 % full-rail leakage)
    /// and a wake-up energy penalty (+20 % on event costs).
    PowerGating,
    /// Retention-flop sleep: state held on a low-leakage rail; improves
    /// the deep-sleep residue by a further 25 %.
    RetentionSleep,
}

impl Technique {
    /// All techniques.
    pub const ALL: [Self; 5] = [
        Self::ClockGating,
        Self::OperandIsolation,
        Self::MultiVt,
        Self::PowerGating,
        Self::RetentionSleep,
    ];

    /// Whether the technique primarily attacks dynamic power.
    #[must_use]
    pub fn targets_dynamic(self) -> bool {
        matches!(self, Self::ClockGating | Self::OperandIsolation)
    }

    /// Whether the technique primarily attacks static power.
    #[must_use]
    pub fn targets_static(self) -> bool {
        !self.targets_dynamic()
    }

    /// Applies the technique's effect model to a block.
    #[must_use]
    pub fn apply(self, model: &BlockPowerModel) -> BlockPowerModel {
        match self {
            Self::ClockGating => model
                .with_dynamic(model.dynamic().scaled(0.70))
                .with_leakage(model.leakage().scaled(1.02)),
            Self::OperandIsolation => model.with_dynamic(model.dynamic().scaled(0.92)),
            Self::MultiVt => model.with_leakage(model.leakage().scaled(0.35)),
            Self::PowerGating => {
                let off = model.mode_policy(OperatingMode::Off);
                let sleep = model.mode_policy(OperatingMode::Sleep);
                model
                    .with_leakage(model.leakage().scaled(1.03))
                    .with_mode_policy(
                        OperatingMode::Off,
                        ModePolicy::new(off.activity_scale, (off.leakage_fraction * 0.5).min(1.0)),
                    )
                    .with_mode_policy(
                        OperatingMode::Sleep,
                        ModePolicy::new(sleep.activity_scale, 0.03),
                    )
                    .with_event_costs_scaled(1.20)
            }
            Self::RetentionSleep => {
                let ds = model.mode_policy(OperatingMode::DeepSleep);
                model.with_mode_policy(
                    OperatingMode::DeepSleep,
                    ModePolicy::new(ds.activity_scale, (ds.leakage_fraction * 0.75).min(1.0)),
                )
            }
        }
    }

    /// Short identifier for reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Self::ClockGating => "clock_gating",
            Self::OperandIsolation => "operand_isolation",
            Self::MultiVt => "multi_vt",
            Self::PowerGating => "power_gating",
            Self::RetentionSleep => "retention_sleep",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How the advisor decides which power component is worth attacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The naive baseline: use the *power* split of the block in its
    /// active mode, ignoring duty cycles ("using power figures for
    /// choosing the components … may end up with a non expected energy
    /// balance", §II).
    PowerFigures,
    /// The paper's method: use the per-round *energy* split, which folds
    /// in the duty cycle and working conditions.
    DutyCycleAware,
}

/// The advisor's verdict for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The block's name.
    pub block: String,
    /// Selected techniques, in application order.
    pub techniques: Vec<Technique>,
    /// Human-readable rationale (for reports).
    pub rationale: String,
}

/// The outcome of optimizing a whole node.
#[derive(Debug, Clone)]
pub struct NodeOptimization {
    /// The optimized architecture (database rewritten, revisions bumped).
    pub architecture: Architecture,
    /// Per-block recommendations, in block-name order.
    pub recommendations: Vec<Recommendation>,
    /// Node energy per round before optimization.
    pub energy_before: Energy,
    /// Node energy per round after optimization (same speed/conditions).
    pub energy_after: Energy,
}

impl NodeOptimization {
    /// Fractional energy saving (can be negative if a policy backfires).
    #[must_use]
    pub fn saving(&self) -> f64 {
        1.0 - self.energy_after / self.energy_before
    }
}

/// Threshold above which a component's share makes it worth attacking.
const SHARE_THRESHOLD: f64 = 0.25;

/// Selects and applies optimization techniques for each block of an
/// architecture.
///
/// ```
/// use monityre_core::{EnergyAnalyzer, OptimizationAdvisor, SelectionPolicy};
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_units::Speed;
///
/// let arch = Architecture::reference();
/// let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
/// let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
/// let outcome = advisor.optimize(SelectionPolicy::DutyCycleAware).unwrap();
/// assert!(outcome.saving() > 0.0);
/// ```
#[derive(Debug)]
pub struct OptimizationAdvisor<'a> {
    analyzer: &'a EnergyAnalyzer<'a>,
    design_speed: Speed,
}

impl<'a> OptimizationAdvisor<'a> {
    /// Creates an advisor evaluating blocks at `design_speed` — typically
    /// the activation-threshold region the designer wants to improve.
    #[must_use]
    pub fn new(analyzer: &'a EnergyAnalyzer<'a>, design_speed: Speed) -> Self {
        Self {
            analyzer,
            design_speed,
        }
    }

    /// The design speed.
    #[must_use]
    pub fn design_speed(&self) -> Speed {
        self.design_speed
    }

    /// Recommends techniques for one block under the given policy.
    ///
    /// # Errors
    ///
    /// Propagates lookup/evaluation errors.
    pub fn recommend(
        &self,
        block: &str,
        policy: SelectionPolicy,
    ) -> Result<Recommendation, CoreError> {
        let energy = self.analyzer.block_energy(block, self.design_speed)?;
        let model = self.analyzer.architecture().database().block(block)?;
        let active = model.power(OperatingMode::Active, &self.analyzer.conditions());

        let (dyn_share, leak_share, basis) = match policy {
            SelectionPolicy::PowerFigures => (
                active.dynamic_fraction(),
                active.leakage_fraction(),
                "active-power split",
            ),
            SelectionPolicy::DutyCycleAware => {
                let d = energy.energy.dynamic_fraction();
                (d, 1.0 - d, "per-round energy split")
            }
        };

        let mut techniques = Vec::new();
        if dyn_share >= SHARE_THRESHOLD {
            techniques.push(Technique::ClockGating);
            techniques.push(Technique::OperandIsolation);
        }
        if leak_share >= SHARE_THRESHOLD {
            techniques.push(Technique::MultiVt);
            // Gating/retention only help blocks that actually idle.
            if energy.duty_cycle.active_fraction() < 0.999 {
                techniques.push(Technique::PowerGating);
                techniques.push(Technique::RetentionSleep);
            }
        }

        let chosen = if techniques.is_empty() {
            "no action".to_owned()
        } else {
            techniques
                .iter()
                .map(|t| t.id().to_owned())
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let rationale = format!(
            "{basis}: dynamic {:.0} %, static {:.0} %, duty cycle {} → {chosen}",
            dyn_share * 100.0,
            leak_share * 100.0,
            energy.duty_cycle,
        );

        Ok(Recommendation {
            block: block.to_owned(),
            techniques,
            rationale,
        })
    }

    /// Optimizes the whole node: recommends per block, applies every
    /// selected technique, and re-estimates ("after advanced optimizations
    /// on single functional blocks, the total power has to be re-estimated
    /// in order to evaluate the energy reduction", §II).
    ///
    /// # Errors
    ///
    /// Propagates lookup/evaluation errors.
    pub fn optimize(&self, policy: SelectionPolicy) -> Result<NodeOptimization, CoreError> {
        let before = self.analyzer.required_per_round(self.design_speed)?;
        let mut architecture = self.analyzer.architecture().clone();
        let mut recommendations = Vec::new();

        let names: Vec<String> = architecture.block_names().map(str::to_owned).collect();
        for name in names {
            let rec = self.recommend(&name, policy)?;
            let mut model = architecture.database().block(&name)?.clone();
            for technique in &rec.techniques {
                model = technique.apply(&model);
            }
            architecture = architecture.with_block_model(model)?;
            recommendations.push(rec);
        }

        let re_analyzer = EnergyAnalyzer::new(&architecture, self.analyzer.conditions())
            .with_wheel(*self.analyzer.wheel());
        let after = re_analyzer.required_per_round(self.design_speed)?;

        Ok(NodeOptimization {
            architecture,
            recommendations,
            energy_before: before,
            energy_after: after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_node::Architecture;
    use monityre_power::WorkingConditions;

    fn setup() -> (Architecture, WorkingConditions) {
        (Architecture::reference(), WorkingConditions::reference())
    }

    #[test]
    fn duty_cycle_aware_beats_naive() {
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));

        let aware = advisor.optimize(SelectionPolicy::DutyCycleAware).unwrap();
        let naive = advisor.optimize(SelectionPolicy::PowerFigures).unwrap();
        assert!(
            aware.energy_after < naive.energy_after,
            "aware {} vs naive {}",
            aware.energy_after,
            naive.energy_after
        );
        assert!(aware.saving() > 0.05, "saving {}", aware.saving());
    }

    #[test]
    fn optimization_never_inflates_reference_node() {
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
        for policy in [
            SelectionPolicy::PowerFigures,
            SelectionPolicy::DutyCycleAware,
        ] {
            let outcome = advisor.optimize(policy).unwrap();
            assert!(outcome.energy_after <= outcome.energy_before, "{policy:?}");
        }
    }

    #[test]
    fn dsp_gets_static_treatment_only_when_duty_aware() {
        // The DSP's active power is dynamic-dominated, but it idles ≈ 95 %
        // of the round — the paper's motivating case.
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));

        let naive = advisor
            .recommend("dsp", SelectionPolicy::PowerFigures)
            .unwrap();
        let aware = advisor
            .recommend("dsp", SelectionPolicy::DutyCycleAware)
            .unwrap();

        assert!(
            !naive.techniques.iter().any(|t| t.targets_static()),
            "naive policy should see a dynamic-dominated block: {naive:?}"
        );
        assert!(
            aware.techniques.iter().any(|t| t.targets_static()),
            "duty-cycle-aware policy must treat idle leakage: {aware:?}"
        );
    }

    #[test]
    fn always_active_block_not_power_gated() {
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
        let rec = advisor
            .recommend("pm", SelectionPolicy::DutyCycleAware)
            .unwrap();
        assert!(
            !rec.techniques.contains(&Technique::PowerGating),
            "pm never idles: {rec:?}"
        );
    }

    #[test]
    fn techniques_have_modelled_overheads() {
        let (arch, _) = setup();
        let dsp = arch.database().block("dsp").unwrap();
        let gated = Technique::PowerGating.apply(dsp);
        // Header costs extra full-rail leakage…
        assert!(gated.leakage().reference() > dsp.leakage().reference());
        // …but the gated-mode residue improves.
        assert!(
            gated.mode_policy(OperatingMode::Sleep).leakage_fraction
                < dsp.mode_policy(OperatingMode::Sleep).leakage_fraction
        );
    }

    #[test]
    fn clock_gating_cuts_dynamic_only() {
        let (arch, cond) = setup();
        let dsp = arch.database().block("dsp").unwrap();
        let gated = Technique::ClockGating.apply(dsp);
        let before = dsp.power(OperatingMode::Active, &cond);
        let after = gated.power(OperatingMode::Active, &cond);
        assert!(after.dynamic.approx_eq(before.dynamic * 0.7, 1e-9));
        assert!(after.leakage > before.leakage);
    }

    #[test]
    fn revisions_bumped_by_reestimation() {
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
        let outcome = advisor.optimize(SelectionPolicy::DutyCycleAware).unwrap();
        // Every block was rewritten exactly once.
        for (_, record) in outcome.architecture.database().iter() {
            assert_eq!(record.revision(), 2);
        }
    }

    #[test]
    fn recommendation_rationale_is_informative() {
        let (arch, cond) = setup();
        let analyzer = EnergyAnalyzer::new(&arch, cond);
        let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(30.0));
        let rec = advisor
            .recommend("sram", SelectionPolicy::DutyCycleAware)
            .unwrap();
        assert!(rec.rationale.contains('%'));
        assert!(rec.rationale.contains("energy split"));
    }

    #[test]
    fn technique_ids_unique() {
        let mut ids: Vec<_> = Technique::ALL.iter().map(|t| t.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Technique::ALL.len());
    }
}
