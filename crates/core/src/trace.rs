//! Instant power traces — the paper's Fig. 3.
//!
//! "Instant power consumption of the Sensor Node during a limited timing
//! window": the node's total power sampled at fine time resolution while
//! cruising, showing the per-round phase structure (acquisition plateau,
//! compute window, TX spikes every N rounds) over the leakage floor.

use monityre_units::{Duration, Energy, Power, Speed};

use crate::{CoreError, EnergyAnalyzer};

/// One sample of the instant-power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Elapsed time from the window start.
    pub time: Duration,
    /// Total node power at this instant.
    pub total: Power,
    /// Per-block contributions, aligned with
    /// [`InstantTrace::block_names`].
    pub per_block: Vec<Power>,
}

/// An instant-power trace over a limited timing window at constant speed.
///
/// Phases are laid out back-to-back from each round start, in schedule
/// order; a phase recurring every N rounds appears only in rounds whose
/// index is a multiple of N. Event energy (samples, packet bytes) is drawn
/// uniformly across each block's clocked time in the rounds where it runs,
/// so the trace's integral matches the analyzer's per-round energy.
///
/// ```
/// use monityre_core::{EnergyAnalyzer, InstantTrace};
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_units::{Duration, Speed};
///
/// let arch = Architecture::reference();
/// let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
/// let trace = InstantTrace::generate(
///     &analyzer,
///     Speed::from_kmh(60.0),
///     Duration::from_millis(500.0),
///     Duration::from_micros(100.0),
/// ).unwrap();
/// assert!(trace.peak() > trace.floor() * 100.0); // TX spikes tower over the floor
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstantTrace {
    block_names: Vec<String>,
    samples: Vec<TraceSample>,
    round_period: Duration,
    speed: Speed,
}

impl InstantTrace {
    /// Generates the trace.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] at standstill, or
    /// [`CoreError::InvalidParameter`] for a non-positive window/step.
    pub fn generate(
        analyzer: &EnergyAnalyzer<'_>,
        speed: Speed,
        window: Duration,
        step: Duration,
    ) -> Result<Self, CoreError> {
        if window.secs() <= 0.0 || !window.is_finite() {
            return Err(CoreError::invalid_parameter("window must be positive"));
        }
        if step.secs() <= 0.0 || !step.is_finite() {
            return Err(CoreError::invalid_parameter("step must be positive"));
        }
        let period = analyzer.round_period(speed)?;
        let arch = analyzer.architecture();
        let cond = analyzer.conditions();

        // Pre-resolve each block's layout once.
        struct BlockLayout {
            /// (start offset, end offset, mode, recurrence) per phase.
            phases: Vec<(f64, f64, monityre_power::OperatingMode, u32)>,
            rest_mode: monityre_power::OperatingMode,
            /// Extra power drawn during clocked phases to account for the
            /// workload event energy.
            event_power: Power,
            model: monityre_power::BlockPowerModel,
        }

        let mut names = Vec::new();
        let mut layouts = Vec::new();
        for name in arch.block_names() {
            let plan = arch.plan(name)?;
            let model = arch.database().block(name)?.clone();
            let resolved = plan.schedule().resolve(period);
            let mut offset = 0.0;
            let mut phases = Vec::with_capacity(resolved.len());
            let mut clocked_amortized = 0.0;
            for phase in &resolved {
                let start = offset;
                let end = offset + phase.duration.secs();
                phases.push((start, end, phase.mode, phase.period_rounds));
                offset = end;
                if phase.mode.is_clocked() {
                    clocked_amortized += phase.duration.secs() / f64::from(phase.period_rounds);
                }
            }
            let rest_mode = plan.schedule().rest_mode();
            if rest_mode.is_clocked() {
                clocked_amortized += (period.secs() - offset).max(0.0);
            }
            // Amortized event energy per round, spread over clocked time.
            let mut event_energy = Energy::ZERO;
            for (kind, count) in plan.workload().iter() {
                if let Some(e) = model.event_energy(kind, &cond) {
                    event_energy += e * count;
                }
            }
            let event_power = if clocked_amortized > 0.0 {
                Power::from_watts(event_energy.joules() / clocked_amortized)
            } else {
                Power::ZERO
            };
            names.push(name.to_owned());
            layouts.push(BlockLayout {
                phases,
                rest_mode,
                event_power,
                model,
            });
        }

        let n = (window.secs() / step.secs()).ceil() as usize;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = step * i as f64;
            let rounds_elapsed = t.secs() / period.secs();
            let round_index = rounds_elapsed.floor() as u64;
            let offset = (rounds_elapsed - rounds_elapsed.floor()) * period.secs();

            let mut per_block = Vec::with_capacity(layouts.len());
            let mut total = Power::ZERO;
            for layout in &layouts {
                let mut mode = layout.rest_mode;
                let mut in_clocked_phase = false;
                for &(start, end, phase_mode, recurrence) in &layout.phases {
                    let runs_this_round = round_index.is_multiple_of(u64::from(recurrence));
                    if runs_this_round && offset >= start && offset < end {
                        mode = phase_mode;
                        in_clocked_phase = phase_mode.is_clocked();
                        break;
                    }
                }
                let mut p = layout.model.power(mode, &cond).total();
                if in_clocked_phase || (layout.phases.is_empty() && mode.is_clocked()) {
                    p += layout.event_power;
                }
                per_block.push(p);
                total += p;
            }
            samples.push(TraceSample {
                time: t,
                total,
                per_block,
            });
        }

        Ok(Self {
            block_names: names,
            samples,
            round_period: period,
            speed,
        })
    }

    /// The block names aligned with [`TraceSample::per_block`].
    #[must_use]
    pub fn block_names(&self) -> &[String] {
        &self.block_names
    }

    /// The samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// The wheel-round period at the trace's speed.
    #[must_use]
    pub fn round_period(&self) -> Duration {
        self.round_period
    }

    /// The cruising speed.
    #[must_use]
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// The highest instantaneous power (the TX spike).
    #[must_use]
    pub fn peak(&self) -> Power {
        self.samples
            .iter()
            .map(|s| s.total)
            .fold(Power::ZERO, Power::max)
    }

    /// The lowest instantaneous power (the leakage + always-on floor).
    #[must_use]
    pub fn floor(&self) -> Power {
        self.samples
            .iter()
            .map(|s| s.total)
            .fold(Power::from_watts(f64::INFINITY), Power::min)
    }

    /// The time-average power of the trace.
    #[must_use]
    pub fn mean(&self) -> Power {
        if self.samples.is_empty() {
            return Power::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|s| s.total.watts()).sum();
        Power::from_watts(sum / self.samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_node::Architecture;
    use monityre_power::WorkingConditions;

    fn trace_at(kmh: f64, window_ms: f64, step_us: f64) -> InstantTrace {
        let arch = Architecture::reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        InstantTrace::generate(
            &analyzer,
            Speed::from_kmh(kmh),
            Duration::from_millis(window_ms),
            Duration::from_micros(step_us),
        )
        .unwrap()
    }

    #[test]
    fn spikes_tower_over_floor() {
        let trace = trace_at(60.0, 600.0, 50.0);
        // Radio burst ≈ 21 mW vs floor of a few µW.
        assert!(trace.peak().milliwatts() > 15.0, "peak {}", trace.peak());
        assert!(trace.floor().microwatts() < 20.0, "floor {}", trace.floor());
    }

    #[test]
    fn tx_spikes_every_fourth_round() {
        let trace = trace_at(60.0, 1000.0, 50.0);
        let period = trace.round_period().secs();
        // Count samples above 10 mW, group into bursts.
        let mut burst_times = Vec::new();
        let mut last_burst: Option<f64> = None;
        for s in trace.samples() {
            if s.total.milliwatts() > 10.0 {
                let t = s.time.secs();
                if last_burst.is_none_or(|lb| t - lb > period / 2.0) {
                    burst_times.push(t);
                }
                last_burst = Some(t);
            }
        }
        assert!(!burst_times.is_empty(), "no TX bursts found");
        for pair in burst_times.windows(2) {
            let gap = pair[1] - pair[0];
            // Bursts every 4 rounds.
            assert!((gap - 4.0 * period).abs() < period * 0.5, "gap {gap}");
        }
    }

    #[test]
    fn integral_matches_analyzer_energy() {
        let arch = Architecture::reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        let speed = Speed::from_kmh(60.0);
        let period = analyzer.round_period(speed).unwrap();
        // Exactly 4 rounds (one full TX cycle) at fine resolution.
        let window = period * 4.0;
        let step = Duration::from_micros(20.0);
        let trace = InstantTrace::generate(&analyzer, speed, window, step).unwrap();
        let integral: f64 = trace
            .samples()
            .iter()
            .map(|s| s.total.watts() * step.secs())
            .sum();
        let expected = analyzer.required_per_round(speed).unwrap().joules() * 4.0;
        let rel = (integral - expected).abs() / expected;
        assert!(rel < 0.02, "integral {integral} vs expected {expected}");
    }

    #[test]
    fn per_block_sums_to_total() {
        let trace = trace_at(80.0, 100.0, 100.0);
        for s in trace.samples() {
            let sum: Power = s.per_block.iter().copied().sum();
            assert!(sum.approx_eq(s.total, 1e-9));
        }
    }

    #[test]
    fn acquisition_plateau_visible() {
        let trace = trace_at(60.0, 114.0, 20.0);
        // Early in the round (acquisition window): afe + adc + sram active,
        // total in the hundreds of µW.
        let early = &trace.samples()[2];
        assert!(
            early.total.microwatts() > 200.0,
            "acquisition plateau missing: {}",
            early.total
        );
    }

    #[test]
    fn mean_between_floor_and_peak() {
        let trace = trace_at(90.0, 400.0, 50.0);
        assert!(trace.mean() > trace.floor());
        assert!(trace.mean() < trace.peak());
    }

    #[test]
    fn rejects_bad_parameters() {
        let arch = Architecture::reference();
        let analyzer = EnergyAnalyzer::new(&arch, WorkingConditions::reference());
        assert!(InstantTrace::generate(
            &analyzer,
            Speed::ZERO,
            Duration::from_millis(10.0),
            Duration::from_micros(10.0)
        )
        .is_err());
        assert!(InstantTrace::generate(
            &analyzer,
            Speed::from_kmh(50.0),
            Duration::ZERO,
            Duration::from_micros(10.0)
        )
        .is_err());
        assert!(InstantTrace::generate(
            &analyzer,
            Speed::from_kmh(50.0),
            Duration::from_millis(10.0),
            Duration::ZERO
        )
        .is_err());
    }
}
