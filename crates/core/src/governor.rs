//! Adaptive configuration governor.
//!
//! §II-A closes the loop by hand: "user can evaluate if the monitoring
//! system can be active during all the considered time. Otherwise, some
//! parameters should be modified in order to reach a positive energy
//! balance." This module automates that modification at run time: instead
//! of a binary on/off node, a ladder of configurations (full-rate →
//! reduced → TPMS-class) selected by the storage state of charge, so the
//! node *degrades gracefully* through deficits instead of going dark.

use monityre_harvest::Storage;
use monityre_node::{Architecture, NodeConfig};
use monityre_profile::{ProfileSampler, SpeedProfile};
use monityre_units::{Duration, Energy, Power};

use crate::{CoreError, EnergyAnalyzer, Scenario};

/// One rung of the governor's ladder.
#[derive(Debug, Clone)]
pub struct GovernorLevel {
    /// Human-readable label for reports.
    pub label: String,
    /// State of charge at (or above) which this level may run.
    pub min_soc: f64,
    /// The node configuration at this level.
    pub config: NodeConfig,
}

/// The governed emulation outcome.
#[derive(Debug, Clone)]
pub struct GovernedReport {
    /// Time spent in each level (index-aligned with the ladder), plus a
    /// final slot for "off".
    pub level_time: Vec<Duration>,
    /// Samples acquired over the whole window (the monitoring *quality*
    /// metric — what the vehicle actually received).
    pub samples_acquired: f64,
    /// Total energy harvested (post-spill).
    pub harvested: Energy,
    /// Total energy consumed.
    pub consumed: Energy,
    /// Number of level switches (thrash indicator).
    pub switches: u32,
    /// The emulated span.
    pub span: Duration,
}

impl GovernedReport {
    /// Fraction of the span with *any* monitoring running.
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        if self.span.secs() <= 0.0 {
            return 0.0;
        }
        let off = self.level_time.last().map_or(0.0, |d| d.secs());
        ((self.span.secs() - off) / self.span.secs()).clamp(0.0, 1.0)
    }
}

/// Runs a speed profile against a ladder of configurations selected by
/// the storage state of charge.
///
/// Levels must be ordered from highest to lowest `min_soc`; the governor
/// picks the *first* level whose threshold the current SoC meets, with a
/// small hysteresis band (2 % SoC) to avoid thrashing. Below every
/// threshold the node is off (standby only). The harvest chain, the
/// working conditions and the wheel all come from the [`Scenario`].
///
/// ```
/// use monityre_core::{Governor, Scenario};
/// use monityre_harvest::Supercap;
/// use monityre_profile::ConstantProfile;
/// use monityre_units::{Duration, Speed};
///
/// let governor = Governor::reference_ladder(&Scenario::reference());
/// let cruise = ConstantProfile::new(Speed::from_kmh(90.0), Duration::from_mins(2.0));
/// let mut storage = Supercap::reference();
/// let report = governor.run(&cruise, &mut storage).unwrap();
/// assert!(report.active_fraction() > 0.9);
/// ```
#[derive(Debug)]
pub struct Governor {
    scenario: Scenario,
    levels: Vec<GovernorLevel>,
    architectures: Vec<Architecture>,
    step: Duration,
    hysteresis: f64,
}

impl Governor {
    /// Builds a governor from a ladder of levels over one scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the ladder is empty,
    /// thresholds are outside `[0, 1]`, or not strictly decreasing.
    pub fn new(scenario: &Scenario, levels: Vec<GovernorLevel>) -> Result<Self, CoreError> {
        if levels.is_empty() {
            return Err(CoreError::invalid_parameter("governor needs >= 1 level"));
        }
        for level in &levels {
            if !(0.0..=1.0).contains(&level.min_soc) {
                return Err(CoreError::invalid_parameter(
                    "level thresholds must lie in [0, 1]",
                ));
            }
        }
        if levels.windows(2).any(|w| w[0].min_soc <= w[1].min_soc) {
            return Err(CoreError::invalid_parameter(
                "level thresholds must be strictly decreasing",
            ));
        }
        let architectures = levels
            .iter()
            .map(|l| Architecture::from_config(l.config))
            .collect();
        Ok(Self {
            scenario: scenario.clone(),
            levels,
            architectures,
            step: Duration::from_millis(10.0),
            hysteresis: 0.02,
        })
    }

    /// The reference three-rung ladder: full-rate above 50 % SoC, the
    /// reference configuration above 30 %, a TPMS-class trickle above
    /// 12 %, off below.
    ///
    /// # Panics
    ///
    /// Never panics: the reference ladder is statically valid.
    #[must_use]
    pub fn reference_ladder(scenario: &Scenario) -> Self {
        Self::new(
            scenario,
            vec![
                GovernorLevel {
                    label: "full-rate".to_owned(),
                    min_soc: 0.50,
                    config: NodeConfig::reference()
                        .with_samples_per_round(512)
                        .with_tx_period_rounds(2),
                },
                GovernorLevel {
                    label: "reference".to_owned(),
                    min_soc: 0.30,
                    config: NodeConfig::reference(),
                },
                GovernorLevel {
                    label: "tpms-class".to_owned(),
                    min_soc: 0.12,
                    config: NodeConfig::reference()
                        .with_samples_per_round(32)
                        .with_tx_period_rounds(16)
                        .with_acquisition_fraction(0.03),
                },
            ],
        )
        .expect("reference ladder is valid")
    }

    /// The ladder's levels.
    #[must_use]
    pub fn levels(&self) -> &[GovernorLevel] {
        &self.levels
    }

    /// The evaluation session the governor runs in.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs the governed emulation.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn run<S: Storage>(
        &self,
        profile: &dyn SpeedProfile,
        storage: &mut S,
    ) -> Result<GovernedReport, CoreError> {
        let chain = self.scenario.chain();
        let conditions = self.scenario.conditions();
        let analyzers: Vec<EnergyAnalyzer<'_>> = self
            .architectures
            .iter()
            .map(|a| EnergyAnalyzer::new(a, conditions).with_wheel(*self.scenario.wheel()))
            .collect();
        let off_index = self.levels.len();
        let mut level_time = vec![Duration::ZERO; off_index + 1];
        let mut samples_acquired = 0.0f64;
        let mut harvested = Energy::ZERO;
        let mut consumed = Energy::ZERO;
        let mut switches = 0u32;
        let mut current: usize = off_index;

        for sample in ProfileSampler::new(profile, self.step) {
            let v = sample.speed;
            let dt = sample.step;

            // Supply.
            let inflow = chain.delivered_power(v) * dt;
            if inflow > Energy::ZERO {
                let spill = storage.deposit(inflow);
                harvested += inflow - spill;
            }
            storage.self_discharge(dt);

            // Level selection with hysteresis: moving *up* requires the
            // threshold plus the band; staying only the threshold.
            let soc = storage.state_of_charge();
            let mut selected = off_index;
            for (i, level) in self.levels.iter().enumerate() {
                let needed = if i < current {
                    level.min_soc + self.hysteresis
                } else {
                    level.min_soc
                };
                if soc >= needed {
                    selected = i;
                    break;
                }
            }
            if selected != current {
                switches += 1;
                current = selected;
            }

            // Demand at the selected level.
            let (power, rate): (Power, f64) = if current < off_index && v.mps() > 0.0 {
                let analyzer = &analyzers[current];
                let p = analyzer
                    .average_power(v)
                    .unwrap_or_else(|_| analyzer.standby_power());
                let rounds_per_sec = chain.wheel().rounds_per_second(v).hertz();
                let samples_per_sec =
                    f64::from(self.levels[current].config.samples_per_round()) * rounds_per_sec;
                (p, samples_per_sec)
            } else if current < off_index {
                (analyzers[current].standby_power(), 0.0)
            } else {
                (analyzers[0].standby_power(), 0.0)
            };

            let demand = power * dt;
            match storage.withdraw(demand) {
                Ok(()) => {
                    consumed += demand;
                    samples_acquired += rate * dt.secs();
                }
                Err(e) => {
                    let available = demand - e.shortfall();
                    if available > Energy::ZERO && storage.withdraw(available).is_ok() {
                        consumed += available;
                    }
                    if current != off_index {
                        switches += 1;
                        current = off_index;
                    }
                }
            }
            level_time[current] += dt;
        }

        Ok(GovernedReport {
            level_time,
            samples_acquired,
            harvested,
            consumed,
            switches,
            span: profile.duration(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monityre_harvest::Supercap;
    use monityre_profile::{CompositeProfile, ConstantProfile, UrbanCycle, WltcLikeCycle};
    use monityre_units::Speed;

    fn fixture() -> Governor {
        Governor::reference_ladder(&Scenario::reference())
    }

    #[test]
    fn highway_runs_full_rate() {
        let governor = fixture();
        let cruise = ConstantProfile::new(Speed::from_kmh(120.0), Duration::from_mins(5.0));
        let mut storage = Supercap::reference();
        let report = governor.run(&cruise, &mut storage).unwrap();
        // Starts at 50 % SoC: full-rate from the first step, surplus keeps
        // it there.
        let full = report.level_time[0].secs();
        assert!(full / report.span.secs() > 0.9, "full-rate share {full}");
        assert!(report.active_fraction() > 0.99);
    }

    #[test]
    fn crawl_degrades_instead_of_dying() {
        let governor = fixture();
        // 12 km/h: deep deficit for full-rate, near break-even for the
        // TPMS-class trickle.
        let crawl = ConstantProfile::new(Speed::from_kmh(12.0), Duration::from_mins(40.0));
        let mut storage = Supercap::reference();
        let report = governor.run(&crawl, &mut storage).unwrap();
        // The node must pass through the lower rungs.
        assert!(
            report.level_time[2].secs() > 60.0,
            "tpms time {:?}",
            report.level_time
        );
        // And keep acquiring *some* samples late in the window.
        assert!(report.samples_acquired > 0.0);
    }

    #[test]
    fn governed_node_outlives_static_full_rate() {
        // Static full-rate on an urban crawl dies; the governed ladder
        // keeps monitoring (at reduced quality) for longer.
        let governor = fixture();
        let trip = CompositeProfile::new(vec![
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
            Box::new(UrbanCycle::new()),
        ]);

        let mut governed_storage = Supercap::reference();
        let governed = governor.run(&trip, &mut governed_storage).unwrap();

        let static_full = Governor::new(
            &Scenario::reference(),
            vec![GovernorLevel {
                label: "full-rate-only".to_owned(),
                min_soc: 0.15,
                config: NodeConfig::reference()
                    .with_samples_per_round(512)
                    .with_tx_period_rounds(2),
            }],
        )
        .unwrap();
        let mut static_storage = Supercap::reference();
        let static_report = static_full.run(&trip, &mut static_storage).unwrap();

        assert!(
            governed.active_fraction() >= static_report.active_fraction(),
            "governed {} vs static {}",
            governed.active_fraction(),
            static_report.active_fraction()
        );
    }

    #[test]
    fn wltc_mix_visits_multiple_levels() {
        let governor = fixture();
        let mut storage = Supercap::reference();
        let report = governor.run(&WltcLikeCycle::new(), &mut storage).unwrap();
        let visited = report
            .level_time
            .iter()
            .take(governor.levels().len())
            .filter(|d| d.secs() > 1.0)
            .count();
        assert!(visited >= 2, "level times {:?}", report.level_time);
        assert!(report.switches > 0);
    }

    #[test]
    fn level_times_tile_the_span() {
        let governor = fixture();
        let cruise = ConstantProfile::new(Speed::from_kmh(60.0), Duration::from_mins(3.0));
        let mut storage = Supercap::reference();
        let report = governor.run(&cruise, &mut storage).unwrap();
        let total: f64 = report.level_time.iter().map(|d| d.secs()).sum();
        assert!((total - report.span.secs()).abs() < 1e-6);
    }

    #[test]
    fn ladder_validation() {
        let scenario = Scenario::reference();
        assert!(Governor::new(&scenario, vec![]).is_err());
        let unordered = vec![
            GovernorLevel {
                label: "a".into(),
                min_soc: 0.3,
                config: NodeConfig::reference(),
            },
            GovernorLevel {
                label: "b".into(),
                min_soc: 0.5,
                config: NodeConfig::reference(),
            },
        ];
        assert!(Governor::new(&scenario, unordered).is_err());
        let bad_threshold = vec![GovernorLevel {
            label: "a".into(),
            min_soc: 1.5,
            config: NodeConfig::reference(),
        }];
        assert!(Governor::new(&scenario, bad_threshold).is_err());
    }
}
