//! The energy workbook: the spreadsheet *computing* the energy analysis.
//!
//! §II-A: "This spreadsheet also estimates the power and energy
//! consumption of the Sensor Node under different working and operating
//! conditions." [`crate::EnergyAnalyzer`] computes per-round energy in
//! Rust; this module generates a live [`monityre_sheet::Sheet`] whose
//! *formulas* carry the same computation — round period from speed, phase
//! durations from the schedules (with the same truncation semantics),
//! amortization over recurrence periods, workload event energy, and the
//! whole-node total. Editing the speed cell re-derives everything through
//! the dependency engine, and the tests pin the workbook to the analyzer
//! bit-for-bit (within float tolerance).

use std::fmt::Write as _;

use monityre_node::Architecture;
use monityre_power::WorkingConditions;
use monityre_profile::Wheel;
use monityre_sheet::Sheet;
use monityre_units::{Energy, Speed};

use crate::{CoreError, ScenarioExtras};

/// A generated spreadsheet that evaluates a node's energy per wheel round.
///
/// ```
/// use monityre_core::EnergyWorkbook;
/// use monityre_node::Architecture;
/// use monityre_power::WorkingConditions;
/// use monityre_profile::Wheel;
/// use monityre_units::Speed;
///
/// let arch = Architecture::reference();
/// let mut workbook = EnergyWorkbook::build(
///     &arch,
///     WorkingConditions::reference(),
///     &Wheel::reference(),
///     Speed::from_kmh(60.0),
/// ).unwrap();
/// let at60 = workbook.node_energy().unwrap();
/// workbook.set_speed(Speed::from_kmh(30.0)).unwrap();
/// let at30 = workbook.node_energy().unwrap();
/// assert!(at30 > at60); // longer rounds leak more
/// ```
#[derive(Debug)]
pub struct EnergyWorkbook {
    sheet: Sheet,
    block_names: Vec<String>,
}

impl EnergyWorkbook {
    /// Generates the workbook for an architecture at fixed working
    /// conditions on a given wheel, primed at `speed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for a non-positive speed or (unreachable for
    /// valid architectures) a sheet-construction failure.
    pub fn build(
        architecture: &Architecture,
        conditions: WorkingConditions,
        wheel: &Wheel,
        speed: Speed,
    ) -> Result<Self, CoreError> {
        Self::build_with_extras(architecture, conditions, wheel, speed, None)
    }

    /// Like [`EnergyWorkbook::build`], but also materializes the extended
    /// physics axes (radio retransmission, storage ageing) as live cells:
    /// `extras.radio_uj` (per-round retransmission energy, constant),
    /// `extras.ageing_uw` (extra leakage power), and `extras.energy_uj`
    /// (their per-round total, re-derived through `round.period_s` on
    /// every speed edit) — folded into `node.energy_uj`. Passing `None`
    /// (or vacuous extras) generates exactly the base workbook.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for a non-positive speed or (unreachable for
    /// valid architectures) a sheet-construction failure.
    pub fn build_with_extras(
        architecture: &Architecture,
        conditions: WorkingConditions,
        wheel: &Wheel,
        speed: Speed,
        extras: Option<&ScenarioExtras>,
    ) -> Result<Self, CoreError> {
        if speed.mps() <= 0.0 || !speed.is_finite() {
            return Err(CoreError::round_undefined(speed.kmh()));
        }
        let mut sheet = Sheet::new();
        let sh = |e: monityre_sheet::SheetError| {
            CoreError::invalid_parameter(format!("workbook generation: {e}"))
        };

        // Inputs.
        sheet.set_number("in.speed_kmh", speed.kmh()).map_err(sh)?;
        sheet
            .set_number("in.circumference_m", wheel.rolling_circumference().metres())
            .map_err(sh)?;
        // Round period in seconds: circumference / (speed in m/s).
        sheet
            .set_formula(
                "round.period_s",
                "in.circumference_m / (in.speed_kmh / 3.6)",
            )
            .map_err(sh)?;

        let mut block_names = Vec::new();
        let mut total_terms = Vec::new();
        for name in architecture.block_names() {
            let plan = architecture.plan(name)?;
            let model = architecture.database().block(name)?;
            let rest_mode = plan.schedule().rest_mode();
            let rest_power = model.power(rest_mode, &conditions).total();
            sheet
                .set_number(&format!("{name}.rest_uw"), rest_power.microwatts())
                .map_err(sh)?;

            // Phase chain with the same truncation semantics as
            // RoundSchedule::resolve: a remaining-time chain for all spans
            // and a fraction budget reduced by fixed takes.
            sheet
                .set_formula(&format!("{name}.rem0"), "round.period_s * 1")
                .map_err(sh)?;
            sheet
                .set_formula(&format!("{name}.fb0"), "round.period_s * 1")
                .map_err(sh)?;
            let mut delta_terms = Vec::new();
            for (i, phase) in plan.schedule().phases().iter().enumerate() {
                let power = model.power(phase.mode, &conditions).total();
                sheet
                    .set_number(&format!("{name}.phase{i}_uw"), power.microwatts())
                    .map_err(sh)?;
                let want = match phase.span {
                    monityre_node::Span::Fixed(d) => {
                        // Fixed spans are independently capped at the period.
                        format!("min({}, round.period_s)", d.secs())
                    }
                    monityre_node::Span::Fraction(f) => {
                        format!("{f} * max({name}.fb{i}, 0)")
                    }
                };
                sheet
                    .set_formula(
                        &format!("{name}.dur{i}_s"),
                        &format!("min({want}, max({name}.rem{i}, 0))"),
                    )
                    .map_err(sh)?;
                sheet
                    .set_formula(
                        &format!("{name}.rem{next}", next = i + 1),
                        &format!("{name}.rem{i} - {name}.dur{i}_s"),
                    )
                    .map_err(sh)?;
                let fb_next = match phase.span {
                    monityre_node::Span::Fixed(_) => {
                        format!("{name}.fb{i} - {name}.dur{i}_s")
                    }
                    monityre_node::Span::Fraction(_) => format!("{name}.fb{i} * 1"),
                };
                sheet
                    .set_formula(&format!("{name}.fb{next}", next = i + 1), &fb_next)
                    .map_err(sh)?;
                // Amortized delta energy over the rest-mode baseline, in µJ
                // (µW × s = µJ).
                sheet
                    .set_formula(
                        &format!("{name}.e_phase{i}_uj"),
                        &format!(
                            "({name}.phase{i}_uw - {name}.rest_uw) * {name}.dur{i}_s / {n}",
                            n = phase.period_rounds
                        ),
                    )
                    .map_err(sh)?;
                delta_terms.push(format!("{name}.e_phase{i}_uj"));
            }

            // Event energy: counts × per-event cost at the conditions.
            let mut event_terms = Vec::new();
            for (kind, count) in plan.workload().iter() {
                if let Some(per_event) = model.event_energy(kind, &conditions) {
                    let id = kind.id();
                    sheet
                        .set_number(&format!("{name}.ev_{id}_count"), count)
                        .map_err(sh)?;
                    sheet
                        .set_number(&format!("{name}.ev_{id}_nj"), per_event.nanojoules())
                        .map_err(sh)?;
                    sheet
                        .set_formula(
                            &format!("{name}.ev_{id}_uj"),
                            &format!("{name}.ev_{id}_count * {name}.ev_{id}_nj / 1000"),
                        )
                        .map_err(sh)?;
                    event_terms.push(format!("{name}.ev_{id}_uj"));
                }
            }

            // Block total: rest power over the full round plus phase deltas
            // plus event energy.
            let mut expr = format!("{name}.rest_uw * round.period_s");
            for term in &delta_terms {
                let _ = write!(expr, " + {term}");
            }
            for term in &event_terms {
                let _ = write!(expr, " + {term}");
            }
            sheet
                .set_formula(&format!("{name}.energy_uj"), &expr)
                .map_err(sh)?;
            total_terms.push(format!("{name}.energy_uj"));
            block_names.push(name.to_owned());
        }

        if let Some(extras) = extras.filter(|e| !e.is_vacuous()) {
            let radio_uj = extras
                .radio()
                .map_or(0.0, |r| r.retransmission_energy_per_round().microjoules());
            let ageing_uw = extras.ageing().map_or(0.0, |a| {
                (a.aged_leakage(conditions.temperature()).microwatts())
                    - a.fresh_leakage().microwatts()
            });
            sheet.set_number("extras.radio_uj", radio_uj).map_err(sh)?;
            sheet
                .set_number("extras.ageing_uw", ageing_uw)
                .map_err(sh)?;
            sheet
                .set_formula(
                    "extras.energy_uj",
                    "extras.radio_uj + extras.ageing_uw * round.period_s",
                )
                .map_err(sh)?;
            total_terms.push("extras.energy_uj".to_owned());
        }

        sheet
            .set_formula(
                "node.energy_uj",
                &format!("sum({})", total_terms.join(", ")),
            )
            .map_err(sh)?;

        Ok(Self { sheet, block_names })
    }

    /// Re-primes the speed cell; every derived cell recomputes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundUndefined`] for non-positive speeds.
    pub fn set_speed(&mut self, speed: Speed) -> Result<(), CoreError> {
        if speed.mps() <= 0.0 || !speed.is_finite() {
            return Err(CoreError::round_undefined(speed.kmh()));
        }
        self.sheet
            .set_number("in.speed_kmh", speed.kmh())
            .map_err(|e| CoreError::invalid_parameter(format!("speed edit: {e}")))
    }

    /// The node's energy per wheel round according to the formulas.
    ///
    /// # Errors
    ///
    /// Propagates missing-cell failures (unreachable after `build`).
    pub fn node_energy(&self) -> Result<Energy, CoreError> {
        let uj = self
            .sheet
            .value("node.energy_uj")
            .map_err(|e| CoreError::invalid_parameter(format!("workbook read: {e}")))?;
        Ok(Energy::from_micros(uj))
    }

    /// One block's energy per round according to the formulas.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown blocks.
    pub fn block_energy(&self, name: &str) -> Result<Energy, CoreError> {
        let uj = self
            .sheet
            .value(&format!("{name}.energy_uj"))
            .map_err(|e| CoreError::invalid_parameter(format!("workbook read: {e}")))?;
        Ok(Energy::from_micros(uj))
    }

    /// The hosted sheet (inspection, `explain`, custom cells).
    #[must_use]
    pub fn sheet(&self) -> &Sheet {
        &self.sheet
    }

    /// The block names carried by the workbook.
    #[must_use]
    pub fn block_names(&self) -> &[String] {
        &self.block_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyAnalyzer;
    use monityre_node::NodeConfig;
    use monityre_units::Temperature;

    fn equivalence_at(
        config: NodeConfig,
        conditions: WorkingConditions,
        kmh: f64,
    ) -> (Energy, Energy) {
        let arch = Architecture::from_config(config);
        let wheel = Wheel::reference();
        let speed = Speed::from_kmh(kmh);
        let analyzer = EnergyAnalyzer::new(&arch, conditions).with_wheel(wheel);
        let expected = analyzer.required_per_round(speed).unwrap();
        let workbook = EnergyWorkbook::build(&arch, conditions, &wheel, speed).unwrap();
        (workbook.node_energy().unwrap(), expected)
    }

    #[test]
    fn workbook_matches_analyzer_at_reference() {
        for kmh in [10.0, 30.0, 60.0, 120.0, 200.0] {
            let (got, expected) =
                equivalence_at(NodeConfig::reference(), WorkingConditions::reference(), kmh);
            assert!(
                got.approx_eq(expected, 1e-9),
                "at {kmh} km/h: workbook {got} vs analyzer {expected}"
            );
        }
    }

    #[test]
    fn workbook_matches_analyzer_when_hot() {
        let cond = WorkingConditions::reference().with_temperature(Temperature::from_celsius(85.0));
        let (got, expected) = equivalence_at(NodeConfig::reference(), cond, 45.0);
        assert!(got.approx_eq(expected, 1e-9), "{got} vs {expected}");
    }

    #[test]
    fn workbook_matches_analyzer_for_custom_configs() {
        let configs = [
            NodeConfig::reference()
                .with_samples_per_round(512)
                .with_tx_period_rounds(1),
            NodeConfig::reference()
                .with_samples_per_round(32)
                .with_tx_period_rounds(16)
                .with_acquisition_fraction(0.03),
        ];
        for config in configs {
            let (got, expected) = equivalence_at(config, WorkingConditions::reference(), 50.0);
            assert!(got.approx_eq(expected, 1e-9), "{got} vs {expected}");
        }
    }

    #[test]
    fn workbook_matches_analyzer_under_truncation() {
        // At very high speed the round is shorter than the DSP's fixed
        // compute window — the truncation semantics must agree too.
        let config = NodeConfig::reference();
        let arch = Architecture::from_config(config);
        let wheel = Wheel::reference();
        // 5 ms compute vs round period: push to an artificial 2000 km/h
        // (period ≈ 3.4 ms) to force truncation of fixed spans — the model
        // is speed-agnostic, only the maths is exercised.
        let speed = Speed::from_kmh(2000.0);
        let cond = WorkingConditions::reference();
        let analyzer = EnergyAnalyzer::new(&arch, cond).with_wheel(wheel);
        let expected = analyzer.required_per_round(speed).unwrap();
        let workbook = EnergyWorkbook::build(&arch, cond, &wheel, speed).unwrap();
        let got = workbook.node_energy().unwrap();
        assert!(got.approx_eq(expected, 1e-9), "{got} vs {expected}");
    }

    #[test]
    fn speed_edit_recomputes_live() {
        let arch = Architecture::reference();
        let wheel = Wheel::reference();
        let cond = WorkingConditions::reference();
        let mut workbook =
            EnergyWorkbook::build(&arch, cond, &wheel, Speed::from_kmh(60.0)).unwrap();
        let analyzer = EnergyAnalyzer::new(&arch, cond).with_wheel(wheel);
        for kmh in [15.0, 42.0, 88.0, 170.0] {
            workbook.set_speed(Speed::from_kmh(kmh)).unwrap();
            let expected = analyzer.required_per_round(Speed::from_kmh(kmh)).unwrap();
            let got = workbook.node_energy().unwrap();
            assert!(
                got.approx_eq(expected, 1e-9),
                "at {kmh}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn per_block_cells_sum_to_total() {
        let arch = Architecture::reference();
        let wheel = Wheel::reference();
        let workbook = EnergyWorkbook::build(
            &arch,
            WorkingConditions::reference(),
            &wheel,
            Speed::from_kmh(60.0),
        )
        .unwrap();
        let sum: f64 = workbook
            .block_names()
            .iter()
            .map(|n| workbook.block_energy(n).unwrap().microjoules())
            .sum();
        let total = workbook.node_energy().unwrap().microjoules();
        assert!((sum - total).abs() < 1e-9);
    }

    #[test]
    fn rejects_standstill() {
        let arch = Architecture::reference();
        let wheel = Wheel::reference();
        assert!(
            EnergyWorkbook::build(&arch, WorkingConditions::reference(), &wheel, Speed::ZERO)
                .is_err()
        );
        let mut workbook = EnergyWorkbook::build(
            &arch,
            WorkingConditions::reference(),
            &wheel,
            Speed::from_kmh(50.0),
        )
        .unwrap();
        assert!(workbook.set_speed(Speed::ZERO).is_err());
    }

    #[test]
    fn extras_cells_match_the_balance_point() {
        use crate::{EnergyBalance, RadioLink, Scenario, StorageAgeing};

        let extras = ScenarioExtras::none()
            .with_radio(RadioLink::new(0.2, 5))
            .with_ageing(StorageAgeing::new(6.0));
        let scenario = Scenario::builder().extras(extras.clone()).build();
        let balance = EnergyBalance::new(&scenario).unwrap();
        let mut workbook = EnergyWorkbook::build_with_extras(
            scenario.architecture(),
            scenario.conditions(),
            scenario.wheel(),
            Speed::from_kmh(60.0),
            Some(&extras),
        )
        .unwrap();
        for kmh in [20.0, 60.0, 140.0] {
            workbook.set_speed(Speed::from_kmh(kmh)).unwrap();
            let expected = balance.point(Speed::from_kmh(kmh)).unwrap().required;
            let got = workbook.node_energy().unwrap();
            assert!(
                got.approx_eq(expected, 1e-9),
                "at {kmh} km/h: workbook {got} vs balance {expected}"
            );
        }
    }

    #[test]
    fn vacuous_extras_add_no_cells() {
        let arch = Architecture::reference();
        let wheel = Wheel::reference();
        let extras = ScenarioExtras::none();
        let workbook = EnergyWorkbook::build_with_extras(
            &arch,
            WorkingConditions::reference(),
            &wheel,
            Speed::from_kmh(60.0),
            Some(&extras),
        )
        .unwrap();
        assert!(workbook.sheet().value("extras.energy_uj").is_err());
        let base = EnergyWorkbook::build(
            &arch,
            WorkingConditions::reference(),
            &wheel,
            Speed::from_kmh(60.0),
        )
        .unwrap();
        assert_eq!(workbook.node_energy().unwrap(), base.node_energy().unwrap());
    }

    #[test]
    fn explain_traces_the_energy_formula() {
        let arch = Architecture::reference();
        let wheel = Wheel::reference();
        let workbook = EnergyWorkbook::build(
            &arch,
            WorkingConditions::reference(),
            &wheel,
            Speed::from_kmh(60.0),
        )
        .unwrap();
        let text = workbook.sheet().explain("node.energy_uj").unwrap();
        assert!(text.contains("dsp.energy_uj"));
        assert!(text.contains("round.period_s"));
    }
}
