//! Synthetic driving cycles and profile combinators.
//!
//! The cycles are *NEDC-inspired*: the elementary urban cycle (ECE-15
//! shape: three stop-start humps to 15/32/50 km/h) and an extra-urban
//! segment reaching 120 km/h. They are not certified regulatory traces —
//! they reproduce the stop/cruise/accelerate texture that exercises the
//! Sensor Node's activation threshold in the long-window emulation.

use monityre_units::{Duration, Speed};

use crate::{PiecewiseProfile, ProfileError, SpeedProfile};

fn kmh(v: f64) -> Speed {
    Speed::from_kmh(v)
}

fn at(t: f64) -> Duration {
    Duration::from_secs(t)
}

/// An ECE-15-style elementary urban cycle (~195 s): three accelerate /
/// cruise / brake / idle humps peaking at 15, 32 and 50 km/h.
///
/// ```
/// use monityre_profile::{SpeedProfile, UrbanCycle};
/// use monityre_units::Duration;
///
/// let cycle = UrbanCycle::new();
/// assert!((cycle.duration().secs() - 195.0).abs() < 1e-9);
/// assert_eq!(cycle.speed_at(Duration::ZERO).kmh(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UrbanCycle {
    inner: PiecewiseProfile,
}

impl UrbanCycle {
    /// Builds the cycle.
    #[must_use]
    pub fn new() -> Self {
        let points = vec![
            (at(0.0), kmh(0.0)),
            (at(11.0), kmh(0.0)),  // initial idle
            (at(15.0), kmh(15.0)), // hump 1: accelerate
            (at(23.0), kmh(15.0)), // cruise
            (at(28.0), kmh(0.0)),  // brake
            (at(49.0), kmh(0.0)),  // idle
            (at(61.0), kmh(32.0)), // hump 2
            (at(85.0), kmh(32.0)),
            (at(96.0), kmh(0.0)),
            (at(117.0), kmh(0.0)),
            (at(143.0), kmh(50.0)), // hump 3
            (at(155.0), kmh(50.0)),
            (at(163.0), kmh(35.0)),
            (at(176.0), kmh(35.0)),
            (at(188.0), kmh(0.0)),
            (at(195.0), kmh(0.0)),
        ];
        Self {
            inner: PiecewiseProfile::new(points).expect("urban breakpoints are valid"),
        }
    }
}

impl Default for UrbanCycle {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeedProfile for UrbanCycle {
    fn speed_at(&self, t: Duration) -> Speed {
        self.inner.speed_at(t)
    }

    fn duration(&self) -> Duration {
        self.inner.duration()
    }
}

/// An EUDC-style extra-urban segment (~400 s) climbing through 70, 100 and
/// 120 km/h plateaus before braking to rest.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraUrbanCycle {
    inner: PiecewiseProfile,
}

impl ExtraUrbanCycle {
    /// Builds the cycle.
    #[must_use]
    pub fn new() -> Self {
        let points = vec![
            (at(0.0), kmh(0.0)),
            (at(20.0), kmh(0.0)),
            (at(61.0), kmh(70.0)),
            (at(111.0), kmh(70.0)),
            (at(119.0), kmh(50.0)),
            (at(188.0), kmh(50.0)),
            (at(201.0), kmh(70.0)),
            (at(251.0), kmh(70.0)),
            (at(286.0), kmh(100.0)),
            (at(316.0), kmh(100.0)),
            (at(336.0), kmh(120.0)),
            (at(346.0), kmh(120.0)),
            (at(380.0), kmh(0.0)),
            (at(400.0), kmh(0.0)),
        ];
        Self {
            inner: PiecewiseProfile::new(points).expect("extra-urban breakpoints are valid"),
        }
    }
}

impl Default for ExtraUrbanCycle {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeedProfile for ExtraUrbanCycle {
    fn speed_at(&self, t: Duration) -> Speed {
        self.inner.speed_at(t)
    }

    fn duration(&self) -> Duration {
        self.inner.duration()
    }
}

/// A steady motorway leg: ramp up to a cruise speed, hold, ramp down.
#[derive(Debug, Clone, PartialEq)]
pub struct MotorwayCycle {
    inner: PiecewiseProfile,
}

impl MotorwayCycle {
    /// Builds a motorway leg cruising at `cruise` for `hold` seconds with
    /// 30 s entry/exit ramps.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidBreakpoints`] when `hold` is
    /// non-positive or `cruise` is negative.
    pub fn new(cruise: Speed, hold: Duration) -> Result<Self, ProfileError> {
        if hold.secs() <= 0.0 {
            return Err(ProfileError::invalid_breakpoints("hold must be positive"));
        }
        if cruise.is_negative() {
            return Err(ProfileError::invalid_breakpoints(
                "cruise speed must be non-negative",
            ));
        }
        let ramp = 30.0;
        let points = vec![
            (at(0.0), kmh(0.0)),
            (at(ramp), cruise),
            (at(ramp + hold.secs()), cruise),
            (at(2.0 * ramp + hold.secs()), kmh(0.0)),
        ];
        Ok(Self {
            inner: PiecewiseProfile::new(points)?,
        })
    }
}

impl SpeedProfile for MotorwayCycle {
    fn speed_at(&self, t: Duration) -> Speed {
        self.inner.speed_at(t)
    }

    fn duration(&self) -> Duration {
        self.inner.duration()
    }
}

/// A WLTC-class-3-inspired cycle (~1800 s): four phases — low, medium,
/// high and extra-high — with more frequent speed changes than the
/// NEDC-style cycles and a 131 km/h extra-high peak. Like the other
/// cycles it is an *inspired* trace, not the certified one: it reproduces
/// the phase structure and dynamics that stress the activation threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct WltcLikeCycle {
    inner: PiecewiseProfile,
}

impl WltcLikeCycle {
    /// Builds the cycle.
    #[must_use]
    pub fn new() -> Self {
        let points = vec![
            // Phase 1 — low (0–589 s): stop-and-go, peak ≈ 56 km/h.
            (at(0.0), kmh(0.0)),
            (at(11.0), kmh(0.0)),
            (at(26.0), kmh(35.0)),
            (at(45.0), kmh(20.0)),
            (at(65.0), kmh(45.0)),
            (at(95.0), kmh(10.0)),
            (at(115.0), kmh(0.0)),
            (at(140.0), kmh(0.0)),
            (at(165.0), kmh(50.0)),
            (at(200.0), kmh(56.0)),
            (at(235.0), kmh(25.0)),
            (at(265.0), kmh(40.0)),
            (at(300.0), kmh(0.0)),
            (at(330.0), kmh(0.0)),
            (at(360.0), kmh(45.0)),
            (at(410.0), kmh(30.0)),
            (at(450.0), kmh(52.0)),
            (at(500.0), kmh(15.0)),
            (at(540.0), kmh(30.0)),
            (at(575.0), kmh(0.0)),
            (at(589.0), kmh(0.0)),
            // Phase 2 — medium (589–1022 s): peak ≈ 76 km/h.
            (at(620.0), kmh(45.0)),
            (at(660.0), kmh(60.0)),
            (at(700.0), kmh(40.0)),
            (at(740.0), kmh(70.0)),
            (at(790.0), kmh(76.0)),
            (at(840.0), kmh(55.0)),
            (at(880.0), kmh(65.0)),
            (at(930.0), kmh(30.0)),
            (at(970.0), kmh(50.0)),
            (at(1005.0), kmh(0.0)),
            (at(1022.0), kmh(0.0)),
            // Phase 3 — high (1022–1477 s): peak ≈ 97 km/h.
            (at(1060.0), kmh(60.0)),
            (at(1110.0), kmh(80.0)),
            (at(1160.0), kmh(65.0)),
            (at(1210.0), kmh(97.0)),
            (at(1270.0), kmh(85.0)),
            (at(1330.0), kmh(92.0)),
            (at(1390.0), kmh(60.0)),
            (at(1440.0), kmh(30.0)),
            (at(1465.0), kmh(0.0)),
            (at(1477.0), kmh(0.0)),
            // Phase 4 — extra-high (1477–1800 s): peak ≈ 131 km/h.
            (at(1520.0), kmh(80.0)),
            (at(1570.0), kmh(110.0)),
            (at(1620.0), kmh(95.0)),
            (at(1680.0), kmh(131.0)),
            (at(1730.0), kmh(125.0)),
            (at(1775.0), kmh(40.0)),
            (at(1795.0), kmh(0.0)),
            (at(1800.0), kmh(0.0)),
        ];
        Self {
            inner: PiecewiseProfile::new(points).expect("wltc-like breakpoints are valid"),
        }
    }
}

impl Default for WltcLikeCycle {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeedProfile for WltcLikeCycle {
    fn speed_at(&self, t: Duration) -> Speed {
        self.inner.speed_at(t)
    }

    fn duration(&self) -> Duration {
        self.inner.duration()
    }
}

/// Concatenates profiles back to back.
///
/// ```
/// use monityre_profile::{CompositeProfile, ConstantProfile, SpeedProfile};
/// use monityre_units::{Duration, Speed};
///
/// let trip = CompositeProfile::new(vec![
///     Box::new(ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_mins(1.0))),
///     Box::new(ConstantProfile::new(Speed::from_kmh(90.0), Duration::from_mins(2.0))),
/// ]);
/// assert!((trip.duration().mins() - 3.0).abs() < 1e-12);
/// assert_eq!(trip.speed_at(Duration::from_secs(90.0)).kmh(), 90.0);
/// ```
pub struct CompositeProfile {
    segments: Vec<Box<dyn SpeedProfile + Send + Sync>>,
    duration: Duration,
}

impl CompositeProfile {
    /// Builds a composite from an ordered list of segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    #[must_use]
    pub fn new(segments: Vec<Box<dyn SpeedProfile + Send + Sync>>) -> Self {
        assert!(!segments.is_empty(), "composite needs at least one segment");
        let duration = segments
            .iter()
            .fold(Duration::ZERO, |acc, s| acc + s.duration());
        Self { segments, duration }
    }
}

impl std::fmt::Debug for CompositeProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeProfile")
            .field("segments", &self.segments.len())
            .field("duration", &self.duration)
            .finish()
    }
}

impl SpeedProfile for CompositeProfile {
    fn speed_at(&self, t: Duration) -> Speed {
        let mut offset = Duration::ZERO;
        for segment in &self.segments {
            let end = offset + segment.duration();
            if t.secs() < end.secs() {
                return segment.speed_at(t - offset);
            }
            offset = end;
        }
        let last = self.segments.last().expect("non-empty by construction");
        last.speed_at(last.duration())
    }

    fn duration(&self) -> Duration {
        self.duration
    }
}

/// Repeats a profile `n` times (e.g. four urban cycles as in NEDC).
#[derive(Debug)]
pub struct RepeatProfile<P> {
    inner: P,
    repeats: usize,
}

impl<P: SpeedProfile> RepeatProfile<P> {
    /// Repeats `inner` `repeats` times.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    #[must_use]
    pub fn new(inner: P, repeats: usize) -> Self {
        assert!(repeats > 0, "repeat count must be positive");
        Self { inner, repeats }
    }
}

impl<P: SpeedProfile> SpeedProfile for RepeatProfile<P> {
    fn speed_at(&self, t: Duration) -> Speed {
        let period = self.inner.duration().secs();
        let total = period * self.repeats as f64;
        let wrapped = if t.secs() >= total {
            period
        } else {
            t.secs() % period
        };
        self.inner.speed_at(Duration::from_secs(wrapped))
    }

    fn duration(&self) -> Duration {
        self.inner.duration() * self.repeats as f64
    }
}

/// The cycle names [`named_cycle`] accepts, for error messages and docs.
pub const NAMED_CYCLES: &[&str] = &["urban", "eudc", "wltc", "nedc"];

/// Builds one of the named driving cycles every tool exposes (`urban`,
/// `eudc`, `wltc`, `nedc` — see [`NAMED_CYCLES`]), repeated `repeat`
/// times; `repeat` values below 2 leave the cycle un-wrapped. Returns
/// `None` for unknown names.
///
/// The CLI and the serving layer both resolve cycles through this one
/// function, so a cycle requested over the wire is the exact profile a
/// local run evaluates.
#[must_use]
pub fn named_cycle(name: &str, repeat: usize) -> Option<Box<dyn SpeedProfile + Send + Sync>> {
    let single: Box<dyn SpeedProfile + Send + Sync> = match name {
        "urban" => Box::new(UrbanCycle::new()),
        "eudc" => Box::new(ExtraUrbanCycle::new()),
        "wltc" => Box::new(WltcLikeCycle::new()),
        "nedc" => Box::new(CompositeProfile::new(vec![
            Box::new(RepeatProfile::new(UrbanCycle::new(), 4)),
            Box::new(ExtraUrbanCycle::new()),
        ])),
        _ => return None,
    };
    Some(if repeat > 1 {
        Box::new(RepeatProfile::new(single, repeat))
    } else {
        single
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urban_cycle_shape() {
        let c = UrbanCycle::new();
        // Peak of the third hump.
        assert!((c.speed_at(at(146.0)).kmh() - 50.0).abs() < 2.0);
        // Idle windows are at rest.
        assert_eq!(c.speed_at(at(35.0)).kmh(), 0.0);
        assert_eq!(c.speed_at(at(100.0)).kmh(), 0.0);
    }

    #[test]
    fn urban_cycle_mean_is_citylike() {
        let mean = UrbanCycle::new().mean_speed(1000);
        assert!(mean.kmh() > 10.0 && mean.kmh() < 30.0, "mean {mean}");
    }

    #[test]
    fn extra_urban_reaches_120() {
        let c = ExtraUrbanCycle::new();
        assert!((c.speed_at(at(340.0)).kmh() - 120.0).abs() < 1.0);
        assert_eq!(c.speed_at(at(395.0)).kmh(), 0.0);
    }

    #[test]
    fn motorway_cruises() {
        let c = MotorwayCycle::new(kmh(130.0), Duration::from_mins(10.0)).unwrap();
        assert!((c.speed_at(at(300.0)).kmh() - 130.0).abs() < 1e-9);
        assert!((c.duration().secs() - 660.0).abs() < 1e-9);
    }

    #[test]
    fn motorway_rejects_zero_hold() {
        assert!(MotorwayCycle::new(kmh(130.0), Duration::ZERO).is_err());
    }

    #[test]
    fn named_cycles_resolve_and_repeat() {
        for name in NAMED_CYCLES {
            let cycle = named_cycle(name, 1).expect("known name");
            assert!(cycle.duration().secs() > 0.0, "{name}");
            let doubled = named_cycle(name, 2).expect("known name");
            assert!((doubled.duration().secs() - 2.0 * cycle.duration().secs()).abs() < 1e-9);
            // The repeated cycle replays the base one.
            let t = Duration::from_secs(42.0);
            assert_eq!(doubled.speed_at(t), cycle.speed_at(t));
        }
        assert!(named_cycle("autobahn", 1).is_none());
    }

    #[test]
    fn nedc_is_four_urban_plus_eudc() {
        let nedc = named_cycle("nedc", 1).unwrap();
        let urban = UrbanCycle::new();
        let eudc = ExtraUrbanCycle::new();
        let expected = 4.0 * urban.duration().secs() + eudc.duration().secs();
        assert!((nedc.duration().secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn wltc_like_phases() {
        let c = WltcLikeCycle::new();
        assert!((c.duration().secs() - 1800.0).abs() < 1e-9);
        // Extra-high peak.
        assert!((c.speed_at(at(1680.0)).kmh() - 131.0).abs() < 1e-9);
        // Low phase never exceeds 60 km/h.
        for t in (0..589).step_by(7) {
            assert!(c.speed_at(at(f64::from(t))).kmh() <= 60.0, "t={t}");
        }
        // Starts and ends at rest.
        assert_eq!(c.speed_at(at(0.0)).kmh(), 0.0);
        assert_eq!(c.speed_at(at(1800.0)).kmh(), 0.0);
    }

    #[test]
    fn wltc_like_is_faster_than_urban_on_average() {
        let wltc = WltcLikeCycle::new().mean_speed(2000);
        let urban = UrbanCycle::new().mean_speed(2000);
        assert!(wltc > urban);
        // Representative of the real cycle's ~46.5 km/h average.
        assert!(wltc.kmh() > 35.0 && wltc.kmh() < 60.0, "mean {wltc}");
    }

    #[test]
    fn composite_switches_segments() {
        let trip = CompositeProfile::new(vec![
            Box::new(UrbanCycle::new()),
            Box::new(ExtraUrbanCycle::new()),
        ]);
        assert!((trip.duration().secs() - 595.0).abs() < 1e-9);
        // 195 + 340: inside the extra-urban 120 km/h plateau.
        assert!((trip.speed_at(at(535.0)).kmh() - 120.0).abs() < 1.0);
    }

    #[test]
    fn composite_past_end_holds_final_speed() {
        let trip = CompositeProfile::new(vec![Box::new(UrbanCycle::new())]);
        assert_eq!(trip.speed_at(at(10_000.0)).kmh(), 0.0);
    }

    #[test]
    fn repeat_wraps_time() {
        let four = RepeatProfile::new(UrbanCycle::new(), 4);
        assert!((four.duration().secs() - 780.0).abs() < 1e-9);
        let single = UrbanCycle::new();
        // Same phase in the third repetition.
        let t_in_third = at(2.0 * 195.0 + 146.0);
        assert_eq!(four.speed_at(t_in_third), single.speed_at(at(146.0)));
    }

    #[test]
    #[should_panic(expected = "repeat count must be positive")]
    fn repeat_rejects_zero() {
        let _ = RepeatProfile::new(UrbanCycle::new(), 0);
    }

    #[test]
    #[should_panic(expected = "composite needs at least one segment")]
    fn composite_rejects_empty() {
        let _ = CompositeProfile::new(vec![]);
    }
}
