//! Ambient/working temperature profiles.
//!
//! Static power "is mainly linked to the working temperature of the
//! circuit" (§II), so the long-window emulation needs a temperature input
//! alongside the speed profile. Profiles here describe the *ambient/tyre*
//! temperature over time; the speed-coupled self-heating lives in
//! [`crate::TyreThermalModel`].

use monityre_units::{Duration, Temperature};

use crate::ProfileError;

/// A temperature trace over time.
///
/// Queries past the end hold the final value.
pub trait TemperatureProfile {
    /// The temperature at elapsed time `t`.
    fn temperature_at(&self, t: Duration) -> Temperature;
}

/// A constant temperature.
///
/// ```
/// use monityre_profile::{ConstantTemperature, TemperatureProfile};
/// use monityre_units::{Duration, Temperature};
///
/// let p = ConstantTemperature::new(Temperature::from_celsius(35.0));
/// assert_eq!(p.temperature_at(Duration::from_mins(5.0)).celsius(), 35.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantTemperature {
    value: Temperature,
}

impl ConstantTemperature {
    /// Creates a constant profile.
    #[must_use]
    pub fn new(value: Temperature) -> Self {
        Self { value }
    }
}

impl TemperatureProfile for ConstantTemperature {
    fn temperature_at(&self, _t: Duration) -> Temperature {
        self.value
    }
}

/// Piecewise-linear temperature through `(time, temperature)` breakpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseTemperature {
    points: Vec<(Duration, Temperature)>,
}

impl PiecewiseTemperature {
    /// Creates a piecewise temperature profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidBreakpoints`] when fewer than two
    /// points are given, the first is not at `t = 0`, or times are not
    /// strictly increasing.
    pub fn new(points: Vec<(Duration, Temperature)>) -> Result<Self, ProfileError> {
        if points.len() < 2 {
            return Err(ProfileError::invalid_breakpoints(
                "need at least two breakpoints",
            ));
        }
        if points[0].0.secs() != 0.0 {
            return Err(ProfileError::invalid_breakpoints(
                "first breakpoint must be at t = 0",
            ));
        }
        if points.windows(2).any(|w| w[0].0.secs() >= w[1].0.secs()) {
            return Err(ProfileError::invalid_breakpoints(
                "breakpoint times must be strictly increasing",
            ));
        }
        Ok(Self { points })
    }
}

impl TemperatureProfile for PiecewiseTemperature {
    fn temperature_at(&self, t: Duration) -> Temperature {
        let secs = t.secs();
        if secs <= 0.0 {
            return self.points[0].1;
        }
        let last = self.points.len() - 1;
        if secs >= self.points[last].0.secs() {
            return self.points[last].1;
        }
        let hi = self.points.partition_point(|(pt, _)| pt.secs() <= secs);
        let (t0, v0) = self.points[hi - 1];
        let (t1, v1) = self.points[hi];
        let w = (secs - t0.secs()) / (t1.secs() - t0.secs());
        v0.lerp(v1, w)
    }
}

/// A sinusoidal day/night swing around a mean — the ambient input for
/// multi-hour parking/driving scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalTemperature {
    mean: Temperature,
    amplitude_kelvin: f64,
    /// Phase offset: the time of the daily maximum.
    peak_at: Duration,
}

impl DiurnalTemperature {
    /// One day.
    const PERIOD_SECS: f64 = 24.0 * 3600.0;

    /// Creates a diurnal profile with daily `mean`, half-swing
    /// `amplitude_kelvin`, peaking at `peak_at` into the window.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude_kelvin` is negative or non-finite.
    #[must_use]
    pub fn new(mean: Temperature, amplitude_kelvin: f64, peak_at: Duration) -> Self {
        assert!(
            amplitude_kelvin >= 0.0 && amplitude_kelvin.is_finite(),
            "amplitude must be non-negative, got {amplitude_kelvin}"
        );
        Self {
            mean,
            amplitude_kelvin,
            peak_at,
        }
    }
}

impl TemperatureProfile for DiurnalTemperature {
    fn temperature_at(&self, t: Duration) -> Temperature {
        let phase = (t.secs() - self.peak_at.secs()) / Self::PERIOD_SECS * std::f64::consts::TAU;
        self.mean.offset_kelvin(self.amplitude_kelvin * phase.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_holds() {
        let p = ConstantTemperature::new(Temperature::from_celsius(-10.0));
        assert_eq!(p.temperature_at(Duration::from_hours(3.0)).celsius(), -10.0);
    }

    #[test]
    fn piecewise_interpolates() {
        let p = PiecewiseTemperature::new(vec![
            (Duration::ZERO, Temperature::from_celsius(20.0)),
            (Duration::from_mins(10.0), Temperature::from_celsius(60.0)),
        ])
        .unwrap();
        let mid = p.temperature_at(Duration::from_mins(5.0));
        assert!((mid.celsius() - 40.0).abs() < 1e-9);
        // Past the end holds.
        assert!((p.temperature_at(Duration::from_hours(1.0)).celsius() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_rejects_invalid() {
        assert!(PiecewiseTemperature::new(vec![(Duration::ZERO, Temperature::REFERENCE)]).is_err());
        assert!(PiecewiseTemperature::new(vec![
            (Duration::from_secs(1.0), Temperature::REFERENCE),
            (Duration::from_secs(2.0), Temperature::REFERENCE),
        ])
        .is_err());
    }

    #[test]
    fn diurnal_peaks_at_configured_time() {
        let p = DiurnalTemperature::new(
            Temperature::from_celsius(20.0),
            10.0,
            Duration::from_hours(14.0),
        );
        let peak = p.temperature_at(Duration::from_hours(14.0));
        assert!((peak.celsius() - 30.0).abs() < 1e-9);
        let trough = p.temperature_at(Duration::from_hours(2.0));
        assert!((trough.celsius() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_is_periodic() {
        let p = DiurnalTemperature::new(Temperature::from_celsius(15.0), 8.0, Duration::ZERO);
        let a = p.temperature_at(Duration::from_hours(5.0));
        let b = p.temperature_at(Duration::from_hours(29.0));
        assert!(a.approx_eq(b, 1e-12));
    }
}
