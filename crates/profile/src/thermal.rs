//! First-order tyre self-heating model.
//!
//! A rolling tyre heats above ambient through hysteresis losses roughly
//! proportional to speed; at standstill it relaxes back to ambient. The
//! transient emulator steps this model alongside the speed profile so the
//! leakage term sees a realistic working temperature — the coupling the
//! paper highlights between operating conditions and static power.

use monityre_units::{Duration, Speed, Temperature};
use serde::{Deserialize, Serialize};

/// First-order thermal model: `dT/dt = (T_target − T)/τ` with
/// `T_target = ambient + k·v`.
///
/// ```
/// use monityre_profile::TyreThermalModel;
/// use monityre_units::{Duration, Speed, Temperature};
///
/// let model = TyreThermalModel::reference();
/// let ambient = Temperature::from_celsius(20.0);
/// let mut t = ambient;
/// for _ in 0..3600 {
///     t = model.step(t, Speed::from_kmh(130.0), ambient, Duration::from_secs(1.0));
/// }
/// assert!(t.celsius() > 35.0); // motorway cruise warms the tyre well above ambient
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TyreThermalModel {
    /// Steady-state rise per unit speed, in kelvin per (m/s).
    heating_coefficient: f64,
    /// Thermal relaxation time constant.
    time_constant: Duration,
}

impl TyreThermalModel {
    /// Builds a thermal model.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient is negative/non-finite or the time
    /// constant non-positive.
    #[must_use]
    pub fn new(heating_coefficient: f64, time_constant: Duration) -> Self {
        assert!(
            heating_coefficient >= 0.0 && heating_coefficient.is_finite(),
            "heating coefficient must be non-negative, got {heating_coefficient}"
        );
        assert!(
            time_constant.secs() > 0.0 && time_constant.is_finite(),
            "time constant must be positive, got {time_constant}"
        );
        Self {
            heating_coefficient,
            time_constant,
        }
    }

    /// The reference passenger-tyre model: ≈ 0.6 K per m/s steady-state
    /// rise (≈ 22 K above ambient at 130 km/h) with a 8-minute time
    /// constant — representative of published tyre-temperature studies.
    #[must_use]
    pub fn reference() -> Self {
        Self::new(0.6, Duration::from_mins(8.0))
    }

    /// The steady-state rise per unit speed (K per m/s).
    #[must_use]
    pub fn heating_coefficient(&self) -> f64 {
        self.heating_coefficient
    }

    /// The relaxation time constant.
    #[must_use]
    pub fn time_constant(&self) -> Duration {
        self.time_constant
    }

    /// The steady-state temperature at a constant speed and ambient.
    #[must_use]
    pub fn steady_state(&self, speed: Speed, ambient: Temperature) -> Temperature {
        ambient.offset_kelvin(self.heating_coefficient * speed.mps())
    }

    /// Advances the tyre temperature by one time step using the exact
    /// exponential update (unconditionally stable for any `dt`).
    #[must_use]
    pub fn step(
        &self,
        current: Temperature,
        speed: Speed,
        ambient: Temperature,
        dt: Duration,
    ) -> Temperature {
        let target = self.steady_state(speed, ambient);
        let alpha = 1.0 - (-dt.secs() / self.time_constant.secs()).exp();
        current.lerp(target, alpha)
    }
}

impl Default for TyreThermalModel {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_state() {
        let model = TyreThermalModel::reference();
        let ambient = Temperature::from_celsius(25.0);
        let speed = Speed::from_kmh(100.0);
        let mut t = ambient;
        for _ in 0..(3600 * 2) {
            t = model.step(t, speed, ambient, Duration::from_secs(1.0));
        }
        let target = model.steady_state(speed, ambient);
        assert!(t.approx_eq(target, 1e-3), "t={t} target={target}");
    }

    #[test]
    fn cools_back_to_ambient_at_rest() {
        let model = TyreThermalModel::reference();
        let ambient = Temperature::from_celsius(20.0);
        let mut t = Temperature::from_celsius(55.0);
        for _ in 0..(3600 * 2) {
            t = model.step(t, Speed::ZERO, ambient, Duration::from_secs(1.0));
        }
        assert!(t.approx_eq(ambient, 1e-3), "t={t}");
    }

    #[test]
    fn step_is_monotone_toward_target() {
        let model = TyreThermalModel::reference();
        let ambient = Temperature::from_celsius(10.0);
        let speed = Speed::from_kmh(80.0);
        let mut t = ambient;
        let mut last = t;
        for _ in 0..600 {
            t = model.step(t, speed, ambient, Duration::from_secs(1.0));
            assert!(t.kelvin() >= last.kelvin());
            last = t;
        }
        assert!(t.kelvin() <= model.steady_state(speed, ambient).kelvin() + 1e-9);
    }

    #[test]
    fn large_step_is_stable() {
        let model = TyreThermalModel::reference();
        let ambient = Temperature::from_celsius(20.0);
        let speed = Speed::from_kmh(120.0);
        // A single huge step lands exactly on steady state, no overshoot.
        let t = model.step(ambient, speed, ambient, Duration::from_hours(10.0));
        assert!(t.approx_eq(model.steady_state(speed, ambient), 1e-6));
    }

    #[test]
    fn steady_state_scales_with_speed() {
        let model = TyreThermalModel::new(0.5, Duration::from_mins(5.0));
        let ambient = Temperature::from_celsius(0.0);
        let slow = model.steady_state(Speed::from_mps(10.0), ambient);
        let fast = model.steady_state(Speed::from_mps(30.0), ambient);
        assert!((slow.celsius() - 5.0).abs() < 1e-9);
        assert!((fast.celsius() - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time constant must be positive")]
    fn rejects_zero_time_constant() {
        let _ = TyreThermalModel::new(0.5, Duration::ZERO);
    }
}
