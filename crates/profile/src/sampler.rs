//! Uniform time-stepped sampling of a speed profile.

use monityre_units::{Duration, Speed};

use crate::SpeedProfile;

/// One sample of a profile: elapsed time and speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSample {
    /// Elapsed time at the *start* of the step.
    pub time: Duration,
    /// Speed at that instant.
    pub speed: Speed,
    /// The step length (constant except possibly the final, truncated step).
    pub step: Duration,
}

/// Iterator yielding uniform samples `(t, v, dt)` over a profile's window.
///
/// The final step is truncated so the samples exactly tile the window —
/// the emulator relies on `Σ dt == duration` for energy conservation.
///
/// ```
/// use monityre_profile::{ConstantProfile, ProfileSampler};
/// use monityre_units::{Duration, Speed};
///
/// let p = ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_secs(1.0));
/// let steps: Vec<_> = ProfileSampler::new(&p, Duration::from_millis(300.0)).collect();
/// assert_eq!(steps.len(), 4); // 0.3 + 0.3 + 0.3 + 0.1
/// let total: f64 = steps.iter().map(|s| s.step.secs()).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct ProfileSampler<'a, P: ?Sized> {
    profile: &'a P,
    step: Duration,
    cursor: Duration,
    end: Duration,
}

impl<'a, P: SpeedProfile + ?Sized> ProfileSampler<'a, P> {
    /// Creates a sampler with the given step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is non-positive or non-finite.
    #[must_use]
    pub fn new(profile: &'a P, step: Duration) -> Self {
        assert!(
            step.secs() > 0.0 && step.is_finite(),
            "sampler step must be positive, got {step}"
        );
        Self {
            profile,
            step,
            cursor: Duration::ZERO,
            end: profile.duration(),
        }
    }
}

impl<'a, P: SpeedProfile + ?Sized> Iterator for ProfileSampler<'a, P> {
    type Item = ProfileSample;

    fn next(&mut self) -> Option<ProfileSample> {
        let remaining = self.end - self.cursor;
        if remaining.secs() <= 1e-12 {
            return None;
        }
        let step = self.step.min(remaining);
        let sample = ProfileSample {
            time: self.cursor,
            speed: self.profile.speed_at(self.cursor),
            step,
        };
        self.cursor += step;
        Some(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantProfile, RampProfile};

    #[test]
    fn tiles_window_exactly() {
        let p = ConstantProfile::new(Speed::from_kmh(80.0), Duration::from_secs(10.0));
        let total: f64 = ProfileSampler::new(&p, Duration::from_millis(700.0))
            .map(|s| s.step.secs())
            .sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exact_division_has_uniform_steps() {
        let p = ConstantProfile::new(Speed::from_kmh(80.0), Duration::from_secs(1.0));
        let steps: Vec<_> = ProfileSampler::new(&p, Duration::from_millis(250.0)).collect();
        assert_eq!(steps.len(), 4);
        assert!(steps.iter().all(|s| (s.step.millis() - 250.0).abs() < 1e-9));
    }

    #[test]
    fn samples_follow_the_profile() {
        let p = RampProfile::new(
            Speed::ZERO,
            Speed::from_mps(10.0),
            Duration::from_secs(10.0),
        );
        let samples: Vec<_> = ProfileSampler::new(&p, Duration::from_secs(1.0)).collect();
        assert_eq!(samples.len(), 10);
        assert!(samples[0].speed.approx_eq(Speed::ZERO, 1e-12));
        assert!(samples[5].speed.approx_eq(Speed::from_mps(5.0), 1e-12));
    }

    #[test]
    fn times_are_cumulative() {
        let p = ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_secs(2.0));
        let samples: Vec<_> = ProfileSampler::new(&p, Duration::from_millis(500.0)).collect();
        let times: Vec<f64> = samples.iter().map(|s| s.time.secs()).collect();
        assert_eq!(times, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "sampler step must be positive")]
    fn rejects_zero_step() {
        let p = ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_secs(1.0));
        let _ = ProfileSampler::new(&p, Duration::ZERO);
    }

    #[test]
    fn works_through_trait_object() {
        let p = ConstantProfile::new(Speed::from_kmh(50.0), Duration::from_secs(1.0));
        let dyn_p: &dyn crate::SpeedProfile = &p;
        let n = ProfileSampler::new(dyn_p, Duration::from_millis(100.0)).count();
        assert_eq!(n, 10);
    }
}
