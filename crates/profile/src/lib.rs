//! Driving profiles: wheel geometry, speed-vs-time cycles, temperatures.
//!
//! The paper's tools evaluate the Sensor Node "after setting a desired
//! cruising speed profile" (§II-A). Pirelli's production traces are not
//! public, so this crate generates synthetic but realistic inputs:
//!
//! * [`Wheel`] — rolling geometry, converting vehicle speed to wheel-round
//!   rate and period (the wheel round is the flow's basic timing unit);
//! * [`SpeedProfile`] implementations — constant cruise, ramps, piecewise
//!   traces, NEDC-inspired urban/extra-urban/motorway cycles, and a seeded
//!   stochastic cruise (Ornstein–Uhlenbeck around a set-point);
//! * [`TemperatureProfile`] implementations plus a first-order tyre thermal
//!   model coupling working temperature to speed — feeding the
//!   temperature-dependent leakage model;
//! * [`ProfileSampler`] — uniform time-stepped sampling used by the
//!   transient emulator.
//!
//! # Example
//!
//! ```
//! use monityre_profile::{SpeedProfile, UrbanCycle, Wheel};
//! use monityre_units::{Duration, Speed};
//!
//! let wheel = Wheel::from_tyre_spec("225/45R17").unwrap();
//! let cycle = UrbanCycle::new();
//! let v = cycle.speed_at(Duration::from_secs(30.0));
//! let rounds = wheel.rounds_per_second(v);
//! assert!(rounds.hertz() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycles;
mod error;
mod sampler;
mod speed;
mod temperature;
mod thermal;
mod wheel;

pub use cycles::{
    named_cycle, CompositeProfile, ExtraUrbanCycle, MotorwayCycle, RepeatProfile, UrbanCycle,
    WltcLikeCycle, NAMED_CYCLES,
};
pub use error::ProfileError;
pub use sampler::{ProfileSample, ProfileSampler};
pub use speed::{ConstantProfile, PiecewiseProfile, RampProfile, SpeedProfile, StochasticCruise};
pub use temperature::{
    ConstantTemperature, DiurnalTemperature, PiecewiseTemperature, TemperatureProfile,
};
pub use thermal::TyreThermalModel;
pub use wheel::Wheel;
