//! Speed-vs-time profiles.

use monityre_units::{Duration, Speed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ProfileError;

/// A vehicle speed trace over a finite window.
///
/// Implementations must return a non-negative speed for every `t` in
/// `[0, duration]`; queries past the end hold the final value (so callers
/// can safely over-run by a step).
pub trait SpeedProfile {
    /// The speed at elapsed time `t`.
    fn speed_at(&self, t: Duration) -> Speed;

    /// The length of the profile window.
    fn duration(&self) -> Duration;

    /// The arithmetic mean of the speed sampled at `n` uniform points —
    /// a convenience for reports.
    fn mean_speed(&self, n: usize) -> Speed {
        let n = n.max(1);
        let dt = self.duration() / n as f64;
        let sum: f64 = (0..n)
            .map(|i| self.speed_at(dt * (i as f64 + 0.5)).mps())
            .sum();
        Speed::from_mps(sum / n as f64)
    }
}

impl<P: SpeedProfile + ?Sized> SpeedProfile for Box<P> {
    fn speed_at(&self, t: Duration) -> Speed {
        (**self).speed_at(t)
    }

    fn duration(&self) -> Duration {
        (**self).duration()
    }
}

/// Constant cruising speed — the operating point of the paper's Fig. 2.
///
/// ```
/// use monityre_profile::{ConstantProfile, SpeedProfile};
/// use monityre_units::{Duration, Speed};
///
/// let cruise = ConstantProfile::new(Speed::from_kmh(90.0), Duration::from_mins(10.0));
/// assert_eq!(cruise.speed_at(Duration::from_secs(1.0)), Speed::from_kmh(90.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantProfile {
    speed: Speed,
    duration: Duration,
}

impl ConstantProfile {
    /// Creates a constant profile.
    ///
    /// # Panics
    ///
    /// Panics if speed is negative or duration non-positive.
    #[must_use]
    pub fn new(speed: Speed, duration: Duration) -> Self {
        assert!(
            !speed.is_negative() && speed.is_finite(),
            "speed must be non-negative, got {speed}"
        );
        assert!(
            duration.secs() > 0.0 && duration.is_finite(),
            "duration must be positive, got {duration}"
        );
        Self { speed, duration }
    }
}

impl SpeedProfile for ConstantProfile {
    fn speed_at(&self, _t: Duration) -> Speed {
        self.speed
    }

    fn duration(&self) -> Duration {
        self.duration
    }
}

/// Linear ramp from a start to an end speed (acceleration or braking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampProfile {
    from: Speed,
    to: Speed,
    duration: Duration,
}

impl RampProfile {
    /// Creates a ramp.
    ///
    /// # Panics
    ///
    /// Panics if either speed is negative or the duration non-positive.
    #[must_use]
    pub fn new(from: Speed, to: Speed, duration: Duration) -> Self {
        assert!(
            !from.is_negative() && !to.is_negative(),
            "ramp speeds must be non-negative"
        );
        assert!(duration.secs() > 0.0, "ramp duration must be positive");
        Self { from, to, duration }
    }
}

impl SpeedProfile for RampProfile {
    fn speed_at(&self, t: Duration) -> Speed {
        let x = (t.secs() / self.duration.secs()).clamp(0.0, 1.0);
        self.from + (self.to - self.from) * x
    }

    fn duration(&self) -> Duration {
        self.duration
    }
}

/// A piecewise-linear profile through `(time, speed)` breakpoints.
///
/// ```
/// use monityre_profile::{PiecewiseProfile, SpeedProfile};
/// use monityre_units::{Duration, Speed};
///
/// # fn main() -> Result<(), monityre_profile::ProfileError> {
/// let p = PiecewiseProfile::new(vec![
///     (Duration::ZERO, Speed::ZERO),
///     (Duration::from_secs(10.0), Speed::from_kmh(50.0)),
///     (Duration::from_secs(30.0), Speed::from_kmh(50.0)),
/// ])?;
/// assert!((p.speed_at(Duration::from_secs(5.0)).kmh() - 25.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseProfile {
    points: Vec<(Duration, Speed)>,
}

impl PiecewiseProfile {
    /// Creates a piecewise profile from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidBreakpoints`] when fewer than two
    /// points are given, times are not strictly increasing, the first time
    /// is not zero, or any speed is negative/non-finite.
    pub fn new(points: Vec<(Duration, Speed)>) -> Result<Self, ProfileError> {
        if points.len() < 2 {
            return Err(ProfileError::invalid_breakpoints(
                "need at least two breakpoints",
            ));
        }
        if points[0].0.secs() != 0.0 {
            return Err(ProfileError::invalid_breakpoints(
                "first breakpoint must be at t = 0",
            ));
        }
        if points.windows(2).any(|w| w[0].0.secs() >= w[1].0.secs()) {
            return Err(ProfileError::invalid_breakpoints(
                "breakpoint times must be strictly increasing",
            ));
        }
        if points
            .iter()
            .any(|(_, v)| v.is_negative() || !v.is_finite())
        {
            return Err(ProfileError::invalid_breakpoints(
                "speeds must be non-negative and finite",
            ));
        }
        Ok(Self { points })
    }

    /// The breakpoints.
    #[must_use]
    pub fn points(&self) -> &[(Duration, Speed)] {
        &self.points
    }
}

impl SpeedProfile for PiecewiseProfile {
    fn speed_at(&self, t: Duration) -> Speed {
        let secs = t.secs();
        if secs <= 0.0 {
            return self.points[0].1;
        }
        let last = self.points.len() - 1;
        if secs >= self.points[last].0.secs() {
            return self.points[last].1;
        }
        let hi = self.points.partition_point(|(pt, _)| pt.secs() <= secs);
        let (t0, v0) = self.points[hi - 1];
        let (t1, v1) = self.points[hi];
        let w = (secs - t0.secs()) / (t1.secs() - t0.secs());
        v0 + (v1 - v0) * w
    }

    fn duration(&self) -> Duration {
        self.points[self.points.len() - 1].0
    }
}

/// A seeded mean-reverting (Ornstein–Uhlenbeck) cruise around a set-point:
/// realistic highway driving with speed fluctuations, reproducible across
/// runs.
///
/// The process is pre-sampled at a fixed internal step on construction so
/// `speed_at` is deterministic and cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticCruise {
    samples: Vec<Speed>,
    step: Duration,
    duration: Duration,
}

impl StochasticCruise {
    /// Builds a stochastic cruise.
    ///
    /// * `set_point` — the mean speed the driver tracks;
    /// * `sigma` — fluctuation magnitude (m/s);
    /// * `relaxation` — how quickly deviations decay;
    /// * `seed` — RNG seed for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the set-point is negative, sigma negative, relaxation or
    /// duration non-positive.
    #[must_use]
    pub fn new(
        set_point: Speed,
        sigma: f64,
        relaxation: Duration,
        duration: Duration,
        seed: u64,
    ) -> Self {
        assert!(!set_point.is_negative(), "set-point must be non-negative");
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        assert!(relaxation.secs() > 0.0, "relaxation must be positive");
        assert!(duration.secs() > 0.0, "duration must be positive");

        let step = Duration::from_millis(250.0);
        let n = (duration.secs() / step.secs()).ceil() as usize + 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = 1.0 / relaxation.secs();
        let dt = step.secs();
        let mut v = set_point.mps();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(Speed::from_mps(v.max(0.0)));
            // Euler–Maruyama step of dV = θ(µ−V)dt + σ√(2θ)·dW.
            let noise: f64 = rng.gen_range(-1.0..1.0) * (3.0f64).sqrt(); // unit-variance uniform
            v += theta * (set_point.mps() - v) * dt + sigma * (2.0 * theta * dt).sqrt() * noise;
        }
        Self {
            samples,
            step,
            duration,
        }
    }
}

impl SpeedProfile for StochasticCruise {
    fn speed_at(&self, t: Duration) -> Speed {
        let x = (t.secs() / self.step.secs()).clamp(0.0, (self.samples.len() - 1) as f64);
        let i = x.floor() as usize;
        let j = (i + 1).min(self.samples.len() - 1);
        let w = x - i as f64;
        self.samples[i] + (self.samples[j] - self.samples[i]) * w
    }

    fn duration(&self) -> Duration {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = ConstantProfile::new(Speed::from_kmh(60.0), Duration::from_mins(5.0));
        for t in [0.0, 1.0, 100.0, 299.0, 10_000.0] {
            assert_eq!(p.speed_at(Duration::from_secs(t)), Speed::from_kmh(60.0));
        }
        assert!(p.mean_speed(16).approx_eq(Speed::from_kmh(60.0), 1e-12));
    }

    #[test]
    fn ramp_interpolates_and_clamps() {
        let p = RampProfile::new(
            Speed::ZERO,
            Speed::from_mps(20.0),
            Duration::from_secs(10.0),
        );
        assert_eq!(p.speed_at(Duration::ZERO), Speed::ZERO);
        assert!(p
            .speed_at(Duration::from_secs(5.0))
            .approx_eq(Speed::from_mps(10.0), 1e-12));
        assert!(p
            .speed_at(Duration::from_secs(50.0))
            .approx_eq(Speed::from_mps(20.0), 1e-12));
    }

    #[test]
    fn piecewise_interpolates() {
        let p = PiecewiseProfile::new(vec![
            (Duration::ZERO, Speed::ZERO),
            (Duration::from_secs(10.0), Speed::from_mps(10.0)),
            (Duration::from_secs(20.0), Speed::from_mps(4.0)),
        ])
        .unwrap();
        assert!(p
            .speed_at(Duration::from_secs(15.0))
            .approx_eq(Speed::from_mps(7.0), 1e-12));
        assert!(p.duration().approx_eq(Duration::from_secs(20.0), 1e-12));
        // Past the end holds the last value.
        assert!(p
            .speed_at(Duration::from_secs(99.0))
            .approx_eq(Speed::from_mps(4.0), 1e-12));
    }

    #[test]
    fn piecewise_rejects_bad_breakpoints() {
        let t = Duration::from_secs;
        let v = Speed::from_mps;
        assert!(PiecewiseProfile::new(vec![(t(0.0), v(1.0))]).is_err());
        assert!(PiecewiseProfile::new(vec![(t(1.0), v(1.0)), (t(2.0), v(1.0))]).is_err());
        assert!(PiecewiseProfile::new(vec![(t(0.0), v(1.0)), (t(0.0), v(1.0))]).is_err());
        assert!(PiecewiseProfile::new(vec![(t(0.0), v(-1.0)), (t(1.0), v(1.0))]).is_err());
    }

    #[test]
    fn stochastic_cruise_is_reproducible() {
        let a = StochasticCruise::new(
            Speed::from_kmh(110.0),
            1.5,
            Duration::from_secs(20.0),
            Duration::from_mins(5.0),
            42,
        );
        let b = StochasticCruise::new(
            Speed::from_kmh(110.0),
            1.5,
            Duration::from_secs(20.0),
            Duration::from_mins(5.0),
            42,
        );
        for i in 0..60 {
            let t = Duration::from_secs(f64::from(i) * 5.0);
            assert_eq!(a.speed_at(t), b.speed_at(t));
        }
    }

    #[test]
    fn stochastic_cruise_tracks_set_point() {
        let p = StochasticCruise::new(
            Speed::from_kmh(110.0),
            1.0,
            Duration::from_secs(15.0),
            Duration::from_mins(20.0),
            7,
        );
        let mean = p.mean_speed(500);
        assert!((mean.kmh() - 110.0).abs() < 8.0, "mean was {mean}");
    }

    #[test]
    fn stochastic_cruise_never_negative() {
        // Aggressive noise around a very low set-point.
        let p = StochasticCruise::new(
            Speed::from_kmh(3.0),
            4.0,
            Duration::from_secs(5.0),
            Duration::from_mins(2.0),
            13,
        );
        for i in 0..240 {
            let v = p.speed_at(Duration::from_secs(f64::from(i) * 0.5));
            assert!(!v.is_negative());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = StochasticCruise::new(
            Speed::from_kmh(110.0),
            2.0,
            Duration::from_secs(20.0),
            Duration::from_mins(5.0),
            1,
        );
        let b = StochasticCruise::new(
            Speed::from_kmh(110.0),
            2.0,
            Duration::from_secs(20.0),
            Duration::from_mins(5.0),
            2,
        );
        let t = Duration::from_secs(60.0);
        assert_ne!(a.speed_at(t), b.speed_at(t));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn constant_rejects_zero_duration() {
        let _ = ConstantProfile::new(Speed::from_kmh(50.0), Duration::ZERO);
    }
}
