//! Wheel geometry: the bridge between vehicle speed and wheel rounds.

use std::fmt;

use monityre_units::{AngularVelocity, Distance, Duration, Frequency, Speed};
use serde::{Deserialize, Serialize};

use crate::ProfileError;

/// Rolling geometry of the instrumented wheel.
///
/// The paper's methodology treats the wheel round as "the basic timing
/// unit"; every per-round energy figure is tied to a specific rolling
/// circumference. The rolling circumference is slightly shorter than the
/// geometric one because the loaded tyre flattens at the contact patch —
/// the conventional ≈ 96 % factor is applied by
/// [`Wheel::from_tyre_spec`].
///
/// ```
/// use monityre_profile::Wheel;
/// use monityre_units::Speed;
///
/// let wheel = Wheel::from_tyre_spec("205/55R16").unwrap();
/// let f = wheel.rounds_per_second(Speed::from_kmh(72.0));
/// assert!((f.hertz() - 10.35).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wheel {
    rolling_circumference: Distance,
}

/// Contact-patch flattening: rolling circumference ≈ 96 % of geometric.
const ROLLING_FACTOR: f64 = 0.96;

impl Wheel {
    /// Creates a wheel from its rolling circumference.
    ///
    /// # Panics
    ///
    /// Panics if the circumference is not strictly positive and finite.
    #[must_use]
    pub fn new(rolling_circumference: Distance) -> Self {
        assert!(
            rolling_circumference.is_finite() && rolling_circumference.metres() > 0.0,
            "rolling circumference must be positive, got {rolling_circumference}"
        );
        Self {
            rolling_circumference,
        }
    }

    /// Parses a European tyre designation like `"225/45R17"`:
    /// width 225 mm, aspect ratio 45 %, rim 17 in.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidTyreSpec`] when the string does not
    /// match the `WWW/AARDD` pattern or a component fails to parse.
    pub fn from_tyre_spec(spec: &str) -> Result<Self, ProfileError> {
        let bad = || ProfileError::invalid_tyre_spec(spec);
        let (width_str, rest) = spec.split_once('/').ok_or_else(bad)?;
        let (aspect_str, rim_str) = rest.split_once(['R', 'r']).ok_or_else(bad)?;
        let width_mm: f64 = width_str.trim().parse().map_err(|_| bad())?;
        let aspect_pct: f64 = aspect_str.trim().parse().map_err(|_| bad())?;
        let rim_in: f64 = rim_str.trim().parse().map_err(|_| bad())?;
        if !(width_mm > 0.0 && aspect_pct > 0.0 && rim_in > 0.0) {
            return Err(bad());
        }
        let sidewall_mm = width_mm * aspect_pct / 100.0;
        let diameter_mm = rim_in * 25.4 + 2.0 * sidewall_mm;
        let circumference_m = diameter_mm * 1e-3 * std::f64::consts::PI * ROLLING_FACTOR;
        Ok(Self::new(Distance::from_metres(circumference_m)))
    }

    /// The reference wheel used across the examples and benches: a common
    /// 205/55R16 passenger-car fitment (rolling circumference ≈ 1.93 m).
    #[must_use]
    pub fn reference() -> Self {
        Self::from_tyre_spec("205/55R16").expect("reference spec is valid")
    }

    /// The rolling circumference.
    #[must_use]
    pub fn rolling_circumference(&self) -> Distance {
        self.rolling_circumference
    }

    /// The rolling radius.
    #[must_use]
    pub fn rolling_radius(&self) -> Distance {
        Distance::from_metres(self.rolling_circumference.metres() / std::f64::consts::TAU)
    }

    /// Wheel rounds per second at the given vehicle speed.
    #[must_use]
    pub fn rounds_per_second(&self, speed: Speed) -> Frequency {
        speed / self.rolling_circumference
    }

    /// Duration of one wheel round at the given speed.
    ///
    /// Returns an infinite duration at standstill — callers treat the
    /// round as never completing.
    #[must_use]
    pub fn round_period(&self, speed: Speed) -> Duration {
        self.rounds_per_second(speed).period()
    }

    /// Number of (fractional) wheel rounds completed over `window` at a
    /// constant `speed`.
    #[must_use]
    pub fn rounds_over(&self, speed: Speed, window: Duration) -> f64 {
        self.rounds_per_second(speed).hertz() * window.secs()
    }

    /// Wheel angular velocity at the given speed.
    #[must_use]
    pub fn angular_velocity(&self, speed: Speed) -> AngularVelocity {
        AngularVelocity::from_speed_radius(speed, self.rolling_radius())
    }
}

impl Default for Wheel {
    fn default() -> Self {
        Self::reference()
    }
}

impl fmt::Display for Wheel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wheel ({} rolling)", self.rolling_circumference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tyre_spec_geometry() {
        // 205/55R16: sidewall 112.75 mm, diameter 631.9 mm,
        // circumference π·0.6319·0.96 ≈ 1.906 m.
        let wheel = Wheel::from_tyre_spec("205/55R16").unwrap();
        assert!((wheel.rolling_circumference().metres() - 1.906).abs() < 0.005);
    }

    #[test]
    fn bigger_tyre_longer_circumference() {
        let small = Wheel::from_tyre_spec("195/50R15").unwrap();
        let big = Wheel::from_tyre_spec("255/60R18").unwrap();
        assert!(big.rolling_circumference() > small.rolling_circumference());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "225",
            "225/45",
            "225-45R17",
            "a/bRc",
            "0/45R17",
            "225/45R0",
        ] {
            assert!(Wheel::from_tyre_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn lowercase_r_accepted() {
        assert!(Wheel::from_tyre_spec("205/55r16").is_ok());
    }

    #[test]
    fn rounds_per_second_at_cruise() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        let f = wheel.rounds_per_second(Speed::from_mps(20.0));
        assert!((f.hertz() - 10.0).abs() < 1e-12);
        assert!(wheel
            .round_period(Speed::from_mps(20.0))
            .approx_eq(monityre_units::Duration::from_millis(100.0), 1e-12));
    }

    #[test]
    fn standstill_round_never_completes() {
        let wheel = Wheel::reference();
        assert!(wheel.round_period(Speed::ZERO).secs().is_infinite());
        assert_eq!(wheel.rounds_per_second(Speed::ZERO).hertz(), 0.0);
    }

    #[test]
    fn rounds_over_window() {
        let wheel = Wheel::new(Distance::from_metres(2.0));
        let n = wheel.rounds_over(Speed::from_mps(10.0), Duration::from_secs(4.0));
        assert!((n - 20.0).abs() < 1e-12);
    }

    #[test]
    fn angular_velocity_consistent_with_radius() {
        let wheel = Wheel::new(Distance::from_metres(std::f64::consts::TAU));
        // radius exactly 1 m → ω == v numerically.
        let w = wheel.angular_velocity(Speed::from_mps(5.0));
        assert!((w.rads() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rolling circumference must be positive")]
    fn rejects_zero_circumference() {
        let _ = Wheel::new(Distance::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let wheel = Wheel::reference();
        let json = serde_json::to_string(&wheel).unwrap();
        let back: Wheel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wheel);
    }
}
