//! Error type for profile construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building profiles or parsing geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A tyre designation string did not parse.
    InvalidTyreSpec {
        /// The offending text.
        spec: String,
    },
    /// A piecewise profile was given invalid breakpoints.
    InvalidBreakpoints {
        /// What was wrong.
        reason: String,
    },
}

impl ProfileError {
    pub(crate) fn invalid_tyre_spec(spec: &str) -> Self {
        Self::InvalidTyreSpec {
            spec: spec.to_owned(),
        }
    }

    pub(crate) fn invalid_breakpoints(reason: &str) -> Self {
        Self::InvalidBreakpoints {
            reason: reason.to_owned(),
        }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidTyreSpec { spec } => {
                write!(
                    f,
                    "invalid tyre designation `{spec}`: expected e.g. `225/45R17`"
                )
            }
            Self::InvalidBreakpoints { reason } => {
                write!(f, "invalid profile breakpoints: {reason}")
            }
        }
    }
}

impl Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(ProfileError::invalid_tyre_spec("xyz")
            .to_string()
            .contains("xyz"));
        assert!(ProfileError::invalid_breakpoints("unsorted")
            .to_string()
            .contains("unsorted"));
    }
}
