//! Minimal flag parser: `--name value` pairs and boolean `--name` flags.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use monityre_power::{ProcessCorner, WorkingConditions};
use monityre_units::{Temperature, Voltage};

/// A CLI failure with a printable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl CliError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CliError {}

/// Parsed `--flag value` pairs. Values are kept as text and converted on
/// access; boolean flags hold an empty value. A flag given more than once
/// keeps every occurrence in order: the scalar accessors read the last
/// one (so overrides compose left to right), and [`Args::texts`] exposes
/// the full list for repeatable flags such as `sheet --set`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, Vec<String>>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses raw arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for tokens that are not `--flag`-shaped.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(name) = token.strip_prefix("--") else {
                return Err(CliError::new(format!(
                    "unexpected argument `{token}` (flags look like --name value)"
                )));
            };
            if name.is_empty() {
                return Err(CliError::new("empty flag name"));
            }
            // A following token that is not itself a flag is this flag's
            // value; otherwise it is a boolean flag.
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.entry(name.to_owned()).or_default().push(v.clone());
                    i += 2;
                }
                _ => {
                    values
                        .entry(name.to_owned())
                        .or_default()
                        .push(String::new());
                    i += 1;
                }
            }
        }
        Ok(Self {
            values,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn note(&self, name: &str) {
        self.consumed.borrow_mut().push(name.to_owned());
    }

    /// The last occurrence of a flag, if any. Scalar accessors all read
    /// through here so a repeated flag means "last one wins".
    fn last(&self, name: &str) -> Option<&String> {
        self.values.get(name).and_then(|v| v.last())
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when present but unparsable.
    pub fn number(&self, name: &str, default: f64) -> Result<f64, CliError> {
        self.note(name);
        match self.last(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::new(format!("flag --{name}: `{raw}` is not a number"))),
        }
    }

    /// An integer flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when present but unparsable or non-positive.
    pub fn count(&self, name: &str, default: usize) -> Result<usize, CliError> {
        self.note(name);
        match self.last(name) {
            None => Ok(default),
            Some(raw) => {
                let n: usize = raw.parse().map_err(|_| {
                    CliError::new(format!("flag --{name}: `{raw}` is not a positive integer"))
                })?;
                if n == 0 {
                    return Err(CliError::new(format!("flag --{name}: must be positive")));
                }
                Ok(n)
            }
        }
    }

    /// A text flag with a default.
    #[must_use]
    pub fn text(&self, name: &str, default: &str) -> String {
        self.note(name);
        self.last(name)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// An optional text flag.
    #[must_use]
    pub fn text_opt(&self, name: &str) -> Option<String> {
        self.note(name);
        self.last(name).cloned()
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    /// Absent flags yield an empty list.
    #[must_use]
    pub fn texts(&self, name: &str) -> Vec<String> {
        self.note(name);
        self.values.get(name).cloned().unwrap_or_default()
    }

    /// A boolean flag.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.note(name);
        self.values.contains_key(name)
    }

    /// The shared working-condition flags: `--temp`, `--corner`,
    /// `--supply`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for malformed values.
    pub fn conditions(&self) -> Result<WorkingConditions, CliError> {
        let temp = self.number("temp", 27.0)?;
        let supply = self.number("supply", 1.2)?;
        let corner_text = self.text("corner", "tt");
        let corner = ProcessCorner::from_id(&corner_text).ok_or_else(|| {
            CliError::new(format!(
                "flag --corner: `{corner_text}` is not one of ss, tt, ff"
            ))
        })?;
        if !(0.3..=2.0).contains(&supply) {
            return Err(CliError::new(format!(
                "flag --supply: {supply} V is outside the sane 0.3–2.0 V range"
            )));
        }
        if !(-273.0..=200.0).contains(&temp) {
            return Err(CliError::new(format!(
                "flag --temp: {temp} °C is not a physical working temperature"
            )));
        }
        Ok(WorkingConditions::builder()
            .supply(Voltage::from_volts(supply))
            .temperature(Temperature::from_celsius(temp))
            .corner(corner)
            .build())
    }

    /// Rejects any flag the command did not read, listing what it accepts.
    ///
    /// Call after all reads; the accepted set is exactly what was queried.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] naming the stray flag.
    pub fn finish(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for name in self.values.keys() {
            if !consumed.iter().any(|c| c == name) {
                let mut accepted: Vec<&str> = consumed.iter().map(String::as_str).collect();
                accepted.sort_unstable();
                accepted.dedup();
                return Err(CliError::new(format!(
                    "unknown flag --{name}; this command accepts: {}",
                    accepted
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        let argv: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn pairs_and_booleans() {
        let args = parse("--speed 60 --chart --steps 100");
        assert_eq!(args.number("speed", 0.0).unwrap(), 60.0);
        assert!(args.flag("chart"));
        assert_eq!(args.count("steps", 1).unwrap(), 100);
    }

    #[test]
    fn defaults_apply() {
        let args = parse("");
        assert_eq!(args.number("speed", 42.0).unwrap(), 42.0);
        assert_eq!(args.text("cycle", "urban"), "urban");
        assert!(!args.flag("chart"));
    }

    #[test]
    fn negative_values_are_values() {
        // `-20` does not start with `--`, so it is a value.
        let args = parse("--temp -20");
        assert_eq!(args.number("temp", 0.0).unwrap(), -20.0);
    }

    #[test]
    fn repeated_flags_accumulate_in_order() {
        let args = parse("--set a=1 --set b=2 --set a=3 --speed 40 --speed 60");
        assert_eq!(args.texts("set"), vec!["a=1", "b=2", "a=3"]);
        // Scalar reads of a repeated flag take the last occurrence.
        assert_eq!(args.number("speed", 0.0).unwrap(), 60.0);
        assert!(args.texts("missing").is_empty());
        assert!(args.finish().is_ok());
    }

    #[test]
    fn malformed_tokens_rejected() {
        let argv = vec!["loose".to_owned()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn bad_numbers_rejected() {
        let args = parse("--speed fast");
        assert!(args.number("speed", 0.0).is_err());
        let args = parse("--steps 0");
        assert!(args.count("steps", 10).is_err());
    }

    #[test]
    fn conditions_round_trip() {
        let args = parse("--temp 85 --corner ff --supply 1.0");
        let cond = args.conditions().unwrap();
        assert!((cond.temperature().celsius() - 85.0).abs() < 1e-9);
        assert_eq!(cond.corner().id(), "ff");
        assert!((cond.supply().volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditions_validation() {
        assert!(parse("--corner zz").conditions().is_err());
        assert!(parse("--supply 9").conditions().is_err());
        assert!(parse("--temp -400").conditions().is_err());
    }

    #[test]
    fn finish_rejects_strays() {
        let args = parse("--speed 60 --stray 1");
        let _ = args.number("speed", 0.0);
        let err = args.finish().unwrap_err();
        assert!(err.to_string().contains("stray"));
        assert!(err.to_string().contains("--speed"));
    }

    #[test]
    fn finish_accepts_fully_consumed() {
        let args = parse("--speed 60");
        let _ = args.number("speed", 0.0);
        assert!(args.finish().is_ok());
    }
}
