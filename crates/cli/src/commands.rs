//! The command implementations. Each returns its full output as a string.

use std::fmt::Write as _;

use monityre_core::report::{ascii_chart, Series, Table};
use monityre_core::{
    EmulatorConfig, EnergyAnalyzer, EnergyBalance, Flow, InstantTrace, LifetimeEstimator,
    MonteCarlo, OptimizationAdvisor, Scenario, SelectionPolicy, SweepExecutor, TransientEmulator,
    UsagePattern, VariationModel, VehicleEmulator,
};
use monityre_harvest::{IdealBattery, Supercap};
use monityre_node::Architecture;
use monityre_power::WorkingConditions;
use monityre_profile::{
    named_cycle, CompositeProfile, ExtraUrbanCycle, SpeedProfile, UrbanCycle, NAMED_CYCLES,
};
use monityre_sheet::PowerSheet;
use monityre_units::{Capacitance, Duration, Resistance, Speed, Voltage};

use crate::{Args, CliError};

fn eval_error(e: impl std::error::Error) -> CliError {
    CliError::new(format!("evaluation failed: {e}"))
}

/// The reference scenario under caller-chosen working conditions.
fn scenario_for(conditions: WorkingConditions) -> Scenario {
    Scenario::builder().conditions(conditions).build()
}

/// Parses the shared `--threads` and `--trace-out` flags. Every
/// evaluating subcommand calls this, so both are accepted uniformly even
/// where the evaluation happens to be serial. `--trace-out <file>` routes
/// the process-wide span trace (one JSON line per finished span) to the
/// given path, exactly like setting the `MONITYRE_TRACE` environment
/// variable.
pub(crate) fn executor_from(args: &Args) -> Result<SweepExecutor, CliError> {
    let threads = args.count("threads", 1)?;
    if threads == 0 {
        return Err(CliError::new("flag --threads: must be at least 1"));
    }
    if let Some(path) = args.text_opt("trace-out") {
        monityre_obs::set_trace_path(std::path::Path::new(&path))
            .map_err(|message| CliError::new(format!("flag --trace-out: {message}")))?;
    }
    Ok(SweepExecutor::new(threads))
}

/// `monityre balance` — the Fig. 2 sweep.
pub(crate) fn balance(args: &Args) -> Result<String, CliError> {
    let from = args.number("from", 5.0)?;
    let to = args.number("to", 200.0)?;
    let steps = args.count("steps", 100)?;
    let chart = args.flag("chart");
    let executor = executor_from(args)?;
    let conditions = args.conditions()?;
    args.finish()?;
    if !(from > 0.0 && to > from && steps >= 2) {
        return Err(CliError::new("need 0 < --from < --to and --steps >= 2"));
    }

    let scenario = scenario_for(conditions);
    let report = EnergyBalance::new(&scenario)
        .map_err(eval_error)?
        .sweep_with(Speed::from_kmh(from), Speed::from_kmh(to), steps, &executor);

    let mut out = String::new();
    let mut table = Table::new(vec!["speed_kmh", "generated_uj", "required_uj", "net_uj"]);
    for p in report.points() {
        table.row(vec![
            format!("{:.1}", p.speed.kmh()),
            format!("{:.3}", p.generated.microjoules()),
            format!("{:.3}", p.required.microjoules()),
            format!("{:.3}", p.net().microjoules()),
        ]);
    }
    out.push_str(&table.to_csv());
    if chart {
        let generated: Vec<(f64, f64)> = report
            .points()
            .iter()
            .map(|p| (p.speed.kmh(), p.generated.microjoules()))
            .collect();
        let required: Vec<(f64, f64)> = report
            .points()
            .iter()
            .map(|p| (p.speed.kmh(), p.required.microjoules()))
            .collect();
        out.push_str(&ascii_chart(
            &[
                Series {
                    label: "generated (µJ/round)",
                    glyph: '*',
                    points: generated,
                },
                Series {
                    label: "required (µJ/round)",
                    glyph: 'o',
                    points: required,
                },
            ],
            90,
            22,
        ));
    }
    match report.break_even() {
        Some(speed) => {
            let _ = writeln!(
                out,
                "break-even speed: {:.1} km/h (at {conditions})",
                speed.kmh()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "break-even speed: none in the swept range (at {conditions})"
            );
        }
    }
    Ok(out)
}

/// `monityre trace` — the Fig. 3 instant-power trace.
pub(crate) fn trace(args: &Args) -> Result<String, CliError> {
    let speed = args.number("speed", 60.0)?;
    let window_ms = args.number("window-ms", 500.0)?;
    let step_us = args.number("step-us", 100.0)?;
    executor_from(args)?; // the trace is serial; the flag is still accepted
    let conditions = args.conditions()?;
    args.finish()?;

    let architecture = Architecture::reference();
    let analyzer = EnergyAnalyzer::new(&architecture, conditions);
    let trace = InstantTrace::generate(
        &analyzer,
        Speed::from_kmh(speed),
        Duration::from_millis(window_ms),
        Duration::from_micros(step_us),
    )
    .map_err(eval_error)?;

    let mut out = String::new();
    let points: Vec<(f64, f64)> = trace
        .samples()
        .iter()
        .map(|s| (s.time.millis(), s.total.microwatts()))
        .collect();
    out.push_str(&ascii_chart(
        &[Series {
            label: "node power (µW)",
            glyph: '*',
            points,
        }],
        90,
        22,
    ));
    let _ = writeln!(
        out,
        "round {:.1} ms | floor {} | mean {} | peak {}",
        trace.round_period().millis(),
        trace.floor(),
        trace.mean(),
        trace.peak()
    );
    Ok(out)
}

fn build_cycle(name: &str, repeat: usize) -> Result<Box<dyn SpeedProfile + Send + Sync>, CliError> {
    named_cycle(name, repeat).ok_or_else(|| {
        CliError::new(format!(
            "flag --cycle: `{name}` is not one of {}",
            NAMED_CYCLES.join(", ")
        ))
    })
}

/// `monityre emulate` — the long-window emulation.
pub(crate) fn emulate(args: &Args) -> Result<String, CliError> {
    let cycle_name = args.text("cycle", "nedc");
    let repeat = args.count("repeat", 1)?;
    let cap_mf = args.number("cap-mf", 47.0)?;
    executor_from(args)?; // the emulation is serial; the flag is still accepted
    let conditions = args.conditions()?;
    args.finish()?;
    if cap_mf <= 0.0 {
        return Err(CliError::new("flag --cap-mf: must be positive"));
    }

    let cycle = build_cycle(&cycle_name, repeat)?;
    let scenario = scenario_for(conditions);
    let emulator = TransientEmulator::new(
        scenario.architecture(),
        scenario.chain(),
        scenario.conditions(),
        EmulatorConfig::new(),
    )
    .map_err(eval_error)?;
    let mut storage = Supercap::new(
        Capacitance::from_millifarads(cap_mf),
        Voltage::from_volts(1.8),
        Voltage::from_volts(3.6),
        Resistance::from_megaohms(5.0),
        Voltage::from_volts(2.7),
    );
    let report = emulator.run(cycle.as_ref(), &mut storage);

    let mut out = String::new();
    let soc: Vec<(f64, f64)> = report
        .samples
        .iter()
        .map(|s| (s.time.secs(), s.soc * 100.0))
        .collect();
    out.push_str(&ascii_chart(
        &[Series {
            label: "state of charge (%)",
            glyph: '*',
            points: soc,
        }],
        90,
        16,
    ));
    let _ = writeln!(
        out,
        "cycle {cycle_name} x{repeat} ({:.0} s): coverage {:.1} %, {} window(s), {} brownout(s)",
        report.span.secs(),
        report.coverage() * 100.0,
        report.windows.len(),
        report.brownouts
    );
    let _ = writeln!(
        out,
        "harvested {}, consumed {}, spilled {}",
        report.harvested, report.consumed, report.spilled
    );
    Ok(out)
}

/// `monityre optimize` — advisor + re-estimation.
pub(crate) fn optimize(args: &Args) -> Result<String, CliError> {
    let speed = args.number("speed", 30.0)?;
    let policy_text = args.text("policy", "aware");
    executor_from(args)?; // re-estimation is serial; the flag is still accepted
    let conditions = args.conditions()?;
    args.finish()?;
    let policy = match policy_text.as_str() {
        "aware" => SelectionPolicy::DutyCycleAware,
        "naive" => SelectionPolicy::PowerFigures,
        other => {
            return Err(CliError::new(format!(
                "flag --policy: `{other}` is not one of aware, naive"
            )))
        }
    };

    let scenario = scenario_for(conditions);
    let analyzer = scenario.analyzer();
    let advisor = OptimizationAdvisor::new(&analyzer, Speed::from_kmh(speed));
    let outcome = advisor.optimize(policy).map_err(eval_error)?;

    let mut out = String::new();
    for rec in &outcome.recommendations {
        let _ = writeln!(out, "{:<8} {}", rec.block, rec.rationale);
    }
    let _ = writeln!(
        out,
        "energy per round @{speed:.0} km/h: {} -> {} ({:.1} % saved)",
        outcome.energy_before,
        outcome.energy_after,
        outcome.saving() * 100.0
    );
    Ok(out)
}

/// `monityre flow` — the Fig. 1 pipeline.
pub(crate) fn flow(args: &Args) -> Result<String, CliError> {
    let speed = args.number("speed", 30.0)?;
    let executor = executor_from(args)?;
    let conditions = args.conditions()?;
    args.finish()?;

    let flow = Flow::new(
        &scenario_for(conditions),
        Speed::from_kmh(speed),
        SelectionPolicy::DutyCycleAware,
    )
    .with_executor(executor);
    let profile = CompositeProfile::new(vec![
        Box::new(UrbanCycle::new()),
        Box::new(ExtraUrbanCycle::new()),
    ]);
    let report = flow.run(&profile).map_err(eval_error)?;
    Ok(report.summary())
}

/// `monityre mc` — Monte Carlo process variation.
pub(crate) fn montecarlo(args: &Args) -> Result<String, CliError> {
    let samples = args.count("samples", 128)?;
    let seed = args.number("seed", 2011.0)? as u64;
    let executor = executor_from(args)?;
    let conditions = args.conditions()?;
    args.finish()?;

    let mc = MonteCarlo::new(&scenario_for(conditions), VariationModel::reference(), seed);
    let dist = mc
        .break_even_distribution_with(samples, &executor)
        .map_err(eval_error)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "break-even over {samples} draws: mean {:.2} km/h, p05 {:.2}, p50 {:.2}, p95 {:.2}",
        dist.mean().kmh(),
        dist.quantile(0.05).kmh(),
        dist.quantile(0.50).kmh(),
        dist.quantile(0.95).kmh()
    );
    for spec in [30.0, 35.0, 40.0, 45.0] {
        let _ = writeln!(
            out,
            "yield at <= {spec:.0} km/h: {:.1} %",
            dist.yield_at(Speed::from_kmh(spec)) * 100.0
        );
    }
    Ok(out)
}

/// `monityre lifetime` — battery vs tyre life vs scavenger.
pub(crate) fn lifetime(args: &Args) -> Result<String, CliError> {
    let hours = args.number("hours-per-day", 1.5)?;
    let kmh = args.number("mean-kmh", 55.0)?;
    let in_tyre = args.flag("in-tyre-cell");
    executor_from(args)?; // the estimate is serial; the flag is still accepted
    let conditions = args.conditions()?;
    args.finish()?;

    let scenario = scenario_for(conditions);
    let analyzer = scenario.analyzer();
    let estimator = LifetimeEstimator::new(&analyzer, scenario.chain());
    let pattern = UsagePattern {
        daily_driving: Duration::from_hours(hours),
        mean_speed: Speed::from_kmh(kmh),
    };
    let battery = if in_tyre {
        IdealBattery::coin_cell_in_tyre()
    } else {
        IdealBattery::coin_cell()
    };
    let report = estimator.compare(pattern, battery).map_err(eval_error)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "usage: {hours:.2} h/day at {kmh:.0} km/h ({:.0} km/day)",
        pattern.daily_distance().kilometres()
    );
    let _ = writeln!(
        out,
        "daily: consumes {}, harvests {}",
        report.daily_consumption, report.daily_harvest
    );
    let _ = writeln!(
        out,
        "battery lasts {:.0} days vs tyre life {:.0} days -> battery outlives tyre: {}",
        report.battery_days, report.tyre_days, report.battery_outlives_tyre
    );
    let _ = writeln!(
        out,
        "scavenger sustains the load: {}",
        report.scavenger_sustains
    );
    Ok(out)
}

/// `monityre vehicle` — four-corner availability.
pub(crate) fn vehicle(args: &Args) -> Result<String, CliError> {
    let cycle_name = args.text("cycle", "nedc");
    let repeat = args.count("repeat", 1)?;
    let executor = executor_from(args)?;
    args.finish()?;

    let cycle = build_cycle(&cycle_name, repeat)?;
    let emulator = VehicleEmulator::reference();
    let report = emulator
        .run_with(cycle.as_ref(), &executor)
        .map_err(eval_error)?;

    let mut out = String::new();
    let mut table = Table::new(vec!["corner", "coverage_pct", "windows"]);
    for (pos, r) in &report.corners {
        table.row(vec![
            pos.label().to_owned(),
            format!("{:.1}", r.coverage() * 100.0),
            r.windows.len().to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    let _ = writeln!(
        out,
        "friction estimation available (all four): {:.1} % | any corner: {:.1} % | bottleneck {}",
        report.all_active_fraction * 100.0,
        report.any_active_fraction * 100.0,
        report.bottleneck().label()
    );
    Ok(out)
}

/// `monityre sheet` — the dynamic spreadsheet.
///
/// `--set name=value` (repeatable, applied in order) edits cells before
/// the table is printed: a numeric right-hand side writes a literal, any
/// other text is parsed as a formula. Recompute runs on the compiled
/// engine with wide levels fanned across `--threads` workers.
pub(crate) fn sheet(args: &Args) -> Result<String, CliError> {
    let explain = args.text_opt("explain");
    let edits = args.texts("set");
    let executor = executor_from(args)?;
    let conditions = args.conditions()?;
    args.finish()?;

    let architecture = Architecture::reference();
    let db = architecture.database().clone();
    let mut sheet = PowerSheet::new(&db).map_err(eval_error)?;
    monityre_core::install_parallel_recompute(sheet.sheet_mut(), executor);
    sheet
        .set_temperature(conditions.temperature(), &db)
        .map_err(eval_error)?;
    sheet
        .set_supply(conditions.supply(), &db)
        .map_err(eval_error)?;
    for spec in &edits {
        let Some((name, raw)) = spec.split_once('=') else {
            return Err(CliError::new(format!(
                "flag --set: `{spec}` is not `cell=value` or `cell=formula`"
            )));
        };
        let (name, raw) = (name.trim(), raw.trim());
        if name.is_empty() || raw.is_empty() {
            return Err(CliError::new(format!(
                "flag --set: `{spec}` needs a cell name and a value"
            )));
        }
        if let Ok(value) = raw.parse::<f64>() {
            sheet.sheet_mut().set_number(name, value)
        } else {
            sheet.sheet_mut().set_formula(name, raw)
        }
        .map_err(|e| CliError::new(format!("flag --set {spec}: {e}")))?;
    }

    let mut out = String::new();
    let mut table = Table::new(vec!["cell", "value"]);
    for name in sheet.sheet().names() {
        let value = sheet.value(name).map_err(eval_error)?;
        table.row(vec![name.to_owned(), format!("{value:.4}")]);
    }
    out.push_str(&table.to_string());
    if !edits.is_empty() {
        let stats = sheet.sheet().last_recompute();
        let _ = writeln!(
            out,
            "last edit: {} cell(s) recomputed, {} cut by value, {} level(s)",
            stats.evaluated, stats.cut, stats.levels
        );
    }
    if let Some(cell) = explain {
        out.push('\n');
        out.push_str(&sheet.sheet().explain(&cell).map_err(eval_error)?);
    }
    Ok(out)
}
