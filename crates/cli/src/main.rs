//! The `monityre` binary: a thin shell around [`monityre_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match monityre_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
