//! The `serve` and `request` subcommands — the CLI face of
//! `monityre-serve`.
//!
//! `serve` runs the batch evaluation server until a client sends the
//! `shutdown` op; `request` builds one wire request from flags and either
//! sends it to a running server (`--addr`) or evaluates it in-process
//! (`--local`). Both print the raw JSON response line, so scripts can
//! assert on structured error codes without a JSON library.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use monityre_faults::FaultPlan;
use monityre_serve::{
    evaluate, Client, Op, Payload, Request, Response, RetryPolicy, RetryingClient, ServerConfig,
    TraceContext,
};

use crate::commands::executor_from;
use crate::{Args, CliError};

/// Parses an optional `--name value` flag into any `FromStr` type.
pub(crate) fn parse_opt<T: std::str::FromStr>(
    args: &Args,
    name: &str,
) -> Result<Option<T>, CliError> {
    match args.text_opt(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| CliError::new(format!("flag --{name}: cannot parse `{raw}`"))),
    }
}

/// `monityre serve` — run the evaluation server on `--bind`/`--port`
/// until a client sends the `shutdown` op, then report the drain summary.
pub(crate) fn serve(args: &Args) -> Result<String, CliError> {
    let host = args.text("bind", "127.0.0.1");
    let port: u16 = parse_opt(args, "port")?.unwrap_or(0);
    let workers = args.count("workers", 2)?;
    let queue = args.count("queue", 64)?;
    let cache = args.count("cache", 16)?;
    let dedup = args.count("dedup", 256)?;
    // `--faults <seed>:<kind=p,...>` arms the deterministic fault plan for
    // chaos drills; without it the hooks stay inert (the MONITYRE_FAULTS
    // environment variable still applies as a fallback inside `start`).
    let faults = match args.text_opt("faults") {
        None => None,
        Some(spec) => Some(Arc::new(
            FaultPlan::parse(&spec).map_err(|e| CliError::new(format!("flag --faults: {e}")))?,
        )),
    };
    // 0 means auto (`SweepExecutor::available()`, which honours the
    // MONITYRE_THREADS environment override); the flag itself must be ≥ 1.
    let threads = match args.text_opt("threads") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(CliError::new(format!(
                    "flag --threads: `{raw}` is not a positive integer"
                )))
            }
        },
    };
    let announce = args.text_opt("announce");
    // `--flight-recorder <path>` arms post-mortem dumps: worker panics,
    // injected faults, deadline misses, and wire `dump` requests append
    // the flight-recorder rings to this file as JSON lines.
    let flight_recorder = args.text_opt("flight-recorder");
    // `--ingest-dir <path>` makes the ingest pipeline durable: batches
    // append to a crash-safe segment store there, and a restart replays
    // the directory to reconstruct the window state bit-identically.
    let ingest_dir = args.text_opt("ingest-dir");
    let ingest_window_s = args.count(
        "ingest-window-s",
        usize::try_from(monityre_ingest::DEFAULT_WINDOW_US / 1_000_000).unwrap_or(60),
    )?;
    // The self-observation knobs. Absent flags keep the built-in cadences
    // (1 s scrape, ~100 Hz profiler, 5 m/1 h burn windows); an explicit
    // `0` disables that observer thread entirely.
    let defaults = ServerConfig::default();
    let scrape_interval_us = match parse_opt::<u64>(args, "scrape-interval-ms")? {
        None => defaults.scrape_interval_us,
        Some(ms) => ms.saturating_mul(1_000),
    };
    let profile_interval_us = match parse_opt::<u64>(args, "profile-interval-ms")? {
        None => defaults.profile_interval_us,
        Some(ms) => ms.saturating_mul(1_000),
    };
    let slo_fast_us = match parse_opt::<u64>(args, "slo-fast-s")? {
        None => defaults.slo_fast_us,
        Some(s) => s.saturating_mul(1_000_000),
    };
    let slo_slow_us = match parse_opt::<u64>(args, "slo-slow-s")? {
        None => defaults.slo_slow_us,
        Some(s) => s.saturating_mul(1_000_000),
    };
    args.finish()?;
    if let Some(path) = &flight_recorder {
        monityre_obs::recorder::set_dump_path(std::path::Path::new(path));
    }

    let handle = ServerConfig {
        bind: format!("{host}:{port}"),
        workers,
        threads,
        queue_capacity: queue,
        cache_capacity: cache,
        dedup_capacity: dedup,
        faults: faults.clone(),
        ingest_dir: ingest_dir.clone().map(std::path::PathBuf::from),
        ingest_window_us: ingest_window_s as u64 * 1_000_000,
        scrape_interval_us,
        profile_interval_us,
        slo_fast_us,
        slo_slow_us,
        slos: None,
    }
    .start()
    .map_err(|e| CliError::new(format!("serve: cannot start on {host}:{port}: {e}")))?;
    let addr = handle.addr();

    // Announce the resolved address *before* blocking, so scripts that
    // pass `--port 0` can discover the ephemeral port (also via
    // `--announce <file>`, which is easier to poll than stdout).
    println!("listening on {addr} ({workers} worker(s), queue {queue}, cache {cache})");
    if let Some(plan) = &faults {
        println!("fault plan armed: {}", plan.describe());
    }
    if let Some(path) = &flight_recorder {
        println!("flight recorder armed: dumps append to {path}");
    }
    if scrape_interval_us > 0 {
        println!(
            "self-observation armed: scrape every {} ms, burn windows {} s / {} s",
            scrape_interval_us / 1_000,
            slo_fast_us / 1_000_000,
            slo_slow_us / 1_000_000,
        );
    }
    if let Some(dir) = &ingest_dir {
        let replay = handle.ingest_replay();
        println!(
            "ingest store {dir}: replayed {} point(s) from {} segment(s), {} torn byte(s) truncated",
            replay.points, replay.segments, replay.truncated_bytes
        );
    }
    let _ = std::io::stdout().flush();
    if let Some(path) = &announce {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError::new(format!("flag --announce: cannot write `{path}`: {e}")))?;
    }

    let stats = handle.wait();
    Ok(format!(
        "server drained: served {}, rejected {}, timed out {}, bad requests {}\n",
        stats.served, stats.rejected, stats.timed_out, stats.bad_requests
    ))
}

/// `monityre obs` — fetch a running server's observability state and
/// pretty-print it. By default renders the `stats` snapshot as a readable
/// report; `--prometheus` instead prints the raw `metrics` exposition
/// (what a Prometheus scraper would ingest).
pub(crate) fn obs(args: &Args) -> Result<String, CliError> {
    let addr = args.text_opt("addr").ok_or_else(|| {
        CliError::new("flag --addr <host:port> is required (a running `monityre serve`)")
    })?;
    let prometheus = args.flag("prometheus");
    let dump = args.flag("dump");
    let timeout_ms = args.count("timeout-ms", 30_000)?;
    args.finish()?;

    let mut client = Client::connect(addr.as_str())
        .map_err(|e| CliError::new(format!("obs: cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_millis(timeout_ms as u64)))
        .map_err(|e| CliError::new(format!("obs: {e}")))?;

    // `--dump` replaces the usual SIGUSR1 kick: the server appends its
    // flight-recorder rings to the armed dump path and acks over the wire.
    if dump {
        let response = client
            .request(&Request::new(Op::Dump))
            .map_err(|e| CliError::new(format!("obs: dump request to {addr} failed: {e}")))?;
        let Some(Payload::Dumped { path, records }) = response.ok else {
            return Err(CliError::new(format!(
                "obs: unexpected dump response: {response:?}"
            )));
        };
        return Ok(match path {
            Some(path) => format!("flight recorder dumped {records} record(s) to {path}\n"),
            None => format!(
                "flight recorder is not armed on the server ({records} record(s) buffered); \
                 start it with --flight-recorder <path> or MONITYRE_FLIGHT_RECORDER\n"
            ),
        });
    }

    if prometheus {
        let response = client
            .request(&Request::new(Op::Metrics))
            .map_err(|e| CliError::new(format!("obs: metrics request to {addr} failed: {e}")))?;
        let Some(Payload::Metrics(text)) = response.ok else {
            return Err(CliError::new(format!(
                "obs: unexpected metrics response: {response:?}"
            )));
        };
        return Ok(text);
    }

    let response = client
        .request(&Request::new(Op::Stats))
        .map_err(|e| CliError::new(format!("obs: stats request to {addr} failed: {e}")))?;
    let Some(Payload::Stats(snapshot)) = response.ok else {
        return Err(CliError::new(format!(
            "obs: unexpected stats response: {response:?}"
        )));
    };

    let mut out = String::new();
    let _ = writeln!(out, "server {addr}");
    let _ = writeln!(out, "  requests:");
    let _ = writeln!(out, "    served        {}", snapshot.served);
    let _ = writeln!(out, "    rejected      {}", snapshot.rejected);
    let _ = writeln!(out, "    timed out     {}", snapshot.timed_out);
    let _ = writeln!(out, "    bad requests  {}", snapshot.bad_requests);
    let _ = writeln!(out, "    eval failed   {}", snapshot.eval_failed);
    let _ = writeln!(out, "  service time:");
    let _ = writeln!(out, "    p50  {:.3} ms", snapshot.p50_ms);
    let _ = writeln!(out, "    p99  {:.3} ms", snapshot.p99_ms);
    let _ = writeln!(out, "  scenario cache:");
    let _ = writeln!(out, "    hits    {}", snapshot.cache_hits);
    let _ = writeln!(out, "    misses  {}", snapshot.cache_misses);
    let _ = writeln!(out, "  speed memo (warm scenarios):");
    let _ = writeln!(out, "    hits       {}", snapshot.eval_memo.hits);
    let _ = writeln!(out, "    misses     {}", snapshot.eval_memo.misses);
    let _ = writeln!(out, "    evictions  {}", snapshot.eval_memo.evictions);
    if snapshot.ops.is_empty() {
        let _ = writeln!(out, "  per-op latency: (no jobs served yet)");
    } else {
        let _ = writeln!(out, "  per-op latency (bucket estimates):");
        let _ = writeln!(
            out,
            "    {:<12} {:>8} {:>10} {:>10} {:>10}  slowest trace",
            "op", "count", "p50_ms", "p90_ms", "p99_ms"
        );
        for op in &snapshot.ops {
            // The exemplar is the trace id of the slowest traced request
            // this histogram has seen — paste it straight into
            // `monityre obs trace <id> --from <dump>`.
            let _ = writeln!(
                out,
                "    {:<12} {:>8} {:>10.3} {:>10.3} {:>10.3}  {}",
                op.op,
                op.count,
                op.p50_ms,
                op.p90_ms,
                op.p99_ms,
                op.exemplar.as_deref().unwrap_or("-")
            );
        }
    }
    out.push_str(&client_section());
    Ok(out)
}

/// The retry-layer metrics of *this* process's global registry —
/// attempts, retries, per-class errors, and the backoff histogram any
/// `RetryingClient` in this process (e.g. `request --retry`) recorded.
fn client_section() -> String {
    let snapshot = monityre_obs::Registry::global().snapshot();
    let counters: Vec<_> = snapshot
        .counters
        .iter()
        .filter(|c| c.name.starts_with("client."))
        .collect();
    let backoff = snapshot
        .histograms
        .iter()
        .find(|h| h.name == monityre_obs::names::CLIENT_BACKOFF_MS);
    if counters.is_empty() && backoff.is_none() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "  retrying client (this process):");
    for counter in counters {
        let _ = writeln!(out, "    {:<24} {}", counter.name, counter.value);
    }
    if let Some(hist) = backoff {
        let _ = writeln!(
            out,
            "    {:<24} {} sample(s), p50 {:.1} ms, p99 {:.1} ms",
            hist.name, hist.count, hist.p50_us, hist.p99_us
        );
    }
    out
}

/// Connects to a serving address with the obs timeout applied.
fn obs_client(addr: &str, timeout_ms: usize) -> Result<Client, CliError> {
    let mut client = Client::connect(addr)
        .map_err(|e| CliError::new(format!("obs: cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_millis(timeout_ms as u64)))
        .map_err(|e| CliError::new(format!("obs: {e}")))?;
    Ok(client)
}

/// A bucket width as humans write it: `500ms`, `10s`, `5m`.
fn render_step(step_us: u64) -> String {
    if step_us >= 60_000_000 && step_us.is_multiple_of(60_000_000) {
        format!("{}m", step_us / 60_000_000)
    } else if step_us >= 1_000_000 && step_us.is_multiple_of(1_000_000) {
        format!("{}s", step_us / 1_000_000)
    } else {
        format!("{}ms", step_us / 1_000)
    }
}

/// `monityre obs series <metric>` — query one metric's time-series ring
/// from a running server and render it: a table by default, `--sparkline`
/// for a one-line shape, `--json` for the exact wire payload.
pub(crate) fn obs_series(metric: &str, args: &Args) -> Result<String, CliError> {
    let addr = args.text_opt("addr").ok_or_else(|| {
        CliError::new("flag --addr <host:port> is required (a running `monityre serve`)")
    })?;
    let json = args.flag("json");
    let sparkline = args.flag("sparkline");
    let resolution = args.text_opt("resolution");
    let range_s: Option<u64> = parse_opt(args, "range-s")?;
    let timeout_ms = args.count("timeout-ms", 30_000)?;
    args.finish()?;

    let mut client = obs_client(&addr, timeout_ms)?;
    let mut request = Request::new(Op::Series);
    request.params.metric = Some(metric.to_owned());
    request.params.resolution = resolution;
    request.params.range_s = range_s;
    let response = client
        .request(&request)
        .map_err(|e| CliError::new(format!("obs series: request to {addr} failed: {e}")))?;
    if let Some(error) = &response.error {
        return Err(CliError::new(format!("obs series: {}", error.message)));
    }
    let Some(Payload::Series(slice)) = response.ok else {
        return Err(CliError::new(format!(
            "obs series: unexpected response: {response:?}"
        )));
    };

    if json {
        let text = serde_json::to_string(&slice)
            .map_err(|e| CliError::new(format!("obs series: serialize: {e}")))?;
        return Ok(format!("{text}\n"));
    }

    // Counters plot their cumulative value; gauges their latest sample.
    let value_of = |point: &monityre_serve::SeriesPoint| -> f64 {
        point
            .counter
            .map(|c| c as f64)
            .or_else(|| point.gauge.as_ref().map(|g| g.last))
            .unwrap_or(0.0)
    };

    if sparkline {
        const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let values: Vec<f64> = slice.points.iter().map(value_of).collect();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        let line: String = values
            .iter()
            .map(|&v| {
                let idx = if span > 0.0 {
                    ((v - min) / span * 7.0).round() as usize
                } else {
                    0
                };
                BLOCKS[idx.min(7)]
            })
            .collect();
        return Ok(format!(
            "{} {line}  ({}, step {}, {} point(s), min {min:.3}, max {max:.3})\n",
            slice.metric,
            slice.kind,
            render_step(slice.step_us),
            slice.points.len(),
        ));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "series {} ({}, step {}, {} point(s)):",
        slice.metric,
        slice.kind,
        render_step(slice.step_us),
        slice.points.len(),
    );
    if slice.kind == "counter" {
        let _ = writeln!(out, "    {:>14} {:>14}", "t_s", "value");
        for point in &slice.points {
            let _ = writeln!(
                out,
                "    {:>14.3} {:>14}",
                point.ts_us as f64 / 1e6,
                point.counter.unwrap_or(0)
            );
        }
    } else {
        let _ = writeln!(
            out,
            "    {:>14} {:>14} {:>14} {:>14} {:>8}",
            "t_s", "last", "min", "max", "count"
        );
        for point in &slice.points {
            let gauge = point.gauge.unwrap_or_default();
            let _ = writeln!(
                out,
                "    {:>14.3} {:>14.3} {:>14.3} {:>14.3} {:>8}",
                point.ts_us as f64 / 1e6,
                gauge.last,
                gauge.min,
                gauge.max,
                gauge.count
            );
        }
    }
    Ok(out)
}

/// `monityre obs profile` — fetch the wall-clock sampler's flame table
/// from a running server and render it heaviest-stack first (`--json`
/// for the exact wire payload).
pub(crate) fn obs_profile(args: &Args) -> Result<String, CliError> {
    let addr = args.text_opt("addr").ok_or_else(|| {
        CliError::new("flag --addr <host:port> is required (a running `monityre serve`)")
    })?;
    let json = args.flag("json");
    let timeout_ms = args.count("timeout-ms", 30_000)?;
    args.finish()?;

    let mut client = obs_client(&addr, timeout_ms)?;
    let response = client
        .request(&Request::new(Op::Profile))
        .map_err(|e| CliError::new(format!("obs profile: request to {addr} failed: {e}")))?;
    let Some(Payload::Profile(table)) = response.ok else {
        return Err(CliError::new(format!(
            "obs profile: unexpected response: {response:?}"
        )));
    };

    if json {
        let text = serde_json::to_string(&table)
            .map_err(|e| CliError::new(format!("obs profile: serialize: {e}")))?;
        return Ok(format!("{text}\n"));
    }

    let busy = table.ticks.saturating_sub(table.idle_ticks);
    let busy_pct = if table.ticks > 0 {
        busy as f64 / table.ticks as f64 * 100.0
    } else {
        0.0
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flame table: {} tick(s), {} idle ({busy_pct:.1}% in instrumented phases)",
        table.ticks, table.idle_ticks
    );
    if table.ticks == 0 {
        let _ = writeln!(
            out,
            "    (the sampler is disabled; start the server with --profile-interval-ms > 0)"
        );
    } else if table.rows.is_empty() {
        let _ = writeln!(out, "    (no samples landed in an instrumented phase yet)");
    } else {
        let _ = writeln!(out, "    {:>10} {:>7}  stack", "samples", "pct");
        for row in &table.rows {
            let _ = writeln!(
                out,
                "    {:>10} {:>6.1}%  {}",
                row.samples, row.pct, row.stack
            );
        }
    }
    Ok(out)
}

/// One line of a flight-recorder dump (or trace-sink) file. Header lines
/// (`{"dump":…}`) have no `span` field and are skipped; unknown fields
/// are ignored, so both producers parse with the one shape.
#[derive(Debug, serde::Deserialize)]
struct DumpLine {
    #[serde(default)]
    ts_us: u64,
    #[serde(default)]
    span: Option<String>,
    #[serde(default)]
    dur_us: u64,
    #[serde(default)]
    trace: Option<String>,
    #[serde(default)]
    span_id: Option<String>,
    #[serde(default)]
    parent: Option<String>,
    #[serde(default)]
    event: bool,
    #[serde(default)]
    truncated: bool,
}

/// One record of the requested trace, decoded and hex-parsed.
struct TraceRecord {
    ts_us: u64,
    name: String,
    dur_us: u64,
    span_id: u64,
    parent: u64,
    event: bool,
    truncated: bool,
}

impl TraceRecord {
    /// The span id this record hangs under in the rendered tree. Events
    /// carry the *enclosing* span's id in `span_id` (their `parent` is 0),
    /// so they attach beneath that span rather than floating at the root.
    fn tree_parent(&self) -> u64 {
        if self.event {
            self.span_id
        } else {
            self.parent
        }
    }

    fn render(&self, out: &mut String, depth: usize, base_us: u64) {
        let indent = "  ".repeat(depth);
        let marker = if depth == 0 { "" } else { "└─ " };
        let at_ms = (self.ts_us.saturating_sub(base_us)) as f64 / 1000.0;
        if self.event {
            let _ = writeln!(out, "{indent}{marker}• {}  (at +{at_ms:.3} ms)", self.name);
            return;
        }
        let dur_ms = self.dur_us as f64 / 1000.0;
        let tail = if self.truncated {
            "  [truncated: still open at dump]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{indent}{marker}{}  {dur_ms:.3} ms  (at +{at_ms:.3} ms, span {:016x}){tail}",
            self.name, self.span_id
        );
    }
}

/// Renders `record` and, depth-first, every child under it. `visited`
/// guards against a corrupt dump that links spans into a cycle.
fn render_subtree(
    out: &mut String,
    records: &[TraceRecord],
    children: &std::collections::HashMap<u64, Vec<usize>>,
    index: usize,
    depth: usize,
    base_us: u64,
    visited: &mut Vec<bool>,
) {
    if visited[index] {
        return;
    }
    visited[index] = true;
    let record = &records[index];
    record.render(out, depth, base_us);
    if record.event {
        return;
    }
    if let Some(kids) = children.get(&record.span_id) {
        for &kid in kids {
            if kid != index {
                render_subtree(out, records, children, kid, depth + 1, base_us, visited);
            }
        }
    }
}

/// `monityre obs trace <trace-id> --from <dump.jsonl>` — reconstruct one
/// request's causal span tree from a flight-recorder dump file and
/// pretty-print it: children indented under parents, siblings in start
/// order, events and truncated (still-open) spans marked.
pub(crate) fn obs_trace(trace_id: &str, args: &Args) -> Result<String, CliError> {
    let from = args.text_opt("from").ok_or_else(|| {
        CliError::new("flag --from <dump.jsonl> is required (a flight-recorder dump file)")
    })?;
    args.finish()?;

    let id = u64::from_str_radix(trace_id.trim_start_matches("0x"), 16).map_err(|_| {
        CliError::new(format!(
            "trace id `{trace_id}` is not hexadecimal (dumps print 16-hex-digit ids)"
        ))
    })?;
    let want = format!("{id:016x}");
    let text = std::fs::read_to_string(&from)
        .map_err(|e| CliError::new(format!("obs trace: cannot read `{from}`: {e}")))?;

    // Successive dumps append, and the rings persist between them, so the
    // same record can appear many times — identical lines collapse to one.
    let mut seen = std::collections::HashSet::new();
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut other_traces = std::collections::BTreeSet::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if !seen.insert(line) {
            continue;
        }
        let Ok(parsed) = serde_json::from_str::<DumpLine>(line) else {
            continue; // dump headers of a foreign shape, torn tail lines
        };
        let (Some(name), Some(trace)) = (parsed.span, parsed.trace) else {
            continue; // header lines and unlinked (trace-less) records
        };
        if trace != want {
            other_traces.insert(trace);
            continue;
        }
        let hex = |field: Option<&str>| field.and_then(|s| u64::from_str_radix(s, 16).ok());
        let Some(span_id) = hex(parsed.span_id.as_deref()) else {
            continue;
        };
        records.push(TraceRecord {
            ts_us: parsed.ts_us,
            name,
            dur_us: parsed.dur_us,
            span_id,
            parent: hex(parsed.parent.as_deref()).unwrap_or(0),
            event: parsed.event,
            truncated: parsed.truncated,
        });
    }

    if records.is_empty() {
        let mut message = format!("obs trace: no records for trace {want} in `{from}`");
        if !other_traces.is_empty() {
            let sample: Vec<&str> = other_traces.iter().take(8).map(String::as_str).collect();
            let _ = write!(message, "; traces present: {}", sample.join(", "));
            if other_traces.len() > sample.len() {
                let _ = write!(message, ", … ({} total)", other_traces.len());
            }
        }
        return Err(CliError::new(message));
    }

    records.sort_by_key(|r| (r.ts_us, r.span_id));
    let span_ids: std::collections::HashSet<u64> = records
        .iter()
        .filter(|r| !r.event)
        .map(|r| r.span_id)
        .collect();
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (index, record) in records.iter().enumerate() {
        children
            .entry(record.tree_parent())
            .or_default()
            .push(index);
    }
    let base_us = records.iter().map(|r| r.ts_us).min().unwrap_or(0);

    let mut out = format!("trace {want}: {} record(s)\n", records.len());
    let mut visited = vec![false; records.len()];
    // Roots: spans whose parent was never recorded (the client's logical
    // root context has no span record of its own) plus orphaned events.
    for (index, record) in records.iter().enumerate() {
        let parent = record.tree_parent();
        if parent == 0 || !span_ids.contains(&parent) {
            render_subtree(
                &mut out,
                &records,
                &children,
                index,
                0,
                base_us,
                &mut visited,
            );
        }
    }
    // Anything a cycle or self-parent link kept unreachable still prints.
    for index in 0..records.len() {
        render_subtree(
            &mut out,
            &records,
            &children,
            index,
            0,
            base_us,
            &mut visited,
        );
    }
    Ok(out)
}

/// `monityre explain` — the per-block nanojoule energy ledger at one
/// speed, evaluated in-process through the same path the `explain` wire
/// op takes, so `--json` prints byte-identical ledger bytes to a served
/// response's payload.
pub(crate) fn explain(args: &Args) -> Result<String, CliError> {
    let speed = args.number("speed", 60.0)?;
    let json = args.flag("json");
    let _ = args.flag("table"); // the default rendering, accepted for symmetry
    let executor = executor_from(args)?;
    let mut request = Request::new(Op::Explain);
    request.scenario.temp_c = parse_opt(args, "temp")?;
    request.scenario.supply_v = parse_opt(args, "supply")?;
    request.scenario.corner = args.text_opt("corner");
    request.scenario.samples_per_round = parse_opt(args, "samples-per-round")?;
    request.scenario.tx_period_rounds = parse_opt(args, "tx-period")?;
    request.scenario.payload_bytes = parse_opt(args, "payload-bytes")?;
    request.scenario.chain_scale = parse_opt(args, "chain-scale")?;
    request.scenario.radio_loss_prob = parse_opt(args, "radio-loss")?;
    request.scenario.radio_retries = parse_opt(args, "radio-retries")?;
    request.scenario.age_years = parse_opt(args, "age-years")?;
    request.params.speed_kmh = Some(speed);
    args.finish()?;

    let payload = evaluate(&request, &executor).map_err(|(code, message)| {
        CliError::new(format!("explain ({}): {message}", code.name()))
    })?;
    let Payload::Explain(ledger) = payload else {
        return Err(CliError::new(format!(
            "explain: unexpected payload {payload:?}"
        )));
    };
    if json {
        let text = serde_json::to_string(&ledger)
            .map_err(|e| CliError::new(format!("explain: serialize: {e}")))?;
        return Ok(format!("{text}\n"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "energy ledger at {:.1} km/h (nanojoules per wheel round):",
        ledger.speed.kmh()
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>12} {:>7} {:>7}",
        "block", "dynamic_nj", "static_nj", "total_nj", "share", "duty"
    );
    for entry in ledger.sorted_entries() {
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>12} {:>6.1}% {:>6.3}",
            entry.block,
            entry.dynamic_nj,
            entry.static_nj,
            entry.total_nj(),
            entry.share_pct(ledger.consumed_nj),
            entry.duty
        );
    }
    if ledger.radio_retx_nj > 0 {
        let _ = writeln!(out, "  {:<16} {:>38}", "radio retx", ledger.radio_retx_nj);
    }
    if ledger.ageing_leak_nj > 0 {
        let _ = writeln!(out, "  {:<16} {:>38}", "ageing leak", ledger.ageing_leak_nj);
    }
    let _ = writeln!(out, "  consumed        {:>12} nJ", ledger.consumed_nj);
    let _ = writeln!(out, "  harvested       {:>12} nJ", ledger.harvested_nj);
    let _ = writeln!(out, "  regulator loss  {:>12} nJ", ledger.regulator_loss_nj);
    let _ = writeln!(out, "  storage delta   {:>12} nJ", ledger.storage_delta_nj);
    let _ = writeln!(
        out,
        "  conservation: {}",
        if ledger.conservation_holds() {
            "ok (components sum bit-exactly to the aggregate)"
        } else {
            "VIOLATED"
        }
    );
    let _ = writeln!(
        out,
        "  verdict: {} at this speed",
        if ledger.is_surplus() {
            "self-powered (surplus)"
        } else {
            "in deficit"
        }
    );
    if let Some(dominant) = ledger.dominant_block() {
        let _ = writeln!(
            out,
            "  dominant block: {} ({:.1}% of consumption)",
            dominant.block,
            dominant.share_pct(ledger.consumed_nj)
        );
    }
    Ok(out)
}

/// `monityre request` — send one request to a running server (or
/// evaluate it locally) and print the raw JSON response line.
pub(crate) fn request(args: &Args) -> Result<String, CliError> {
    // `--explain` is shorthand for `--op explain` (with `--speed` naming
    // the operating point), mirroring the offline `monityre explain`.
    let op_name = if args.flag("explain") {
        "explain".to_owned()
    } else {
        args.text("op", "breakeven")
    };
    let addr = args.text_opt("addr");
    let local = args.flag("local");
    let timeout_ms = args.count("timeout-ms", 30_000)?;
    // `--retry` routes the call through the resilient client: bounded
    // attempts with jittered backoff and an idempotency key, so a flaky
    // (or fault-injected) server still yields the fault-free bytes.
    let retry = args.flag("retry");
    let retry_attempts = args.count("retry-attempts", 8)?;
    let retry_backoff_ms = args.count("retry-backoff-ms", 10)?;
    let retry_deadline_ms = args.count("retry-deadline-ms", 60_000)?;
    let retry_seed: Option<u64> = parse_opt(args, "retry-seed")?;
    let executor = executor_from(args)?; // --threads drives --local evaluation

    let op = Op::from_name(&op_name).ok_or_else(|| {
        CliError::new(format!(
            "flag --op: `{op_name}` is not one of {}",
            Op::ALL
                .iter()
                .map(|op| op.name())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    let mut request = Request::new(op);
    // `--trace <trace>:<span>` (two 16-hex-digit halves) pins the trace
    // context carried on the wire; the retrying client adopts it as the
    // logical-call root, so scripts know the id to look up in a dump.
    if let Some(raw) = args.text_opt("trace") {
        let ctx = TraceContext::parse(&raw).ok_or_else(|| {
            CliError::new(format!(
                "flag --trace: `{raw}` is not `<16 hex digits>:<16 hex digits>`"
            ))
        })?;
        request = request.with_trace(ctx);
    }
    request.id = parse_opt(args, "id")?;
    request.deadline_ms = parse_opt(args, "deadline-ms")?;
    request.idem = parse_opt(args, "idem")?;
    request.scenario.temp_c = parse_opt(args, "temp")?;
    request.scenario.supply_v = parse_opt(args, "supply")?;
    request.scenario.corner = args.text_opt("corner");
    request.scenario.samples_per_round = parse_opt(args, "samples-per-round")?;
    request.scenario.tx_period_rounds = parse_opt(args, "tx-period")?;
    request.scenario.payload_bytes = parse_opt(args, "payload-bytes")?;
    request.scenario.chain_scale = parse_opt(args, "chain-scale")?;
    // The extended scenario axes: a lossy radio (`--radio-loss`, with an
    // optional `--radio-retries` budget) and an aged supercap
    // (`--age-years`). Absent flags keep the axes off the wire entirely,
    // so warm scenario-cache keys stay byte-identical.
    request.scenario.radio_loss_prob = parse_opt(args, "radio-loss")?;
    request.scenario.radio_retries = parse_opt(args, "radio-retries")?;
    request.scenario.age_years = parse_opt(args, "age-years")?;
    request.params.from_kmh = parse_opt(args, "from")?;
    request.params.to_kmh = parse_opt(args, "to")?;
    request.params.steps = parse_opt(args, "steps")?;
    request.params.samples = parse_opt(args, "samples")?;
    request.params.seed = parse_opt(args, "seed")?;
    request.params.cycle = args.text_opt("cycle");
    request.params.repeat = parse_opt(args, "repeat")?;
    request.params.cap_mf = parse_opt(args, "cap-mf")?;
    // The stateful sheet ops: `--cell` names the target for both, and a
    // sheet_edit carries either `--value` (literal) or `--formula`.
    request.params.cell = args.text_opt("cell");
    request.params.value = parse_opt(args, "value")?;
    request.params.formula = args.text_opt("formula");
    // The observation ops: a `series` request names its `--metric` and may
    // pin the ring tier (`--resolution 10s`) and lookback (`--range-s`).
    request.params.metric = args.text_opt("metric");
    request.params.resolution = args.text_opt("resolution");
    request.params.range_s = parse_opt(args, "range-s")?;
    // The ledger op: `--speed` names the explained operating point.
    request.params.speed_kmh = parse_opt(args, "speed")?;
    // The ingest ops: `--ingest N` synthesizes a deterministic N-point
    // batch (seeded by `--ingest-seed`) for `--vehicle`; on an
    // `ingest_state` request, `--vehicle` instead filters the reply.
    let vehicle: Option<u64> = parse_opt(args, "vehicle")?;
    if let Some(count) = parse_opt::<usize>(args, "ingest")? {
        let seed: u64 = parse_opt(args, "ingest-seed")?.unwrap_or(2011);
        let start_us: u64 = parse_opt(args, "ingest-start-us")?.unwrap_or(1_000_000);
        request.params.points = Some(monityre_ingest::synthetic_points(
            vehicle.unwrap_or(1),
            count,
            seed,
            start_us,
        ));
    } else {
        request.params.vehicle = vehicle;
    }
    args.finish()?;

    let raw = if local {
        let response = match evaluate(&request, &executor) {
            Ok(payload) => Response::success(request.id, payload),
            Err((code, message)) => Response::failure(request.id, code, message),
        };
        serde_json::to_string(&response)
            .map_err(|e| CliError::new(format!("serialize response: {e}")))?
    } else {
        let addr = addr.ok_or_else(|| {
            CliError::new(
                "flag --addr <host:port> is required (or pass --local to evaluate in-process)",
            )
        })?;
        if retry {
            let defaults = RetryPolicy::default();
            let policy = RetryPolicy {
                attempts: u32::try_from(retry_attempts).unwrap_or(u32::MAX),
                base_backoff: Duration::from_millis(retry_backoff_ms as u64),
                attempt_timeout: Duration::from_millis(timeout_ms as u64),
                overall_deadline: Duration::from_millis(retry_deadline_ms as u64),
                jitter_seed: retry_seed.unwrap_or(defaults.jitter_seed),
                ..defaults
            };
            let mut client = RetryingClient::resolve(addr.as_str(), policy)
                .map_err(|e| CliError::new(format!("request: cannot resolve {addr}: {e}")))?;
            client
                .call_raw(&request)
                .map_err(|e| CliError::new(format!("request to {addr} failed: {e}")))?
        } else {
            let mut client = Client::connect(addr.as_str())
                .map_err(|e| CliError::new(format!("request: cannot connect to {addr}: {e}")))?;
            client
                .set_timeout(Some(Duration::from_millis(timeout_ms as u64)))
                .map_err(|e| CliError::new(format!("request: {e}")))?;
            client
                .request_raw(&request)
                .map_err(|e| CliError::new(format!("request to {addr} failed: {e}")))?
        }
    };
    Ok(format!("{raw}\n"))
}
