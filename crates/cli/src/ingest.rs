//! The `ingest` subcommand — offline inspection of a telemetry segment
//! directory.
//!
//! `monityre ingest --dir <segments>` replays the crash-safe segment
//! store through a fresh window engine — exactly what a restarting
//! server does — and reports the reconstructed per-vehicle state. With
//! `--json` it prints the *byte-exact* serialization of the
//! `IngestState` payload a server over the same directory would serve,
//! so recovery drills can diff offline replay against a live
//! `ingest_state` response with `grep -F`.

use std::fmt::Write as _;

use monityre_ingest::{IngestConfig, Ingestor, DEFAULT_WINDOW_US};
use monityre_serve::Payload;

use crate::{Args, CliError};

/// Seconds → microseconds for the `--window-s` flag.
fn window_us_from(args: &Args) -> Result<u64, CliError> {
    let default_s = DEFAULT_WINDOW_US / 1_000_000;
    let window_s = args.count("window-s", usize::try_from(default_s).unwrap_or(60))?;
    Ok(window_s as u64 * 1_000_000)
}

/// `monityre ingest` — replay a segment directory and print the
/// reconstructed window state.
pub(crate) fn ingest(args: &Args) -> Result<String, CliError> {
    let dir = args.text_opt("dir").ok_or_else(|| {
        CliError::new("flag --dir <path> is required (a server's --ingest-dir segment directory)")
    })?;
    let window_us = window_us_from(args)?;
    let vehicle: Option<u64> = crate::remote::parse_opt(args, "vehicle")?;
    let json = args.flag("json");
    args.finish()?;

    let ingestor = Ingestor::open(IngestConfig {
        dir: Some(dir.clone().into()),
        window_us,
        ..IngestConfig::default()
    })
    .map_err(|e| CliError::new(format!("ingest: cannot replay `{dir}`: {e}")))?;

    let vehicles = match vehicle {
        Some(id) => ingestor.state_of(id).into_iter().collect(),
        None => ingestor.state(),
    };
    if json {
        // Byte-exact: the same Payload type the server serializes, so
        // this line appears verbatim inside a live `ingest_state`
        // response over the same directory.
        let payload = Payload::IngestState {
            window_us,
            vehicles,
        };
        let line = serde_json::to_string(&payload)
            .map_err(|e| CliError::new(format!("serialize state: {e}")))?;
        return Ok(format!("{line}\n"));
    }

    let replay = ingestor.replay_report();
    let mut out = String::new();
    let _ = writeln!(out, "segment store {dir}");
    let _ = writeln!(
        out,
        "  replayed {} point(s) from {} segment(s)",
        replay.points, replay.segments
    );
    if replay.truncated_bytes > 0 {
        let _ = writeln!(
            out,
            "  torn tail truncated: {} byte(s) discarded",
            replay.truncated_bytes
        );
    }
    if replay.stopped_early {
        let _ = writeln!(
            out,
            "  WARNING: mid-history corruption — replay stopped at the last valid prefix"
        );
    }
    let _ = writeln!(
        out,
        "  window {} s, {} vehicle(s), {} alert edge(s) crossed",
        window_us / 1_000_000,
        ingestor.vehicles(),
        ingestor.alerts_total()
    );
    if vehicles.is_empty() {
        let _ = writeln!(out, "  (no matching vehicle state)");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "  {:>8} {:>7} {:>12} {:>12} {:>12} {:>8} {:>7}",
        "vehicle", "points", "harvested_j", "consumed_j", "net_j", "deficit", "alerts"
    );
    for w in &vehicles {
        let _ = writeln!(
            out,
            "  {:>8} {:>7} {:>12.6} {:>12.6} {:>12.6} {:>8} {:>7}",
            w.vehicle,
            w.points,
            w.harvested_j,
            w.consumed_j,
            w.net_j,
            if w.in_deficit { "YES" } else { "no" },
            w.alerts
        );
    }
    Ok(out)
}
